//! Fleet-scale streaming: thousands of per-node CS streams, sharded
//! across workers.
//!
//! The paper's online deployment story (Sec. V) covers *one* node; a
//! production ODA pipeline ingests telemetry from whole machine rooms. The
//! [`FleetEngine`] owns one [`OnlineCs`] stream per node — each with its
//! own trained [`CsModel`](crate::model::CsModel), since sensors behave
//! differently per node — and processes *frames*: one batched time-step of
//! readings across the fleet, the shape a monitoring bus (MQTT fan-in,
//! broadcast transport) actually delivers.
//!
//! # Architecture
//!
//! ```text
//!            FleetFrame (t)                          events (t), node order
//!   node 0 ─┐                          ┌─ shard 0: OnlineCs × n/k ─┐
//!   node 1 ─┤  ingest_frame_sink(...)  ├─ shard 1: OnlineCs × n/k ─┤   &FleetEvent
//!     ...   ├────────────────────────► │       ... (rayon) ...     ├─► FleetSink
//!   node n ─┘                          └─ shard k: OnlineCs × n/k ─┘
//!
//!                 the sink is usually an operator tree (crate::pipeline):
//!
//!                      ┌─► SignatureStore               (persist)
//!   engine ──► Tee ────┼─► StreamingDetector            (classify)
//!                      └─► Sample(k) ─► DriftMonitor    (drift watch)
//! ```
//!
//! Nodes are partitioned into contiguous shards, one per worker; every
//! frame fans the shards out across the rayon pool (in place, via
//! `par_iter_mut`) and merges their event buffers back in node order. The
//! per-node hot path is the allocation-free [`OnlineCs::push_into`];
//! per-shard event buffers are reused across frames, so per-frame
//! bookkeeping costs O(shards), independent of the node count — the
//! allocator is touched only for completed signatures handed to the
//! caller and the worker fan-out itself.
//!
//! # One ingest implementation
//!
//! [`FleetEngine::ingest_frame_sink`] is the *only* engine-side ingest
//! path. [`FleetEngine::ingest_frame_into`] is a thin wrapper that hands
//! a `Vec<FleetEvent>` (itself a [`FleetSink`] that clones events out)
//! to the sink path, and [`FleetEngine::ingest_frame`] wraps that with a
//! fresh vector. All three therefore emit bit-identical events — pinned
//! by `tests/ingest_parity.rs`.
//!
//! # Gap handling
//!
//! A node absent from a frame gets [`OnlineCs::push_gap`]: its buffered
//! window is discarded so no signature ever smooths across the outage, and
//! its stream re-fills from the next frame it appears in. Other nodes are
//! unaffected.

use crate::cs::{CsMethod, CsSignature};
use crate::error::{CoreError, Result};
use crate::online::OnlineCs;
use cwsmooth_data::WindowSpec;
use cwsmooth_obs::{Counter, Histogram, Observe, Registry, Snapshot};
use rayon::prelude::*;

/// One batched time-step of fleet telemetry: a dense `nodes × n_sensors`
/// buffer plus a per-node presence flag. Reuse one frame across time-steps
/// ([`FleetFrame::clear`] + [`FleetFrame::set`]) to keep ingest
/// allocation-free.
#[derive(Debug, Clone)]
pub struct FleetFrame {
    nodes: usize,
    n_sensors: usize,
    data: Vec<f64>,
    present: Vec<bool>,
}

impl FleetFrame {
    /// Creates an empty frame for `nodes` nodes of `n_sensors` sensors.
    pub fn new(nodes: usize, n_sensors: usize) -> Self {
        Self {
            nodes,
            n_sensors,
            data: vec![0.0; nodes * n_sensors],
            present: vec![false; nodes],
        }
    }

    /// Number of node slots.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Readings per node.
    pub fn n_sensors(&self) -> usize {
        self.n_sensors
    }

    /// Marks every node absent (start of a new time-step).
    pub fn clear(&mut self) {
        self.present.fill(false);
    }

    /// Stores `readings` for `node` and marks it present.
    pub fn set(&mut self, node: usize, readings: &[f64]) -> Result<()> {
        if node >= self.nodes {
            return Err(CoreError::Shape(format!(
                "node {node} out of range (frame holds {})",
                self.nodes
            )));
        }
        if readings.len() != self.n_sensors {
            return Err(CoreError::Shape(format!(
                "node {node}: {} readings, frame expects {}",
                readings.len(),
                self.n_sensors
            )));
        }
        self.data[node * self.n_sensors..(node + 1) * self.n_sensors].copy_from_slice(readings);
        self.present[node] = true;
        Ok(())
    }

    /// Mutable slice for `node`'s readings, marking it present — lets a
    /// generator write in place without an intermediate buffer.
    ///
    /// The slot is zeroed on hand-out: a slot that is obtained but never
    /// filled ingests zeros (immediately visible in signatures) rather than
    /// silently replaying the previous frame's readings.
    pub fn slot_mut(&mut self, node: usize) -> Result<&mut [f64]> {
        if node >= self.nodes {
            return Err(CoreError::Shape(format!(
                "node {node} out of range (frame holds {})",
                self.nodes
            )));
        }
        self.present[node] = true;
        let slot = &mut self.data[node * self.n_sensors..(node + 1) * self.n_sensors];
        slot.fill(0.0);
        Ok(slot)
    }

    /// The readings for `node`, or `None` when it missed this time-step.
    pub fn readings(&self, node: usize) -> Option<&[f64]> {
        (node < self.nodes && self.present[node])
            .then(|| &self.data[node * self.n_sensors..(node + 1) * self.n_sensors])
    }

    /// Number of nodes present in this frame.
    pub fn present_count(&self) -> usize {
        self.present.iter().filter(|&&p| p).count()
    }
}

/// One completed window on one node's stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetEvent {
    /// The node whose stream completed a window.
    pub node: usize,
    /// Per-node window counter (0 for the node's first emission; keeps
    /// increasing across telemetry gaps).
    pub window_index: usize,
    /// The window's CS signature.
    pub signature: CsSignature,
}

/// An owned, recyclable event envelope: the unit of *hand-off* delivery.
///
/// Borrowed delivery ([`FleetSink::on_event`]) keeps the engine's
/// buffers alive only for the duration of the call, which is exactly
/// wrong for a sink that moves events to another thread. An envelope
/// wraps one [`FleetEvent`] whose signature buffers are meant to be
/// *recycled*: [`FleetEventBuf::copy_from`] refills a used envelope
/// without touching the allocator (once its vectors have warmed), so a
/// pool of envelopes circulating through a queue — producer fills,
/// consumer drains and returns — makes an owned hand-off path as
/// allocation-free as the borrowed one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetEventBuf {
    event: FleetEvent,
}

impl FleetEventBuf {
    /// A fresh (cold) envelope.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an already-owned event.
    pub fn from_event(event: FleetEvent) -> Self {
        Self { event }
    }

    /// Overwrites the envelope with `src`, reusing the signature
    /// buffers (no allocation once they have warmed to `src`'s block
    /// count).
    pub fn copy_from(&mut self, src: &FleetEvent) {
        self.event.node = src.node;
        self.event.window_index = src.window_index;
        self.event.signature.copy_from(&src.signature);
    }

    /// The wrapped event.
    pub fn event(&self) -> &FleetEvent {
        &self.event
    }

    /// Mutable access to the wrapped event, so producers can fill an
    /// envelope in place (for example by swapping a staged event in)
    /// instead of copying.
    pub fn event_mut(&mut self) -> &mut FleetEvent {
        &mut self.event
    }

    /// Consumes the envelope, returning the event.
    pub fn into_event(self) -> FleetEvent {
        self.event
    }
}

/// Lifetime ingest counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Frames ingested.
    pub frames: u64,
    /// Signature events emitted.
    pub events: u64,
    /// Node-frames missed (each absent node in a frame counts one gap).
    pub gaps: u64,
}

/// Consumer of completed-window events, fed by
/// [`FleetEngine::ingest_frame_sink`]. Implementations receive each
/// event *by reference* — the engine retains ownership of the event
/// (and, crucially, of its signature buffers, which it reuses across
/// frames), so a sink that only inspects or copies values out keeps the
/// whole ingest path allocation-free.
///
/// Events of one frame are delivered in node order, after all shards
/// have finished the frame. An error aborts delivery of the remaining
/// events of that frame and is returned to the ingest caller.
pub trait FleetSink {
    /// Receives one completed-window event.
    fn on_event(&mut self, event: &FleetEvent) -> Result<()>;

    /// Receives one completed-window event *by value*, returning the
    /// envelope so the caller can recycle its buffers.
    ///
    /// The default implementation borrows the wrapped event through
    /// [`FleetSink::on_event`] and hands the envelope straight back, so
    /// every existing sink participates in hand-off delivery unchanged.
    /// Sinks that move events elsewhere (another thread, a wire) should
    /// override this to take ownership without copying, returning a
    /// *different* recycled envelope when one is available.
    fn on_event_owned(&mut self, buf: FleetEventBuf) -> Result<FleetEventBuf> {
        self.on_event(buf.event())?;
        Ok(buf)
    }
}

/// Collects events by cloning them — the sink behind
/// [`FleetEngine::ingest_frame_into`]. The vector is *not* cleared
/// first, so it can accumulate across frames.
impl FleetSink for Vec<FleetEvent> {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        self.push(event.clone());
        Ok(())
    }
}

/// A contiguous slice of the fleet owned by one worker.
#[derive(Debug)]
struct Shard {
    /// First node id in this shard.
    start: usize,
    streams: Vec<OnlineCs>,
    /// Staged events of the current frame. Acts as a pool: only the
    /// first `staged` entries are live; the rest keep their signature
    /// buffers so steady-state frames never allocate.
    events: Vec<FleetEvent>,
    staged: usize,
    /// Per-shard ingest latency histogram
    /// (`cws_ingest_ns{shard="<i>"}`), set by
    /// [`FleetEngine::attach_metrics`]; `None` keeps the path free of
    /// timer reads.
    ingest_ns: Option<Histogram>,
}

/// One in how many frames gets a per-shard ingest span. Spans cost two
/// clock reads per shard; sampling keeps the instrumented hot path
/// within the pipeline overhead budget while the histogram still sees
/// an unbiased (frame-clocked, load-independent) slice of ingests.
const SPAN_SAMPLE_EVERY: u64 = 16;

impl Shard {
    fn ingest(&mut self, frame: &FleetFrame, record_span: bool) -> Result<()> {
        // Scoped span: records elapsed ns into the histogram on drop —
        // i.e. when this shard's slice of the frame is done. Sampled
        // (see `SPAN_SAMPLE_EVERY`): most frames skip the clock reads.
        let _span = if record_span {
            self.ingest_ns.as_ref().map(Histogram::start_span)
        } else {
            None
        };
        self.staged = 0;
        for (i, stream) in self.streams.iter_mut().enumerate() {
            let node = self.start + i;
            match frame.readings(node) {
                Some(column) => {
                    if self.staged == self.events.len() {
                        self.events.push(FleetEvent {
                            node,
                            window_index: 0,
                            signature: CsSignature::default(),
                        });
                    }
                    let slot = &mut self.events[self.staged];
                    if stream.push_into(column, &mut slot.signature)? {
                        slot.node = node;
                        slot.window_index = stream.emitted() - 1;
                        self.staged += 1;
                    }
                }
                None => stream.push_gap(),
            }
        }
        Ok(())
    }

    fn staged(&self) -> &[FleetEvent] {
        &self.events[..self.staged]
    }
}

/// Sharded multi-node streaming engine: one [`OnlineCs`] per node,
/// partitioned across rayon workers, fed by [`FleetFrame`]s.
#[derive(Debug)]
pub struct FleetEngine {
    shards: Vec<Shard>,
    nodes: usize,
    n_sensors: usize,
    spec: WindowSpec,
    stats: FleetStats,
    /// Live registry handles ([`FleetEngine::attach_metrics`]); `None`
    /// keeps the ingest path free of metric stores.
    metrics: Option<FleetMetrics>,
}

/// Live counter handles mirroring [`FleetStats`], bumped once per frame
/// on the ingest thread (striped relaxed adds: no lock, no allocation).
#[derive(Debug)]
struct FleetMetrics {
    frames: Counter,
    events: Counter,
    gaps: Counter,
}

impl FleetEngine {
    /// Creates an engine with one trained method per node (element `i`
    /// serves node `i`), sharded across `rayon::current_num_threads()`
    /// workers. All methods must cover the same sensor count — the frame
    /// layout is homogeneous even though the learned models are not.
    pub fn new(methods: Vec<CsMethod>, spec: WindowSpec) -> Result<Self> {
        let shards = rayon::current_num_threads();
        Self::with_shards(methods, spec, shards)
    }

    /// [`FleetEngine::new`] with an explicit shard count (clamped to
    /// `1..=nodes`).
    pub fn with_shards(methods: Vec<CsMethod>, spec: WindowSpec, shards: usize) -> Result<Self> {
        if methods.is_empty() {
            return Err(CoreError::Config("fleet needs at least one node".into()));
        }
        let n_sensors = methods[0].model().n_sensors();
        for (i, m) in methods.iter().enumerate() {
            if m.model().n_sensors() != n_sensors {
                return Err(CoreError::Shape(format!(
                    "node {i} model covers {} sensors, node 0 covers {n_sensors}",
                    m.model().n_sensors()
                )));
            }
        }
        let nodes = methods.len();
        let k = shards.clamp(1, nodes);
        let base = nodes / k;
        let extra = nodes % k;
        let mut shards = Vec::with_capacity(k);
        let mut methods = methods.into_iter();
        let mut start = 0usize;
        for s in 0..k {
            let len = base + usize::from(s < extra);
            shards.push(Shard {
                start,
                streams: methods
                    .by_ref()
                    .take(len)
                    .map(|m| OnlineCs::new(m, spec))
                    .collect(),
                events: Vec::new(),
                staged: 0,
                ingest_ns: None,
            });
            start += len;
        }
        Ok(Self {
            shards,
            nodes,
            n_sensors,
            spec,
            stats: FleetStats::default(),
            metrics: None,
        })
    }

    /// Creates an engine where every node shares the same trained method
    /// (e.g. a homogeneous partition trained on pooled history).
    pub fn homogeneous(method: CsMethod, nodes: usize, spec: WindowSpec) -> Result<Self> {
        Self::new(vec![method; nodes], spec)
    }

    /// Number of nodes served.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Readings expected per node per frame.
    pub fn n_sensors(&self) -> usize {
        self.n_sensors
    }

    /// Number of shards the fleet is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The window geometry every stream uses.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Lifetime ingest counters.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Wires the engine to a metrics registry: registers live
    /// `cws_frames_total`/`cws_events_total`/`cws_gaps_total` counters
    /// (label `stage="fleet"`) bumped once per ingested frame, plus one
    /// `cws_ingest_ns{shard="<i>"}` latency histogram per shard, fed by
    /// a scoped span around each shard's slice of every 16th frame
    /// (sampled — see `SPAN_SAMPLE_EVERY` — so the span's two clock
    /// reads stay off the steady-state per-frame cost). The
    /// handles are pre-registered, so steady-state recording allocates
    /// nothing. Don't also hub-publish this engine's [`Observe`]
    /// snapshot — it emits the same counter series.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.ingest_ns =
                Some(registry.histogram("cws_ingest_ns", &[("shard", &i.to_string())]));
        }
        self.metrics = Some(FleetMetrics {
            frames: registry.counter("cws_frames_total", &[("stage", "fleet")]),
            events: registry.counter("cws_events_total", &[("stage", "fleet")]),
            gaps: registry.counter("cws_gaps_total", &[("stage", "fleet")]),
        });
    }

    /// A right-sized empty frame for this fleet.
    pub fn frame(&self) -> FleetFrame {
        FleetFrame::new(self.nodes, self.n_sensors)
    }

    /// The stream serving `node` (diagnostics: gaps, buffered fill, model).
    pub fn node(&self, node: usize) -> Option<&OnlineCs> {
        let shard = self
            .shards
            .iter()
            .take_while(|s| s.start <= node)
            .last()
            .filter(|s| node - s.start < s.streams.len())?;
        Some(&shard.streams[node - shard.start])
    }

    /// Ingests one frame, handing any completed-window events to `sink`
    /// in node order. Nodes absent from the frame take the gap-recovery
    /// path. This is the batch hot path: shards run in parallel, every
    /// buffer — including the event structs and their signature vectors —
    /// is reused across frames, so with an allocation-free sink the
    /// whole path is heap-silent in steady state.
    ///
    /// If the sink errors, the remaining events of the frame are not
    /// delivered, the stats counters are left unchanged, and the error
    /// propagates; the per-node streams have already advanced (the frame
    /// *was* ingested).
    pub fn ingest_frame_sink<S: FleetSink>(
        &mut self,
        frame: &FleetFrame,
        sink: &mut S,
    ) -> Result<()> {
        if frame.nodes() != self.nodes || frame.n_sensors() != self.n_sensors {
            return Err(CoreError::Shape(format!(
                "frame is {}x{}, fleet expects {}x{}",
                frame.nodes(),
                frame.n_sensors(),
                self.nodes,
                self.n_sensors
            )));
        }
        // Span sampling is frame-clocked so every shard's histogram
        // covers the same frames; `frames` has not been bumped yet, so
        // frame 0 (a cold-cache outlier worth seeing) is included.
        let record_span = self.stats.frames.is_multiple_of(SPAN_SAMPLE_EVERY);
        if self.shards.len() == 1 {
            self.shards[0].ingest(frame, record_span)?;
        } else {
            // In-place parallel pass over the shards; the first error (in
            // shard order) wins, as with a sequential loop.
            self.shards
                .par_iter_mut()
                .map(|shard| shard.ingest(frame, record_span))
                .collect::<Result<Vec<()>>>()?;
        }
        let mut events = 0u64;
        for shard in &self.shards {
            for event in shard.staged() {
                sink.on_event(event)?;
            }
            events += shard.staged as u64;
        }
        let gaps = (self.nodes - frame.present_count()) as u64;
        self.stats.frames += 1;
        self.stats.events += events;
        self.stats.gaps += gaps;
        if let Some(m) = &self.metrics {
            // Pre-registered handles: striped relaxed adds, no
            // allocation — once per frame, not per event.
            m.frames.inc();
            m.events.add(events);
            m.gaps.add(gaps);
        }
        Ok(())
    }

    /// [`FleetEngine::ingest_frame_sink`] appending events to `out`
    /// (cleared first) — the shape callers that want an owning `Vec`
    /// use; each delivered event is cloned out of the engine's reused
    /// buffers.
    pub fn ingest_frame_into(
        &mut self,
        frame: &FleetFrame,
        out: &mut Vec<FleetEvent>,
    ) -> Result<()> {
        out.clear();
        self.ingest_frame_sink(frame, out)
    }

    /// [`FleetEngine::ingest_frame_into`] returning a fresh event vector.
    pub fn ingest_frame(&mut self, frame: &FleetFrame) -> Result<Vec<FleetEvent>> {
        let mut out = Vec::new();
        self.ingest_frame_into(frame, &mut out)?;
        Ok(out)
    }
}

/// Snapshot-style export of [`FleetStats`] plus fleet geometry — for
/// engines not wired through [`FleetEngine::attach_metrics`], or for
/// publishing through a [`cwsmooth_obs::MetricsHub`].
impl Observe for FleetEngine {
    fn observe(&self, out: &mut Snapshot) {
        let labels = &[("stage", "fleet")];
        out.counter("cws_frames_total", labels, self.stats.frames);
        out.counter("cws_events_total", labels, self.stats.events);
        out.counter("cws_gaps_total", labels, self.stats.gaps);
        out.gauge("cws_fleet_nodes", &[], self.nodes as f64);
        out.gauge("cws_fleet_shards", &[], self.shards.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::CsTrainer;
    use cwsmooth_linalg::Matrix;

    fn node_matrix(node: usize, n: usize, t: usize) -> Matrix {
        Matrix::from_fn(n, t, |r, c| {
            ((c as f64 / (3.0 + r as f64) + node as f64 * 0.7).sin() * (r + 1) as f64)
                + 0.05 * node as f64
        })
    }

    fn build_fleet(nodes: usize, n: usize, t: usize, shards: usize) -> (FleetEngine, Vec<Matrix>) {
        let mats: Vec<Matrix> = (0..nodes).map(|i| node_matrix(i, n, t)).collect();
        let methods: Vec<CsMethod> = mats
            .iter()
            .map(|m| CsMethod::new(CsTrainer::default().train(m).unwrap(), 3).unwrap())
            .collect();
        let spec = WindowSpec::new(8, 4).unwrap();
        (
            FleetEngine::with_shards(methods, spec, shards).unwrap(),
            mats,
        )
    }

    #[test]
    fn fleet_matches_per_node_online_streams() {
        let (nodes, n, t) = (13usize, 4usize, 60usize);
        for shards in [1usize, 3, 16] {
            let (mut engine, mats) = build_fleet(nodes, n, t, shards);
            assert_eq!(engine.shard_count(), shards.min(nodes));

            // Reference: independent OnlineCs per node.
            let mut refs: Vec<OnlineCs> = (0..nodes)
                .map(|i| OnlineCs::new(engine.node(i).unwrap().method().clone(), engine.spec()))
                .collect();

            let mut frame = engine.frame();
            let mut events = Vec::new();
            let mut got: Vec<FleetEvent> = Vec::new();
            let mut expect: Vec<FleetEvent> = Vec::new();
            for c in 0..t {
                frame.clear();
                for (i, m) in mats.iter().enumerate() {
                    // node i drops frames on a deterministic pattern
                    if (c + i) % 11 != 0 {
                        frame.set(i, &m.col(c)).unwrap();
                    }
                }
                engine.ingest_frame_into(&frame, &mut events).unwrap();
                got.extend(events.iter().cloned());
                for (i, r) in refs.iter_mut().enumerate() {
                    match frame.readings(i) {
                        Some(col) => {
                            if let Some(sig) = r.push(col).unwrap() {
                                expect.push(FleetEvent {
                                    node: i,
                                    window_index: r.emitted() - 1,
                                    signature: sig,
                                });
                            }
                        }
                        None => r.push_gap(),
                    }
                }
            }
            assert!(!expect.is_empty());
            // Same events; within a frame the fleet orders them by node.
            assert_eq!(got, expect, "shards={shards}");
            assert_eq!(engine.stats().events, expect.len() as u64);
            assert_eq!(engine.stats().frames, t as u64);
            let total_gaps: usize = (0..nodes).map(|i| engine.node(i).unwrap().gaps()).sum();
            assert_eq!(engine.stats().gaps, total_gaps as u64);
        }
    }

    /// A sink that copies values out without owning any event.
    struct Summing {
        events: usize,
        checksum: f64,
        fail_after: Option<usize>,
    }

    impl FleetSink for Summing {
        fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
            if self.fail_after.is_some_and(|n| self.events >= n) {
                return Err(CoreError::Persist("sink full".into()));
            }
            self.events += 1;
            self.checksum += event.node as f64
                + event.window_index as f64
                + event.signature.re.iter().sum::<f64>();
            Ok(())
        }
    }

    #[test]
    fn sink_delivery_matches_vec_collection() {
        for shards in [1usize, 4] {
            let (mut via_sink, mats) = build_fleet(9, 4, 80, shards);
            let (mut via_vec, _) = build_fleet(9, 4, 80, shards);
            let mut sink = Summing {
                events: 0,
                checksum: 0.0,
                fail_after: None,
            };
            let mut collected: Vec<FleetEvent> = Vec::new();
            let mut frame = via_sink.frame();
            let mut events = Vec::new();
            for c in 0..80 {
                frame.clear();
                for (i, m) in mats.iter().enumerate() {
                    if (c + i) % 7 != 0 {
                        frame.set(i, &m.col(c)).unwrap();
                    }
                }
                via_sink.ingest_frame_sink(&frame, &mut sink).unwrap();
                via_vec.ingest_frame_into(&frame, &mut events).unwrap();
                collected.extend(events.iter().cloned());
            }
            assert_eq!(sink.events, collected.len());
            let expect: f64 = collected
                .iter()
                .map(|e| e.node as f64 + e.window_index as f64 + e.signature.re.iter().sum::<f64>())
                .sum();
            assert!((sink.checksum - expect).abs() < 1e-9, "shards={shards}");
            assert_eq!(via_sink.stats(), via_vec.stats());
        }
    }

    #[test]
    fn sink_error_aborts_frame_delivery_and_keeps_stats() {
        let (mut engine, mats) = build_fleet(6, 4, 40, 2);
        let mut frame = engine.frame();
        let mut sink = Summing {
            events: 0,
            checksum: 0.0,
            fail_after: Some(2),
        };
        let mut failed_at = None;
        for c in 0..40 {
            frame.clear();
            for (i, m) in mats.iter().enumerate() {
                frame.set(i, &m.col(c)).unwrap();
            }
            let stats_before = engine.stats();
            if engine.ingest_frame_sink(&frame, &mut sink).is_err() {
                // Counters stay at the pre-frame values on sink failure.
                assert_eq!(engine.stats(), stats_before);
                failed_at = Some(c);
                break;
            }
        }
        assert!(failed_at.is_some(), "sink never filled up");
        assert_eq!(sink.events, 2);
    }

    #[test]
    fn rejects_mismatched_construction_and_frames() {
        let a = CsMethod::new(
            CsTrainer::default().train(&node_matrix(0, 3, 30)).unwrap(),
            2,
        )
        .unwrap();
        let b = CsMethod::new(
            CsTrainer::default().train(&node_matrix(1, 4, 30)).unwrap(),
            2,
        )
        .unwrap();
        let spec = WindowSpec::new(5, 5).unwrap();
        assert!(FleetEngine::new(vec![], spec).is_err());
        assert!(FleetEngine::new(vec![a.clone(), b], spec).is_err());

        let mut engine = FleetEngine::homogeneous(a, 4, spec).unwrap();
        let wrong = FleetFrame::new(3, 3);
        assert!(engine.ingest_frame(&wrong).is_err());
        let mut frame = engine.frame();
        assert!(frame.set(9, &[0.0; 3]).is_err());
        assert!(frame.set(0, &[0.0; 2]).is_err());
        assert!(frame.set(0, &[0.0; 3]).is_ok());
        assert_eq!(frame.present_count(), 1);
        assert!(frame.readings(1).is_none());
        assert!(frame.readings(0).is_some());
        frame.clear();
        assert_eq!(frame.present_count(), 0);
    }

    #[test]
    fn slot_mut_writes_in_place() {
        let mut frame = FleetFrame::new(2, 3);
        frame.slot_mut(1).unwrap().copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(frame.readings(1).unwrap(), &[1.0, 2.0, 3.0]);
        assert!(frame.readings(0).is_none());
        assert!(frame.slot_mut(2).is_err());
    }

    #[test]
    fn attached_metrics_mirror_stats_and_time_every_shard() {
        use cwsmooth_obs::{Value, HIST_BUCKETS};

        let (mut engine, mats) = build_fleet(9, 4, 60, 3);
        let registry = Registry::new();
        engine.attach_metrics(&registry);
        let mut frame = engine.frame();
        let mut events = Vec::new();
        for c in 0..60 {
            frame.clear();
            for (i, m) in mats.iter().enumerate() {
                // Gaps must be sparser than the window length (8) or no
                // node ever completes a window.
                if (c + i) % 17 != 0 {
                    frame.set(i, &m.col(c)).unwrap();
                }
            }
            engine.ingest_frame_into(&frame, &mut events).unwrap();
        }
        let stats = engine.stats();
        assert!(stats.events > 0 && stats.gaps > 0);

        let mut live = Snapshot::new();
        registry.observe(&mut live);
        let counter = |name: &str| {
            live.samples()
                .iter()
                .find_map(|s| match (s.name == name, &s.value) {
                    (true, Value::Counter(v)) => Some(*v),
                    _ => None,
                })
        };
        assert_eq!(counter("cws_frames_total"), Some(stats.frames));
        assert_eq!(counter("cws_events_total"), Some(stats.events));
        assert_eq!(counter("cws_gaps_total"), Some(stats.gaps));
        // One latency histogram per shard, one sample per sampled
        // frame each (frames 0, N, 2N, ... — see SPAN_SAMPLE_EVERY).
        let mut shard_counts = 0u64;
        let mut shards_seen = 0usize;
        for s in live.samples() {
            if s.name == "cws_ingest_ns" {
                shards_seen += 1;
                if let Value::Histogram(h) = &s.value {
                    assert_eq!(h.buckets.len(), HIST_BUCKETS);
                    shard_counts += h.count;
                }
            }
        }
        assert_eq!(shards_seen, engine.shard_count());
        let sampled = stats.frames.div_ceil(SPAN_SAMPLE_EVERY);
        assert_eq!(shard_counts, sampled * engine.shard_count() as u64);

        // The snapshot path reports the same totals.
        let mut snap = Snapshot::new();
        engine.observe(&mut snap);
        assert_eq!(snap.samples().len(), 5);
    }

    #[test]
    fn node_accessor_covers_every_shard() {
        let (engine, _) = build_fleet(10, 3, 40, 4);
        for i in 0..10 {
            let stream = engine.node(i).unwrap();
            assert_eq!(stream.n_sensors(), 3);
        }
        assert!(engine.node(10).is_none());
    }
}
