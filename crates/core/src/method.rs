//! The common interface implemented by every signature method.

use crate::error::Result;
use cwsmooth_linalg::Matrix;

/// A signature method `Sig()` (paper Sec. III-A): maps a window `S_w`
/// (`n` sensors × `wl` samples) to a flat feature vector of length
/// `signature_len(n)`, with `signature_len(n) << n * wl`.
///
/// `history` optionally carries the column of sensor readings immediately
/// preceding the window, allowing methods that use derivatives (CS) to seed
/// their backward differences without looking into the future. Methods that
/// do not need history ignore it.
pub trait SignatureMethod: Send + Sync {
    /// Human-readable method name (e.g. `"Tuncer"`, `"CS-20"`).
    fn name(&self) -> String;

    /// Output feature-vector length for `n` input sensors.
    fn signature_len(&self, n: usize) -> usize;

    /// Computes the signature of one window.
    fn compute(&self, sw: &Matrix, history: Option<&[f64]>) -> Result<Vec<f64>>;
}

impl<T: SignatureMethod + ?Sized> SignatureMethod for &T {
    fn name(&self) -> String {
        (**self).name()
    }
    fn signature_len(&self, n: usize) -> usize {
        (**self).signature_len(n)
    }
    fn compute(&self, sw: &Matrix, history: Option<&[f64]>) -> Result<Vec<f64>> {
        (**self).compute(sw, history)
    }
}

impl SignatureMethod for Box<dyn SignatureMethod> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn signature_len(&self, n: usize) -> usize {
        (**self).signature_len(n)
    }
    fn compute(&self, sw: &Matrix, history: Option<&[f64]>) -> Result<Vec<f64>> {
        (**self).compute(sw, history)
    }
}
