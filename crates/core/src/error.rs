//! Error type for the signature layer.

use std::fmt;

/// Errors produced while training CS models or computing signatures.
#[derive(Debug)]
pub enum CoreError {
    /// The input matrix shape is unusable (empty, wrong row count, ...).
    Shape(String),
    /// Bad configuration (zero blocks, zero-length window, ...).
    Config(String),
    /// Model persistence failed.
    Persist(String),
    /// Propagated matrix error.
    Linalg(cwsmooth_linalg::Error),
    /// Propagated data-layer error.
    Data(cwsmooth_data::DataError),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Shape(m) => write!(f, "shape error: {m}"),
            CoreError::Config(m) => write!(f, "configuration error: {m}"),
            CoreError::Persist(m) => write!(f, "model persistence error: {m}"),
            CoreError::Linalg(e) => write!(f, "matrix error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            CoreError::Data(e) => Some(e),
            CoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cwsmooth_linalg::Error> for CoreError {
    fn from(e: cwsmooth_linalg::Error) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<cwsmooth_data::DataError> for CoreError {
    fn from(e: cwsmooth_data::DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

/// Convenience alias for the signature layer.
pub type Result<T> = std::result::Result<T, CoreError>;
