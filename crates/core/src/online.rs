//! Streaming (online) CS signature extraction.
//!
//! The paper designs CS "around online operation" and lists a dedicated
//! online implementation as future work (Sec. V). This module provides it:
//! an [`OnlineCs`] processor ingests one sensor *column* at a time — the
//! shape in which a monitoring agent actually delivers readings — keeps a
//! ring buffer of the last `wl` samples plus one sample of history, and
//! emits a signature every `ws` samples. Emissions are bit-identical to
//! the batch pipeline (`WindowIter` + [`CsMethod::signature`]), which the
//! tests pin down.

use crate::cs::{CsMethod, CsSignature};
use crate::error::{CoreError, Result};
use cwsmooth_data::WindowSpec;
use cwsmooth_linalg::Matrix;
use std::collections::VecDeque;

/// Streaming CS processor: push columns, receive signatures.
///
/// ```
/// use cwsmooth_core::cs::{CsMethod, CsTrainer};
/// use cwsmooth_core::online::OnlineCs;
/// use cwsmooth_data::WindowSpec;
/// use cwsmooth_linalg::Matrix;
///
/// // Train offline on historical data (2 sensors, 50 samples).
/// let history = Matrix::from_fn(2, 50, |r, c| (c as f64) * (r + 1) as f64);
/// let model = CsTrainer::default().train(&history).unwrap();
/// let cs = CsMethod::new(model, 2).unwrap();
///
/// // Stream live columns; a signature arrives every `ws` samples.
/// let mut online = OnlineCs::new(cs, WindowSpec::new(10, 5).unwrap());
/// let mut emitted = 0;
/// for c in 0..50 {
///     let column = [c as f64, 2.0 * c as f64];
///     if online.push(&column).unwrap().is_some() {
///         emitted += 1;
///     }
/// }
/// assert_eq!(emitted, 9); // (50 - 10) / 5 + 1
/// ```
#[derive(Debug, Clone)]
pub struct OnlineCs {
    cs: CsMethod,
    spec: WindowSpec,
    /// Last `wl` columns (each `n` readings), oldest first.
    buffer: VecDeque<Vec<f64>>,
    /// The column that immediately preceded the current buffer head.
    history: Option<Vec<f64>>,
    /// Total columns ingested so far.
    ingested: usize,
    /// Scratch matrix reused across emissions.
    scratch: Matrix,
}

impl OnlineCs {
    /// Creates a processor; `spec` is the window geometry (`wl`, `ws`).
    pub fn new(cs: CsMethod, spec: WindowSpec) -> Self {
        let n = cs.model().n_sensors();
        let scratch = Matrix::zeros(n, spec.wl);
        Self {
            cs,
            spec,
            buffer: VecDeque::with_capacity(spec.wl + 1),
            history: None,
            ingested: 0,
            scratch,
        }
    }

    /// Number of sensors expected per column.
    pub fn n_sensors(&self) -> usize {
        self.cs.model().n_sensors()
    }

    /// Columns ingested so far.
    pub fn ingested(&self) -> usize {
        self.ingested
    }

    /// The wrapped method (e.g. to inspect the block layout).
    pub fn method(&self) -> &CsMethod {
        &self.cs
    }

    /// Ingests one column of sensor readings (length `n_sensors`).
    ///
    /// Returns `Some(signature)` whenever a window completes: the first
    /// after `wl` samples, then one every `ws` samples, matching the batch
    /// windowing exactly.
    pub fn push(&mut self, column: &[f64]) -> Result<Option<CsSignature>> {
        if column.len() != self.n_sensors() {
            return Err(CoreError::Shape(format!(
                "column has {} readings, model expects {}",
                column.len(),
                self.n_sensors()
            )));
        }
        if self.buffer.len() == self.spec.wl {
            // Oldest buffered column becomes the history sample.
            let old = self.buffer.pop_front().expect("buffer non-empty");
            self.history = Some(old);
        }
        self.buffer.push_back(column.to_vec());
        self.ingested += 1;

        // Window [ingested - wl, ingested) completes at this sample when
        // the buffer is full and the start is a multiple of ws.
        if self.buffer.len() == self.spec.wl
            && (self.ingested - self.spec.wl).is_multiple_of(self.spec.ws)
        {
            // Materialize the window into the scratch matrix (columns of
            // the ring become columns of S_w).
            for (c, col) in self.buffer.iter().enumerate() {
                for (r, &v) in col.iter().enumerate() {
                    self.scratch.set(r, c, v);
                }
            }
            let sig = self.cs.signature(&self.scratch, self.history.as_deref())?;
            return Ok(Some(sig));
        }
        Ok(None)
    }

    /// Drops all buffered state (e.g. after a monitoring gap, when
    /// windows must not straddle the discontinuity).
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.history = None;
        self.ingested = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::CsTrainer;
    use cwsmooth_data::WindowIter;

    fn training_matrix(n: usize, t: usize) -> Matrix {
        Matrix::from_fn(n, t, |r, c| {
            ((c as f64 / (4.0 + r as f64)).sin() * (r + 1) as f64) + 0.1 * r as f64
        })
    }

    fn batch_signatures(cs: &CsMethod, s: &Matrix, spec: WindowSpec) -> Vec<CsSignature> {
        WindowIter::new(spec, s.cols())
            .map(|w| {
                let sub = w.extract(s).unwrap();
                let hist = w.history(s);
                cs.signature(&sub, hist.as_deref()).unwrap()
            })
            .collect()
    }

    #[test]
    fn streaming_matches_batch_exactly() {
        let s = training_matrix(6, 100);
        let model = CsTrainer::default().train(&s).unwrap();
        for (wl, ws) in [(10usize, 5usize), (8, 8), (7, 3), (1, 1)] {
            let spec = WindowSpec::new(wl, ws).unwrap();
            let cs = CsMethod::new(model.clone(), 3).unwrap();
            let batch = batch_signatures(&cs, &s, spec);

            let mut online = OnlineCs::new(cs, spec);
            let mut streamed = Vec::new();
            for c in 0..s.cols() {
                if let Some(sig) = online.push(&s.col(c)).unwrap() {
                    streamed.push(sig);
                }
            }
            assert_eq!(streamed.len(), batch.len(), "wl={wl} ws={ws}");
            for (a, b) in streamed.iter().zip(&batch) {
                for (x, y) in a.re.iter().zip(&b.re) {
                    assert!((x - y).abs() < 1e-12, "re wl={wl} ws={ws}");
                }
                for (x, y) in a.im.iter().zip(&b.im) {
                    assert!((x - y).abs() < 1e-12, "im wl={wl} ws={ws}");
                }
            }
        }
    }

    #[test]
    fn emission_cadence() {
        let s = training_matrix(4, 60);
        let model = CsTrainer::default().train(&s).unwrap();
        let spec = WindowSpec::new(10, 4).unwrap();
        let mut online = OnlineCs::new(CsMethod::new(model, 2).unwrap(), spec);
        let mut emit_at = Vec::new();
        for c in 0..60 {
            if online.push(&s.col(c)).unwrap().is_some() {
                emit_at.push(c);
            }
        }
        // first emission after wl samples (index wl-1), then every ws
        assert_eq!(emit_at[0], 9);
        for pair in emit_at.windows(2) {
            assert_eq!(pair[1] - pair[0], 4);
        }
        assert_eq!(emit_at.len(), spec.count(60));
    }

    #[test]
    fn rejects_wrong_column_width() {
        let s = training_matrix(4, 40);
        let model = CsTrainer::default().train(&s).unwrap();
        let spec = WindowSpec::new(5, 5).unwrap();
        let mut online = OnlineCs::new(CsMethod::new(model, 2).unwrap(), spec);
        assert!(online.push(&[0.0; 3]).is_err());
        assert!(online.push(&[0.0; 4]).is_ok());
    }

    #[test]
    fn reset_clears_state() {
        let s = training_matrix(4, 40);
        let model = CsTrainer::default().train(&s).unwrap();
        let spec = WindowSpec::new(5, 5).unwrap();
        let mut online = OnlineCs::new(CsMethod::new(model, 2).unwrap(), spec);
        for c in 0..4 {
            assert!(online.push(&s.col(c)).unwrap().is_none());
        }
        online.reset();
        assert_eq!(online.ingested(), 0);
        // needs a full wl again before emitting
        for c in 0..4 {
            assert!(online.push(&s.col(c)).unwrap().is_none());
        }
        assert!(online.push(&s.col(4)).unwrap().is_some());
    }
}
