//! Streaming (online) CS signature extraction.
//!
//! The paper designs CS "around online operation" and lists a dedicated
//! online implementation as future work (Sec. V). This module provides it:
//! an [`OnlineCs`] processor ingests one sensor *column* at a time — the
//! shape in which a monitoring agent actually delivers readings — keeps a
//! flat ring buffer of the last `wl + 1` samples (window plus one sample of
//! history), and emits a signature every `ws` samples. Emissions are
//! bit-identical to the batch pipeline (`WindowIter` +
//! [`CsMethod::signature`]), which the tests pin down.
//!
//! # Hot path
//!
//! The per-sample cost is one `memcpy` of `n` readings into the ring; the
//! per-emission cost is one pass of the smoothing stage directly over the
//! ring ([`CsMethod::signature_cols_into`]) — no window matrix is ever
//! materialized. Steady-state [`OnlineCs::push_into`] performs **zero heap
//! allocations**, emission samples included, which `tests/alloc.rs` asserts
//! with a counting allocator. This is what lets a fleet engine drive
//! thousands of these streams per worker without touching the allocator.
//!
//! # Telemetry gaps
//!
//! Real monitoring streams drop samples (agent restarts, network hiccups,
//! node reboots). A window spanning such a discontinuity would smooth
//! across it and silently produce a bogus signature. Call
//! [`OnlineCs::push_gap`] whenever an expected sample did not arrive: the
//! buffered window is discarded and the stream re-fills — the next
//! signature covers only post-gap data, exactly as if a fresh batch
//! pipeline started at the gap. [`OnlineCs::reset`] additionally clears the
//! lifetime counters (a full restart).

use crate::cs::{CsMethod, CsSignature};
use crate::error::{CoreError, Result};
use cwsmooth_data::WindowSpec;

/// Streaming CS processor: push columns, receive signatures.
///
/// ```
/// use cwsmooth_core::cs::{CsMethod, CsTrainer};
/// use cwsmooth_core::online::OnlineCs;
/// use cwsmooth_data::WindowSpec;
/// use cwsmooth_linalg::Matrix;
///
/// // Train offline on historical data (2 sensors, 50 samples).
/// let history = Matrix::from_fn(2, 50, |r, c| (c as f64) * (r + 1) as f64);
/// let model = CsTrainer::default().train(&history).unwrap();
/// let cs = CsMethod::new(model, 2).unwrap();
///
/// // Stream live columns; a signature arrives every `ws` samples.
/// let mut online = OnlineCs::new(cs, WindowSpec::new(10, 5).unwrap());
/// let mut emitted = 0;
/// for c in 0..50 {
///     let column = [c as f64, 2.0 * c as f64];
///     if online.push(&column).unwrap().is_some() {
///         emitted += 1;
///     }
/// }
/// assert_eq!(emitted, 9); // (50 - 10) / 5 + 1
/// ```
#[derive(Debug, Clone)]
pub struct OnlineCs {
    cs: CsMethod,
    spec: WindowSpec,
    /// Flat ring buffer of the last `wl + 1` columns (the window plus one
    /// sample of history), column-major: slot `s` holds one column of `n`
    /// readings at `ring[s * n .. (s + 1) * n]`. Sample `i` (counted since
    /// the last gap) lives in slot `i % (wl + 1)`.
    ring: Vec<f64>,
    /// Samples accepted since the last gap/reset (drives window phase).
    filled: usize,
    /// Lifetime columns ingested (kept across gaps, cleared by reset).
    ingested: usize,
    /// Lifetime signatures emitted (kept across gaps, cleared by reset).
    emitted: usize,
    /// Telemetry gaps signalled via [`OnlineCs::push_gap`].
    gaps: usize,
}

impl OnlineCs {
    /// Creates a processor; `spec` is the window geometry (`wl`, `ws`).
    pub fn new(cs: CsMethod, spec: WindowSpec) -> Self {
        let n = cs.model().n_sensors();
        Self {
            cs,
            spec,
            ring: vec![0.0; n * (spec.wl + 1)],
            filled: 0,
            ingested: 0,
            emitted: 0,
            gaps: 0,
        }
    }

    /// Number of sensors expected per column.
    pub fn n_sensors(&self) -> usize {
        self.cs.model().n_sensors()
    }

    /// Columns ingested so far (across gaps; cleared by [`OnlineCs::reset`]).
    pub fn ingested(&self) -> usize {
        self.ingested
    }

    /// Signatures emitted so far (across gaps; cleared by
    /// [`OnlineCs::reset`]). The next emission has window index `emitted()`.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Telemetry gaps signalled so far.
    pub fn gaps(&self) -> usize {
        self.gaps
    }

    /// Columns currently buffered towards the next window.
    pub fn buffered(&self) -> usize {
        self.filled.min(self.spec.wl)
    }

    /// The window geometry.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// The wrapped method (e.g. to inspect the block layout).
    pub fn method(&self) -> &CsMethod {
        &self.cs
    }

    /// Ingests one column of sensor readings (length `n_sensors`).
    ///
    /// Returns `Some(signature)` whenever a window completes: the first
    /// after `wl` samples, then one every `ws` samples, matching the batch
    /// windowing exactly. Allocates only for the returned signature; use
    /// [`OnlineCs::push_into`] to reuse a signature buffer and stay
    /// allocation-free.
    pub fn push(&mut self, column: &[f64]) -> Result<Option<CsSignature>> {
        let mut out = CsSignature::default();
        Ok(self.push_into(column, &mut out)?.then_some(out))
    }

    /// Ingests one column, writing any completed window's signature into
    /// `out`. Returns `true` when `out` was filled.
    ///
    /// Steady state (once `out`'s capacity has reached `l`), this performs
    /// no heap allocation — the fleet-scale hot path.
    pub fn push_into(&mut self, column: &[f64], out: &mut CsSignature) -> Result<bool> {
        let n = self.n_sensors();
        if column.len() != n {
            return Err(CoreError::Shape(format!(
                "column has {} readings, model expects {}",
                column.len(),
                n
            )));
        }
        let wl = self.spec.wl;
        let cap = wl + 1;
        let slot = self.filled % cap;
        self.ring[slot * n..(slot + 1) * n].copy_from_slice(column);
        self.filled += 1;
        self.ingested += 1;

        // Window [filled - wl, filled) completes at this sample when the
        // ring holds a full window and the start is a multiple of ws.
        if self.filled >= wl && (self.filled - wl).is_multiple_of(self.spec.ws) {
            let base = self.filled - wl;
            let ring = &self.ring;
            // One sample of history precedes the window unless the window
            // starts at the stream (or post-gap) origin.
            let history = (base > 0).then(|| &ring[((base - 1) % cap) * n..][..n]);
            self.cs.signature_cols_into(
                wl,
                |k| &ring[((base + k) % cap) * n..][..n],
                history,
                out,
            )?;
            self.emitted += 1;
            return Ok(true);
        }
        Ok(false)
    }

    /// Signals a telemetry gap: an expected sample did not arrive.
    ///
    /// The buffered window is discarded so no signature ever smooths across
    /// the discontinuity; the stream then re-fills from scratch (the next
    /// emission comes `wl` samples later, aligned to the gap like a fresh
    /// batch pipeline). Lifetime counters (`ingested`, `emitted`) are kept —
    /// this is the recovery path a fleet engine takes when a node misses a
    /// frame, and window indexes must keep increasing across it.
    pub fn push_gap(&mut self) {
        self.gaps += 1;
        self.filled = 0;
    }

    /// Drops all state including lifetime counters (a full restart, e.g.
    /// when re-pointing the processor at a different node's stream).
    pub fn reset(&mut self) {
        self.filled = 0;
        self.ingested = 0;
        self.emitted = 0;
        self.gaps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::CsTrainer;
    use cwsmooth_data::WindowIter;
    use cwsmooth_linalg::Matrix;

    fn training_matrix(n: usize, t: usize) -> Matrix {
        Matrix::from_fn(n, t, |r, c| {
            ((c as f64 / (4.0 + r as f64)).sin() * (r + 1) as f64) + 0.1 * r as f64
        })
    }

    fn batch_signatures(cs: &CsMethod, s: &Matrix, spec: WindowSpec) -> Vec<CsSignature> {
        WindowIter::new(spec, s.cols())
            .map(|w| {
                let sub = w.extract(s).unwrap();
                let hist = w.history(s);
                cs.signature(&sub, hist.as_deref()).unwrap()
            })
            .collect()
    }

    #[test]
    fn streaming_matches_batch_exactly() {
        let s = training_matrix(6, 100);
        let model = CsTrainer::default().train(&s).unwrap();
        for (wl, ws) in [(10usize, 5usize), (8, 8), (7, 3), (1, 1)] {
            let spec = WindowSpec::new(wl, ws).unwrap();
            let cs = CsMethod::new(model.clone(), 3).unwrap();
            let batch = batch_signatures(&cs, &s, spec);

            let mut online = OnlineCs::new(cs, spec);
            let mut streamed = Vec::new();
            for c in 0..s.cols() {
                if let Some(sig) = online.push(&s.col(c)).unwrap() {
                    streamed.push(sig);
                }
            }
            // Bit-identical, not merely close.
            assert_eq!(streamed, batch, "wl={wl} ws={ws}");
        }
    }

    #[test]
    fn emission_cadence() {
        let s = training_matrix(4, 60);
        let model = CsTrainer::default().train(&s).unwrap();
        let spec = WindowSpec::new(10, 4).unwrap();
        let mut online = OnlineCs::new(CsMethod::new(model, 2).unwrap(), spec);
        let mut emit_at = Vec::new();
        for c in 0..60 {
            if online.push(&s.col(c)).unwrap().is_some() {
                emit_at.push(c);
            }
        }
        // first emission after wl samples (index wl-1), then every ws
        assert_eq!(emit_at[0], 9);
        for pair in emit_at.windows(2) {
            assert_eq!(pair[1] - pair[0], 4);
        }
        assert_eq!(emit_at.len(), spec.count(60));
        assert_eq!(online.emitted(), emit_at.len());
    }

    #[test]
    fn rejects_wrong_column_width() {
        let s = training_matrix(4, 40);
        let model = CsTrainer::default().train(&s).unwrap();
        let spec = WindowSpec::new(5, 5).unwrap();
        let mut online = OnlineCs::new(CsMethod::new(model, 2).unwrap(), spec);
        assert!(online.push(&[0.0; 3]).is_err());
        assert!(online.push(&[0.0; 4]).is_ok());
    }

    #[test]
    fn reset_clears_state() {
        let s = training_matrix(4, 40);
        let model = CsTrainer::default().train(&s).unwrap();
        let spec = WindowSpec::new(5, 5).unwrap();
        let mut online = OnlineCs::new(CsMethod::new(model, 2).unwrap(), spec);
        for c in 0..4 {
            assert!(online.push(&s.col(c)).unwrap().is_none());
        }
        online.reset();
        assert_eq!(online.ingested(), 0);
        // needs a full wl again before emitting
        for c in 0..4 {
            assert!(online.push(&s.col(c)).unwrap().is_none());
        }
        assert!(online.push(&s.col(4)).unwrap().is_some());
    }

    #[test]
    fn gap_discards_window_but_keeps_counters() {
        let s = training_matrix(5, 80);
        let model = CsTrainer::default().train(&s).unwrap();
        let spec = WindowSpec::new(10, 5).unwrap();
        let cs = CsMethod::new(model, 3).unwrap();

        // Stream with a gap after sample `cut`: the dropped interval is
        // s[cut..cut+7].
        let cut = 23usize;
        let resume = cut + 7;
        let mut online = OnlineCs::new(cs.clone(), spec);
        let mut streamed = Vec::new();
        for c in 0..cut {
            if let Some(sig) = online.push(&s.col(c)).unwrap() {
                streamed.push(sig);
            }
        }
        online.push_gap();
        for c in resume..s.cols() {
            if let Some(sig) = online.push(&s.col(c)).unwrap() {
                streamed.push(sig);
            }
        }

        // Equivalent batch: two independent contiguous chunks.
        let mut expect = batch_signatures(&cs, &s.col_window(0, cut).unwrap(), spec);
        expect.extend(batch_signatures(
            &cs,
            &s.col_window(resume, s.cols()).unwrap(),
            spec,
        ));
        assert_eq!(streamed, expect);

        assert_eq!(online.gaps(), 1);
        assert_eq!(online.emitted(), expect.len());
        assert_eq!(online.ingested(), cut + (s.cols() - resume));
    }

    #[test]
    fn push_into_reuses_signature_buffer() {
        let s = training_matrix(3, 50);
        let model = CsTrainer::default().train(&s).unwrap();
        let spec = WindowSpec::new(4, 2).unwrap();
        let mut online = OnlineCs::new(CsMethod::new(model, 3).unwrap(), spec);
        let mut sig = CsSignature::default();
        let mut ptr = None;
        for c in 0..s.cols() {
            if online.push_into(&s.col(c), &mut sig).unwrap() {
                match ptr {
                    None => ptr = Some(sig.re.as_ptr()),
                    // The buffer survives across emissions unmoved.
                    Some(p) => assert_eq!(sig.re.as_ptr(), p),
                }
                assert_eq!(sig.blocks(), 3);
            }
        }
        assert!(ptr.is_some(), "at least one emission expected");
    }
}
