//! Row-ordering strategies: the paper's Algorithm 1 plus ablations.
//!
//! Algorithm 1 greedily builds a permutation that groups correlated sensors:
//! it seeds with the row of maximal global coefficient `ρ_Si`, then
//! repeatedly appends the remaining row maximizing
//! `ρ_{Sk,S_next} · ρ_Sk` — the product of the candidate's correlation with
//! the *most recently added* row and its global relevance. The result puts
//! strongly positively correlated, descriptive sensors first, noise-like
//! sensors in the middle, and anti-correlated descriptive sensors last.

use cwsmooth_linalg::Matrix;

/// Computes the paper's Algorithm 1 permutation from a shifted-correlation
/// matrix and the global coefficients.
///
/// Ties are broken towards the lowest row index, making the ordering fully
/// deterministic. Output row `i` of the sorted matrix is input row `p[i]`.
pub fn correlation_wise(corr: &Matrix, global: &[f64]) -> Vec<usize> {
    let n = corr.rows();
    debug_assert_eq!(n, corr.cols());
    debug_assert_eq!(n, global.len());
    if n == 0 {
        return Vec::new();
    }

    let mut p = Vec::with_capacity(n);
    let mut remaining: Vec<usize> = (0..n).collect();

    // Seed: argmax of the global coefficient.
    let seed_pos = argmax_by(&remaining, |k| global[k]);
    let mut last = remaining.swap_remove(seed_pos);
    p.push(last);

    while !remaining.is_empty() {
        let pos = argmax_by(&remaining, |k| corr.get(k, last) * global[k]);
        last = remaining.swap_remove(pos);
        p.push(last);
    }
    p
}

/// Identity ordering (ablation baseline: no sorting).
pub fn identity(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Ordering by global coefficient only (ablation: ignores chaining).
pub fn by_global_coefficient(global: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..global.len()).collect();
    idx.sort_by(|&a, &b| {
        global[b]
            .partial_cmp(&global[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

/// Deterministic pseudo-random ordering from a seed (ablation baseline).
///
/// Fisher-Yates with a splitmix64 stream; independent of `rand` so the
/// core crate stays lean.
pub fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

/// Index of the maximal value of `f` over `items`, ties to the lowest index.
fn argmax_by(items: &[usize], mut f: impl FnMut(usize) -> f64) -> usize {
    debug_assert!(!items.is_empty());
    let mut best_pos = 0;
    let mut best_key = f64::NEG_INFINITY;
    let mut best_idx = usize::MAX;
    for (pos, &k) in items.iter().enumerate() {
        let key = f(k);
        if key > best_key || (key == best_key && k < best_idx) {
            best_key = key;
            best_pos = pos;
            best_idx = k;
        }
    }
    best_pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsmooth_linalg::corr::{global_coefficients, shifted_correlation_matrix};

    fn is_permutation(p: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        p.len() == n
            && p.iter().all(|&i| {
                if i < n && !seen[i] {
                    seen[i] = true;
                    true
                } else {
                    false
                }
            })
    }

    /// A dominant correlated group (rows 0..=3), a smaller anti-correlated
    /// group (rows 4..=5) and one noise row (6). The dominant group must be
    /// strictly larger than the anti-correlated one plus one: with equal
    /// masses, positive and negative contributions cancel in the shifted
    /// global coefficient and a noise row (shifted ρ≈1 with everything)
    /// would win the seed — real monitoring data has many sensors riding
    /// the same workload, so the dominant-group regime is the relevant one.
    fn structured_matrix() -> Matrix {
        let t = 200;
        Matrix::from_fn(7, t, |r, c| {
            let phase = (c as f64 / 7.0).sin();
            match r {
                0 => phase,                          // group A
                1 => 2.0 * phase + 0.5,              // group A
                2 => 0.7 * phase - 1.0,              // group A
                3 => 5.0 * phase,                    // group A
                4 => -phase,                         // group B (anti-correlated)
                5 => -3.0 * phase + 1.0,             // group B
                6 => ((c * 2654435761) % 97) as f64, // pseudo-noise
                _ => unreachable!(),
            }
        })
    }

    #[test]
    fn output_is_a_permutation() {
        let m = structured_matrix();
        let c = shifted_correlation_matrix(&m);
        let g = global_coefficients(&c);
        let p = correlation_wise(&c, &g);
        assert!(is_permutation(&p, 7));
    }

    #[test]
    fn correlated_groups_are_contiguous() {
        let m = structured_matrix();
        let c = shifted_correlation_matrix(&m);
        let g = global_coefficients(&c);
        let p = correlation_wise(&c, &g);
        let pos = |row: usize| p.iter().position(|&x| x == row).unwrap();
        // Group A occupies the first four positions (descriptive sensors first).
        let a_pos: Vec<usize> = (0..4).map(pos).collect();
        assert!(a_pos.iter().all(|&x| x < 4), "group A not leading: {p:?}");
        // Noise sits in the middle, between the groups.
        assert_eq!(pos(6), 4, "noise not mid-ordering: {p:?}");
        // Group B (anti-correlated) lands at the end.
        assert!(pos(4) >= 5 && pos(5) >= 5, "group B not trailing: {p:?}");
    }

    #[test]
    fn seed_is_max_global_coefficient() {
        let m = structured_matrix();
        let c = shifted_correlation_matrix(&m);
        let g = global_coefficients(&c);
        let p = correlation_wise(&c, &g);
        let max_g = g.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // The seed must attain the maximal global coefficient (several rows
        // may tie; Algorithm 1 then takes the lowest index).
        assert!(
            (g[p[0]] - max_g).abs() < 1e-12,
            "seed {} has g={}, max={max_g}",
            p[0],
            g[p[0]]
        );
    }

    #[test]
    fn single_row_and_empty() {
        let c1 = Matrix::from_rows([[2.0]]).unwrap();
        assert_eq!(correlation_wise(&c1, &[0.0]), vec![0]);
        let c0 = Matrix::zeros(0, 0);
        assert!(correlation_wise(&c0, &[]).is_empty());
    }

    #[test]
    fn deterministic_under_ties() {
        // All-constant rows: every correlation is the shifted 1.0, all ties.
        let m = Matrix::filled(4, 10, 3.0);
        let c = shifted_correlation_matrix(&m);
        let g = global_coefficients(&c);
        let p1 = correlation_wise(&c, &g);
        let p2 = correlation_wise(&c, &g);
        assert_eq!(p1, p2);
        assert!(is_permutation(&p1, 4));
        assert_eq!(p1[0], 0, "tie must break to lowest index");
    }

    #[test]
    fn ablation_orderings_are_permutations() {
        assert!(is_permutation(&identity(6), 6));
        assert!(is_permutation(&shuffled(6, 42), 6));
        assert_eq!(shuffled(6, 42), shuffled(6, 42));
        let g = [0.5, 2.0, 1.0];
        let byg = by_global_coefficient(&g);
        assert_eq!(byg, vec![1, 2, 0]);
    }
}
