//! Off-thread sink transport: bounded queue branches for the operator
//! tree.
//!
//! [`crate::pipeline`] composes sinks *in process, on the ingest
//! thread* — the slowest branch of a `Tee` gates the frame rate. This
//! module moves a branch onto its own thread behind a bounded queue:
//!
//! ```text
//!   ingest thread                     consumer thread
//!   ─────────────                     ───────────────
//!   FleetEngine ─► QueueSink ══ring══► drain ─► inner FleetSink
//!                     ▲                  │
//!                     ╚══recycled pool═══╝   (batched envelope return)
//! ```
//!
//! [`QueueSink`] is itself a [`FleetSink`], so queue branches slot into
//! any operator tree: `Tee((QueueSink::spawn(store), QueueSink::spawn(
//! detector)))` runs persistence and classification each on their own
//! core while the ingest thread only ever copies an event into a pooled
//! [`FleetEventBuf`] envelope and enqueues it.
//!
//! Guarantees, mirroring the synchronous contract:
//!
//! * **Per-node order** — one producer, one FIFO ring, one consumer:
//!   each branch sees events in exactly the order the engine delivered
//!   them. Ordering *across* branches is free, as with `Tee`.
//! * **First error wins** — a consumer-side sink error is latched and
//!   returned from the producer's next [`FleetSink::on_event`] call, so
//!   `ingest_frame_sink` aborts the frame and leaves
//!   [`crate::fleet::FleetStats`] untouched, exactly as a synchronous
//!   sink error would.
//! * **Zero-alloc steady state** — envelopes circulate producer →
//!   ring → consumer → recycled pool → producer; once the pool has warmed
//!   past the queue depth, the producer path never touches the
//!   allocator (pinned by the workspace counting-allocator test).
//! * **No silent loss on shutdown** — dropping or [`QueueSink::join`]ing
//!   the sink drains every accepted event before the consumer exits.
//!
//! When the queue is full the producer either waits for the consumer
//! ([`QueuePolicy::Block`], the default — backpressure) or evicts the
//! oldest queued event and counts it ([`QueuePolicy::DropOldest`] —
//! acquisition never stalls, the telemetry transport posture of
//! production DAQ systems).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle, Thread};
use std::time::{Duration, Instant};

use crate::error::{CoreError, Result};
use crate::fleet::{FleetEvent, FleetEventBuf, FleetSink};
use cwsmooth_obs::{Counter, Gauge, Observe, Registry, Snapshot};

/// One slot of the bounded ring: a sequence number gating access plus
/// the (possibly uninitialised) value.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free queue (Vyukov's bounded MPMC design).
///
/// The ring has exactly one pushing thread (the producer handle, which
/// uses [`Self::push_single`] with its private cursor), but *two*
/// popping ends exist in drop-oldest mode — the consumer draining and
/// the producer evicting — so the pop side keeps the symmetric CAS
/// design. Capacity is rounded up to a power of two.
struct BoundedQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
}

// SAFETY: the queue hands each value to exactly one popper (slot
// sequence numbers serialise access), so it is as thread-safe as
// moving T between threads — i.e. it needs and provides `T: Send`.
unsafe impl<T: Send> Send for BoundedQueue<T> {}
// SAFETY: same argument as Send above — the slot sequence protocol
// serialises every access to a slot's UnsafeCell, so shared references
// never yield concurrent access to the same value.
unsafe impl<T: Send> Sync for BoundedQueue<T> {}

impl<T> BoundedQueue<T> {
    /// The capacity a queue built with `capacity` actually gets.
    fn rounded_capacity(capacity: usize) -> usize {
        capacity.max(2).next_power_of_two()
    }

    fn new(capacity: usize) -> Self {
        let cap = Self::rounded_capacity(capacity);
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupancy estimate (exact when no push/pop is mid-flight).
    fn len(&self) -> usize {
        let tail = self.enqueue_pos.load(Ordering::Relaxed);
        let head = self.dequeue_pos.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// The dequeue cursor (for a producer that tracks its own enqueue
    /// cursor and wants occupancy with a single shared load).
    fn head(&self) -> usize {
        self.dequeue_pos.load(Ordering::Relaxed)
    }

    /// Enqueues `value`, or returns it when the queue is full. The
    /// transport itself always pushes through [`Self::push_single`];
    /// this symmetric CAS push exercises the full MPMC protocol in the
    /// queue's unit tests.
    #[cfg(test)]
    fn push(&self, value: T) -> std::result::Result<(), T> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - pos as isize {
                0 => {
                    match self.enqueue_pos.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: winning the CAS gives this thread
                            // exclusive ownership of the slot until the
                            // sequence store below publishes it.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(pos + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(now) => pos = now,
                    }
                }
                d if d < 0 => return Err(value), // full (a whole lap behind)
                _ => pos = self.enqueue_pos.load(Ordering::Relaxed),
            }
        }
    }

    /// Single-producer push: `pos` is the caller's private enqueue
    /// cursor. Skips the enqueue-position CAS of [`Self::push`], so it
    /// is roughly half the atomic traffic on the hot path.
    ///
    /// SAFETY (logical): the caller must be the *only* thread pushing
    /// to this queue for the queue's whole lifetime, and must route
    /// every push through the same cursor.
    fn push_single(&self, pos: &mut usize, value: T) -> std::result::Result<(), T> {
        let slot = &self.slots[*pos & self.mask];
        // ordering: Acquire pairs with the Release in pop()'s slot free
        // so the popper's read of last lap's value happens-before our
        // reuse of the slot.
        let seq = slot.seq.load(Ordering::Acquire);
        if seq != *pos {
            debug_assert!(
                (seq as isize) < (*pos as isize),
                "single-producer contract violated"
            );
            return Err(value); // full (slot still holds last lap's value)
        }
        // SAFETY: seq == pos means the slot is free, and being the sole
        // producer nobody else can claim it before the store below.
        unsafe { (*slot.value.get()).write(value) };
        // ordering: Release publishes the slot write above to the
        // popper whose Acquire load of seq observes pos + 1.
        slot.seq.store(*pos + 1, Ordering::Release);
        *pos += 1;
        // Keep the shared cursor in sync for len() observers and for
        // the MPMC pop/drop paths.
        self.enqueue_pos.store(*pos, Ordering::Relaxed);
        Ok(())
    }

    /// Dequeues the oldest value, or `None` when the queue is empty.
    fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            // ordering: Acquire pairs with the pusher's Release store
            // of seq, so the value written to the slot happens-before
            // our read of it below.
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - (pos + 1) as isize {
                0 => {
                    match self.dequeue_pos.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: winning the CAS gives this thread
                            // exclusive ownership of the initialised
                            // value in the slot.
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            // ordering: Release frees the slot; pairs
                            // with the pusher's Acquire so our read
                            // completes before the slot is rewritten.
                            slot.seq.store(pos + self.mask + 1, Ordering::Release);
                            return Some(value);
                        }
                        Err(now) => pos = now,
                    }
                }
                d if d < 0 => return None, // empty
                _ => pos = self.dequeue_pos.load(Ordering::Relaxed),
            }
        }
    }
}

impl<T> Drop for BoundedQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

/// What the producer does when the ring is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Wait for the consumer to make room (backpressure: the ingest
    /// thread stalls, no event is ever lost). The default.
    #[default]
    Block,
    /// Evict the oldest queued event to make room and count it in
    /// [`QueueStats::dropped`] (acquisition never stalls; the branch
    /// sees a gappy but fresh stream).
    DropOldest,
}

/// Configuration of one queue branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Ring capacity in events (rounded up to a power of two, min 2).
    pub capacity: usize,
    /// Full-queue behaviour.
    pub policy: QueuePolicy,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            policy: QueuePolicy::Block,
        }
    }
}

/// Telemetry snapshot of one queue branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events accepted by the producer side (enqueued).
    pub pushed: u64,
    /// Events the consumer delivered to the inner sink successfully.
    pub delivered: u64,
    /// Events evicted under [`QueuePolicy::DropOldest`].
    pub dropped: u64,
    /// Instantaneous ring occupancy.
    pub depth: usize,
    /// Highest ring occupancy observed by the producer after a push.
    ///
    /// Maintained against a *lazily refreshed* copy of the consumer's
    /// dequeue cursor: each push first bounds the depth using the stale
    /// copy — which can only **over**-state the true depth, because the
    /// dequeue cursor only ever advances — and reads the shared cursor
    /// exactly when that bound would raise the watermark. Laziness
    /// therefore changes *when* the consumer's cache line is touched,
    /// never the recorded value: this field is always the exact maximum
    /// of true post-push occupancies so far. In particular, a snapshot
    /// taken after [`QueueSink::join`] or a successful
    /// [`QueueSink::join_timeout`] (producer quiesced, ring drained) is
    /// exact and final — pinned by the
    /// `high_watermark_is_exact_after_join` test.
    pub high_watermark: usize,
    /// Ring capacity (after power-of-two rounding).
    pub capacity: usize,
}

/// Consumer-side failure latch: the first error is kept intact for the
/// producer to return verbatim; its rendering survives for any later
/// pushes (CoreError is not Clone).
#[derive(Default)]
struct Failure {
    first: Option<CoreError>,
    message: String,
}

/// How many spent envelopes the consumer accumulates locally before
/// handing them back through the recycle lock in one batch.
const RECYCLE_BATCH: usize = 64;

/// State shared between the producer handle and the consumer thread.
struct Shared {
    ring: BoundedQueue<Box<FleetEventBuf>>,
    /// Return path: the consumer appends spent envelopes in batches,
    /// the producer swaps the whole vector into its local pool when
    /// that runs dry — one lock per hundreds of events on each side,
    /// so the per-event producer refill is a plain `Vec::pop`.
    /// The boxes are deliberate (not `clippy::vec_box` waste): they are
    /// the same allocations that travel through the ring, so a push
    /// moves one pointer instead of the whole envelope struct.
    #[allow(clippy::vec_box)]
    recycled: Mutex<Vec<Box<FleetEventBuf>>>,
    /// Producer has stopped pushing; consumer drains and exits.
    done: AtomicBool,
    /// A [`QueueSink::join_timeout`] gave up waiting: the consumer must
    /// stop delivering, empty the ring, and exit at its next chance.
    /// Relaxed everywhere — it is a standalone go/no-go flag ordering
    /// nothing, and the consumer re-polls it at least every park
    /// timeout.
    abandoned: AtomicBool,
    /// Fast-path flag mirroring `failure.first.is_some()`.
    failed: AtomicBool,
    failure: Mutex<Failure>,
    delivered: AtomicU64,
    dropped: AtomicU64,
    /// Consumer is (about to be) parked; producer should unpark after
    /// pushing.
    consumer_parked: AtomicBool,
}

impl Shared {
    fn latch_error(&self, err: CoreError) {
        // A poisoned lock only means the other side panicked mid-latch;
        // the Failure record is plain data, so keep reporting errors.
        let mut failure = self
            .failure
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if failure.first.is_none() {
            failure.message = err.to_string();
            failure.first = Some(err);
        }
        drop(failure);
        // ordering: Release pairs with the producer's Acquire load of
        // `failed`, making the latched Failure record visible to it.
        self.failed.store(true, Ordering::Release);
    }

    fn take_error(&self) -> CoreError {
        let mut failure = self
            .failure
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match failure.first.take() {
            Some(err) => err,
            None => CoreError::Persist(format!("queue branch failed: {}", failure.message)),
        }
    }
}

/// A [`FleetSink`] adapter that runs its inner sink on a dedicated
/// consumer thread behind a bounded ring.
///
/// The handle is the *producer* half: [`FleetSink::on_event`] copies
/// the borrowed event into a recycled boxed [`FleetEventBuf`] and
/// enqueues the box; [`FleetSink::on_event_owned`] swaps the payload
/// into a pooled box (a header move, not a signature copy). The ring
/// itself carries only box pointers, so a push writes one word into the
/// slot and the whole slot array stays cache-resident. The spawned
/// thread pops boxes, feeds the inner sink, and hands them back through
/// a batched recycle pool, so the steady-state producer path allocates
/// nothing.
///
/// [`QueueSink::join`] (or dropping the handle) signals end-of-stream,
/// drains the ring, joins the thread and returns the inner sink
/// together with the first consumer error, if any.
///
/// ```no_run
/// use cwsmooth_core::pipeline::{Collect, Tee};
/// use cwsmooth_core::transport::QueueSink;
///
/// let mut tree = Tee((
///     QueueSink::spawn(Collect::new()),
///     QueueSink::spawn(Collect::new()),
/// ));
/// // ... engine.ingest_frame_sink(&frame, &mut tree) ...
/// let (a, res) = tree.0 .0.join();
/// res.unwrap();
/// # let _ = a;
/// ```
#[derive(Debug)]
pub struct QueueSink<S> {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<S>>,
    /// The consumer's thread token, for unparking.
    consumer: Thread,
    /// Producer-local envelope cache, refilled by swapping in the
    /// consumer's recycled batch when it runs dry (boxed for the same
    /// reason as `Shared::recycled`).
    #[allow(clippy::vec_box)]
    pool: Vec<Box<FleetEventBuf>>,
    policy: QueuePolicy,
    /// Producer-side counters and cursor: this handle is the ring's
    /// only pusher, so these live as plain fields instead of shared
    /// atomics — the push hot path pays no read-modify-write for
    /// telemetry.
    pushed: u64,
    high_watermark: usize,
    /// Private enqueue cursor for [`BoundedQueue::push_single`].
    ring_pos: usize,
    /// Stale copy of the consumer's dequeue cursor. The true cursor
    /// lives on a cache line the consumer writes on every pop, so the
    /// push path avoids touching it: the depth estimated against this
    /// copy only *over*-states the real depth, and the copy is
    /// refreshed exactly when the estimate would raise the watermark.
    head_cache: usize,
    /// Live registry handles ([`QueueSink::with_metrics`]); `None`
    /// keeps the push path branch-free of metric stores.
    metrics: Option<QueueMetrics>,
    /// How much of `pushed` has been flushed into the live counter —
    /// the registry refresh is batched (see `METRICS_REFRESH_EVERY`),
    /// not per push.
    pushed_flushed: u64,
    /// The `queue` label value this branch reports under.
    label: String,
}

/// How many pushes between refreshes of the live registry series. The
/// producer keeps its exact telemetry in plain fields and mirrors them
/// into the shared handles once per batch (plus an exact flush at
/// join), so the steady-state push path pays the atomic stores on one
/// push in `METRICS_REFRESH_EVERY` instead of all of them. A scraper
/// therefore sees counters/gauges that trail the truth by at most one
/// batch while the producer is mid-stream.
const METRICS_REFRESH_EVERY: u64 = 64;

/// Producer-side registry handles: mirrored from the plain telemetry
/// fields every `METRICS_REFRESH_EVERY` pushes (and exactly at
/// join), so a scraper sees near-live depth and watermark without the
/// producer paying shared stores on every push.
#[derive(Debug)]
struct QueueMetrics {
    pushed: Counter,
    dropped: Counter,
    depth: Gauge,
    high_watermark: Gauge,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("depth", &self.ring.len())
            .field("done", &self.done.load(Ordering::Relaxed))
            .field("failed", &self.failed.load(Ordering::Relaxed))
            .finish()
    }
}

impl<S: FleetSink + Send + 'static> QueueSink<S> {
    /// Spawns a consumer thread for `inner` with the default
    /// configuration (capacity 1024, [`QueuePolicy::Block`]).
    pub fn spawn(inner: S) -> Self {
        Self::with_config(inner, QueueConfig::default())
    }

    /// Spawns a consumer thread for `inner` with an explicit capacity
    /// and full-queue policy.
    pub fn with_config(inner: S, config: QueueConfig) -> Self {
        Self::build(inner, config, None, "queue".to_string())
    }

    /// [`QueueSink::with_config`] wired to a metrics registry: the
    /// branch registers `cws_queue_*` series under `queue="<label>"`
    /// and keeps them live — the push counter and depth/watermark
    /// gauges refreshed by the producer once per
    /// `METRICS_REFRESH_EVERY` pushes (relaxed stores on
    /// pre-registered handles: no allocation, no lock, amortised to a
    /// fraction of a store per push), the delivered counter bumped by
    /// the consumer thread as it feeds the inner sink. The handles
    /// outlive the sink and are flushed exactly at join, so the series
    /// read the true totals after [`QueueSink::join`].
    pub fn with_metrics(inner: S, config: QueueConfig, registry: &Registry, label: &str) -> Self {
        let labels = &[("queue", label)];
        let metrics = QueueMetrics {
            pushed: registry.counter("cws_queue_pushed_total", labels),
            dropped: registry.counter("cws_queue_dropped_total", labels),
            depth: registry.gauge("cws_queue_depth", labels),
            high_watermark: registry.gauge("cws_queue_high_watermark", labels),
        };
        registry
            .gauge("cws_queue_capacity", labels)
            .set(BoundedQueue::<()>::rounded_capacity(config.capacity) as u64);
        let delivered = registry.counter("cws_queue_delivered_total", labels);
        Self::build(inner, config, Some((metrics, delivered)), label.to_string())
    }

    fn build(
        inner: S,
        config: QueueConfig,
        metrics: Option<(QueueMetrics, Counter)>,
        label: String,
    ) -> Self {
        let (metrics, delivered) = match metrics {
            Some((m, d)) => (Some(m), Some(d)),
            None => (None, None),
        };
        let shared = Arc::new(Shared {
            ring: BoundedQueue::new(config.capacity),
            recycled: Mutex::new(Vec::new()),
            done: AtomicBool::new(false),
            abandoned: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            failure: Mutex::new(Failure::default()),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            consumer_parked: AtomicBool::new(false),
        });
        let worker_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("cwsmooth-queue".into())
            .spawn(move || consumer_loop(worker_shared, inner, delivered))
            // lint:allow(no-panic-paths): failing to spawn a thread at
            // construction is unrecoverable resource exhaustion, not a
            // data-path error the sink contract covers.
            .expect("spawn queue consumer thread");
        let consumer = handle.thread().clone();
        Self {
            shared,
            handle: Some(handle),
            consumer,
            pool: Vec::new(),
            policy: config.policy,
            pushed: 0,
            high_watermark: 0,
            ring_pos: 0,
            head_cache: 0,
            metrics,
            pushed_flushed: 0,
            label,
        }
    }
}

impl<S> QueueSink<S> {
    /// Current branch telemetry.
    ///
    /// `pushed` and `high_watermark` are the producer's own plain
    /// fields and are exact for everything pushed so far;
    /// `high_watermark` in particular is the exact maximum post-push
    /// occupancy despite its lazily refreshed head cache (see
    /// [`QueueStats::high_watermark`]). `delivered`, `dropped` and
    /// `depth` are relaxed reads of consumer-shared state and may trail
    /// in-flight deliveries by a moment; once the branch is quiescent —
    /// after [`QueueSink::join`]/[`QueueSink::join_timeout`] — every
    /// field is exact.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.pushed,
            delivered: self.shared.delivered.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            depth: self.shared.ring.len(),
            high_watermark: self.high_watermark,
            capacity: self.shared.ring.capacity(),
        }
    }

    /// Signals end-of-stream, waits for the consumer to drain the ring,
    /// and returns the inner sink plus the first consumer error (if the
    /// producer has not already surfaced it from a push).
    pub fn join(mut self) -> (S, Result<()>) {
        // lint:allow(no-panic-paths): infallible by construction —
        // join consumes self, so the handle can only be absent here if
        // shutdown ran twice, which would be a bug worth a loud panic.
        let inner = self.shutdown().expect("join called once");
        let result = self.latched_result();
        (inner, result)
    }

    /// Like [`QueueSink::join`], but bounds the wait: a wedged consumer
    /// (an inner sink blocked forever) cannot hang shutdown. Signals
    /// end-of-stream and gives the consumer `timeout` to finish its
    /// drain; on success this is exactly `join` (plus a final stats
    /// snapshot). On timeout the consumer thread is *abandoned* — told
    /// to stop delivering and detached, never blocked on — and the call
    /// returns `(None, stats, Err(_))`, with the undrained backlog
    /// reported in [`QueueStats::depth`] rather than silently waited
    /// out. Events already handed to the inner sink are not rolled
    /// back; abandoned ring events are dropped once the consumer next
    /// runs.
    pub fn join_timeout(mut self, timeout: Duration) -> (Option<S>, QueueStats, Result<()>) {
        let Some(handle) = self.handle.take() else {
            // Unreachable in practice: join/join_timeout consume self.
            return (None, self.stats(), Ok(()));
        };
        // ordering: Release pairs with the consumer's Acquire load of
        // `done`, so every push before this call is visible to the
        // consumer's final drain.
        self.shared.done.store(true, Ordering::Release);
        self.consumer.unpark();
        let deadline = Instant::now() + timeout;
        while !handle.is_finished() {
            if Instant::now() >= deadline {
                self.shared.abandoned.store(true, Ordering::Relaxed);
                self.consumer.unpark();
                // The producer is done pushing even on this path: make
                // the live series reflect the exact pushed total and
                // the undrained backlog.
                self.refresh_metrics();
                let stats = self.stats();
                // Detach: the wedged thread exits on its own whenever
                // the inner sink unblocks.
                drop(handle);
                let err = CoreError::Persist(format!(
                    "queue consumer failed to drain within {timeout:?} \
                     ({} events still queued)",
                    stats.depth
                ));
                return (None, stats, Err(err));
            }
            thread::sleep(Duration::from_micros(200));
        }
        // lint:allow(no-panic-paths): a panicking consumer is a bug in
        // the inner sink; propagating the panic beats swallowing it.
        let inner = handle.join().expect("queue consumer thread panicked");
        // Final flush + exact final depth (see `shutdown`).
        self.refresh_metrics();
        if let Some(m) = &self.metrics {
            m.depth.set(self.shared.ring.len() as u64);
        }
        let result = self.latched_result();
        (Some(inner), self.stats(), result)
    }

    /// Mirrors the producer's exact plain-field telemetry into the
    /// live registry handles: counter delta for `pushed`, gauge stores
    /// for the stale-head depth bound and the watermark. No-op without
    /// metrics.
    fn refresh_metrics(&mut self) {
        if let Some(m) = &self.metrics {
            m.pushed.add(self.pushed - self.pushed_flushed);
            self.pushed_flushed = self.pushed;
            m.depth
                .set(self.ring_pos.saturating_sub(self.head_cache) as u64);
            m.high_watermark.set(self.high_watermark as u64);
        }
    }

    /// The first consumer-side error, unless a push already surfaced it.
    fn latched_result(&self) -> Result<()> {
        // ordering: Acquire pairs with latch_error's Release store so
        // the latched Failure record is fully visible before we read it.
        if self.shared.failed.load(Ordering::Acquire) {
            let mut failure = self
                .shared
                .failure
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            match failure.first.take() {
                Some(err) => Err(err),
                // Already surfaced through a push: joining is clean.
                None => Ok(()),
            }
        } else {
            Ok(())
        }
    }

    /// Stops the consumer and joins it, returning the inner sink.
    fn shutdown(&mut self) -> Option<S> {
        let handle = self.handle.take()?;
        // ordering: Release pairs with the consumer's Acquire load of
        // `done`, so every push before shutdown is visible to the
        // consumer's final drain.
        self.shared.done.store(true, Ordering::Release);
        self.consumer.unpark();
        // lint:allow(no-panic-paths): a panicking consumer is a bug in
        // the inner sink; propagating the panic beats swallowing it.
        let inner = handle.join().expect("queue consumer thread panicked");
        // Final flush: exact pushed/watermark totals, then — since the
        // consumer is gone and the ring is final — replace the
        // producer-side depth estimate with the exact residue (0 after
        // a clean join).
        self.refresh_metrics();
        if let Some(m) = &self.metrics {
            m.depth.set(self.shared.ring.len() as u64);
        }
        Some(inner)
    }

    /// Fetches a recycled envelope, allocating only while the pool is
    /// still warming up.
    fn envelope(&mut self) -> Box<FleetEventBuf> {
        if let Some(buf) = self.pool.pop() {
            return buf;
        }
        // Pool ran dry: take everything the consumer has recycled so
        // far in one swap (off the per-event path).
        {
            // Poisoning cannot corrupt a Vec of owned envelopes; keep
            // the pool running rather than panicking the producer.
            let mut recycled = self
                .shared
                .recycled
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if !recycled.is_empty() {
                std::mem::swap(&mut self.pool, &mut recycled);
            }
        }
        self.pool.pop().unwrap_or_default()
    }

    /// Enqueues `buf` under the configured full-queue policy. On
    /// success updates push telemetry; on failure (consumer died or
    /// errored) returns the latched error.
    fn enqueue(&mut self, mut buf: Box<FleetEventBuf>) -> Result<()> {
        loop {
            // ordering: Acquire pairs with latch_error's Release so the
            // Failure record read by take_error below is visible.
            if self.shared.failed.load(Ordering::Acquire) {
                // Recycle locally; the error aborts the frame.
                self.pool.push(buf);
                return Err(self.shared.take_error());
            }
            // This handle is the ring's only pusher.
            match self.shared.ring.push_single(&mut self.ring_pos, buf) {
                Ok(()) => break,
                Err(back) => {
                    buf = back;
                    match self.policy {
                        QueuePolicy::Block => {
                            // Let the consumer run; parking is not
                            // needed on the producer side because the
                            // consumer drains continuously.
                            if self.shared.consumer_parked.load(Ordering::Relaxed) {
                                self.consumer.unpark();
                            }
                            thread::yield_now();
                        }
                        QueuePolicy::DropOldest => {
                            if let Some(evicted) = self.shared.ring.pop() {
                                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                                if let Some(m) = &self.metrics {
                                    m.dropped.inc();
                                }
                                self.pool.push(evicted);
                            }
                            // Full → non-full can also have been the
                            // consumer's doing; just retry.
                        }
                    }
                }
            }
        }
        self.pushed += 1;
        // ring_pos is the exact tail, so depth against the stale head
        // cache is an upper bound on the true depth. Only when that
        // bound would raise the watermark is the shared cursor
        // actually read — the steady-state push path never touches the
        // consumer's cache line.
        if self.ring_pos.saturating_sub(self.head_cache) > self.high_watermark {
            self.head_cache = self.shared.ring.head();
            let depth = self.ring_pos.saturating_sub(self.head_cache);
            if depth > self.high_watermark {
                self.high_watermark = depth;
            }
        }
        if self.metrics.is_some() && self.pushed - self.pushed_flushed >= METRICS_REFRESH_EVERY {
            // Batched refresh of the live series (relaxed stores on
            // pre-registered handles: no lock, no allocation). The
            // depth gauge mirrors the same stale-head upper bound the
            // watermark logic uses, so the refresh never touches the
            // consumer's cache line either.
            self.refresh_metrics();
        }
        if self.shared.consumer_parked.load(Ordering::Relaxed) {
            self.consumer.unpark();
        }
        Ok(())
    }
}

/// Snapshot-style export of [`QueueSink::stats`] — for branches not
/// constructed through [`QueueSink::with_metrics`], or for publishing
/// through a [`cwsmooth_obs::MetricsHub`]. Don't do both for the same
/// branch: the live handles and this snapshot emit the same series
/// names and would render duplicates.
impl<S> Observe for QueueSink<S> {
    fn observe(&self, out: &mut Snapshot) {
        let stats = self.stats();
        let labels = &[("queue", self.label.as_str())];
        out.counter("cws_queue_pushed_total", labels, stats.pushed);
        out.counter("cws_queue_delivered_total", labels, stats.delivered);
        out.counter("cws_queue_dropped_total", labels, stats.dropped);
        out.gauge("cws_queue_depth", labels, stats.depth as f64);
        out.gauge(
            "cws_queue_high_watermark",
            labels,
            stats.high_watermark as f64,
        );
        out.gauge("cws_queue_capacity", labels, stats.capacity as f64);
    }
}

impl<S> FleetSink for QueueSink<S> {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        let mut buf = self.envelope();
        buf.copy_from(event);
        self.enqueue(buf)
    }

    fn on_event_owned(&mut self, buf: FleetEventBuf) -> Result<FleetEventBuf> {
        // Swap the payload into a pooled box (a header move, not a
        // signature copy) and hand the previous pooled envelope back.
        let mut boxed = self.envelope();
        let prev = std::mem::replace(&mut *boxed, buf);
        self.enqueue(boxed)?;
        Ok(prev)
    }
}

impl<S> Drop for QueueSink<S> {
    fn drop(&mut self) {
        // Drains accepted events, joins the thread, drops the sink.
        let _ = self.shutdown();
    }
}

/// The consumer thread: pops envelopes, feeds the inner sink, recycles
/// the envelopes, and exits once the producer is done and the ring is
/// drained. Returns the inner sink to the joiner.
fn consumer_loop<S: FleetSink>(shared: Arc<Shared>, mut inner: S, delivered: Option<Counter>) -> S {
    let mut spent: Vec<Box<FleetEventBuf>> = Vec::with_capacity(RECYCLE_BATCH);
    loop {
        // An impatient joiner gave up on this branch: stop delivering,
        // empty the ring (the producer is gone; nobody recycles), and
        // exit with whatever the inner sink already absorbed.
        if shared.abandoned.load(Ordering::Relaxed) {
            while shared.ring.pop().is_some() {}
            return inner;
        }
        match shared.ring.pop() {
            Some(buf) => {
                deliver(&shared, &mut inner, buf, &mut spent, delivered.as_ref());
                if spent.len() >= RECYCLE_BATCH {
                    flush_spent(&shared, &mut spent);
                }
            }
            None => {
                // ordering: Acquire pairs with shutdown's Release store
                // of `done`, so every pre-shutdown push is visible to
                // the final drain below.
                if shared.done.load(Ordering::Acquire) {
                    // The producer stopped *after* its last push, so
                    // anything it pushed is visible by now; one final
                    // drain closes the pop-then-done race.
                    while let Some(buf) = shared.ring.pop() {
                        deliver(&shared, &mut inner, buf, &mut spent, delivered.as_ref());
                    }
                    flush_spent(&shared, &mut spent);
                    return inner;
                }
                // Idle: hand every spent envelope back before parking
                // so the producer never starves while we sleep.
                flush_spent(&shared, &mut spent);
                shared.consumer_parked.store(true, Ordering::Relaxed);
                // Recheck after publishing the flag so a push that
                // missed it can't strand us parked; the timeout is a
                // belt-and-braces bound, not the wake mechanism.
                // ordering: Acquire matches the drain-path load above —
                // done=true must also carry the last pushes here.
                if shared.ring.len() == 0 && !shared.done.load(Ordering::Acquire) {
                    thread::park_timeout(Duration::from_millis(1));
                }
                shared.consumer_parked.store(false, Ordering::Relaxed);
            }
        }
    }
}

/// Hands the consumer's locally batched envelopes back to the producer.
#[allow(clippy::vec_box)]
fn flush_spent(shared: &Shared, spent: &mut Vec<Box<FleetEventBuf>>) {
    if !spent.is_empty() {
        // Recycled envelopes are plain owned data; survive poisoning.
        shared
            .recycled
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .append(spent);
    }
}

/// Feeds one envelope to the inner sink (unless the branch has already
/// failed) and batches the envelope for recycling.
#[allow(clippy::vec_box)]
fn deliver<S: FleetSink>(
    shared: &Shared,
    inner: &mut S,
    mut buf: Box<FleetEventBuf>,
    spent: &mut Vec<Box<FleetEventBuf>>,
    delivered: Option<&Counter>,
) {
    // ordering: Acquire pairs with latch_error's Release — once failed
    // is observed, the latched record is complete and we stop feeding
    // the inner sink.
    if !shared.failed.load(Ordering::Acquire) {
        match inner.on_event_owned(std::mem::take(&mut *buf)) {
            Ok(envelope) => {
                *buf = envelope;
                shared.delivered.fetch_add(1, Ordering::Relaxed);
                if let Some(counter) = delivered {
                    counter.inc();
                }
            }
            Err(err) => shared.latch_error(err),
        }
    }
    // Recycle the box either way (on a failed branch the ring is
    // drained without delivering).
    spent.push(buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::CsSignature;
    use crate::pipeline::Collect;

    fn event(node: usize, window_index: usize) -> FleetEvent {
        FleetEvent {
            node,
            window_index,
            signature: CsSignature {
                re: vec![node as f64 + 0.5, window_index as f64],
                im: vec![-0.25, 2.0],
            },
        }
    }

    #[test]
    fn bounded_queue_is_fifo_and_bounded() {
        let q: BoundedQueue<usize> = BoundedQueue::new(4);
        assert_eq!(q.capacity(), 4);
        for i in 0..4 {
            assert!(q.push(i).is_ok());
        }
        assert_eq!(q.push(99), Err(99), "full queue rejects");
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i), "FIFO order");
        }
        assert_eq!(q.pop(), None);
        // Wrap-around laps work.
        for lap in 0..3 {
            for i in 0..3 {
                q.push(lap * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(q.pop(), Some(lap * 10 + i));
            }
        }
    }

    #[test]
    fn bounded_queue_capacity_rounds_up() {
        let q: BoundedQueue<u8> = BoundedQueue::new(5);
        assert_eq!(q.capacity(), 8);
        let tiny: BoundedQueue<u8> = BoundedQueue::new(0);
        assert_eq!(tiny.capacity(), 2);
    }

    #[test]
    fn queue_sink_delivers_everything_in_order() {
        let mut sink = QueueSink::with_config(
            Collect::new(),
            QueueConfig {
                capacity: 8,
                policy: QueuePolicy::Block,
            },
        );
        let sent: Vec<FleetEvent> = (0..200).map(|i| event(i % 4, i / 4)).collect();
        for e in &sent {
            sink.on_event(e).unwrap();
        }
        let stats = sink.stats();
        assert_eq!(stats.pushed, 200);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.capacity, 8);
        assert!(stats.high_watermark >= 1);
        let (collect, res) = sink.join();
        res.unwrap();
        assert_eq!(collect.events(), &sent[..], "bit-identical, in order");
    }

    #[test]
    fn owned_handoff_round_trips_envelopes() {
        let mut sink = QueueSink::spawn(Collect::new());
        let mut buf = FleetEventBuf::new();
        for i in 0..50 {
            buf.copy_from(&event(1, i));
            buf = sink.on_event_owned(buf).unwrap();
        }
        let (collect, res) = sink.join();
        res.unwrap();
        assert_eq!(collect.events().len(), 50);
        assert_eq!(collect.events()[49], event(1, 49));
    }

    #[test]
    fn drop_mid_stream_drains_accepted_events() {
        use std::sync::atomic::AtomicU64;

        struct CountSink(Arc<AtomicU64>);
        impl FleetSink for CountSink {
            fn on_event(&mut self, _event: &FleetEvent) -> Result<()> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }

        let seen = Arc::new(AtomicU64::new(0));
        let mut sink = QueueSink::spawn(CountSink(Arc::clone(&seen)));
        for i in 0..500 {
            sink.on_event(&event(0, i)).unwrap();
        }
        drop(sink); // joins, draining the ring first
        assert_eq!(seen.load(Ordering::Relaxed), 500, "no acked event lost");
    }

    #[test]
    fn queue_sink_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<QueueSink<Collect>>();
    }

    #[test]
    fn join_timeout_abandons_a_wedged_consumer() {
        use std::sync::Condvar;

        /// Counts events, then blocks forever on a gate — a consumer
        /// that wedges mid-delivery.
        struct Wedge {
            gate: Arc<(Mutex<bool>, Condvar)>,
            seen: Arc<AtomicU64>,
        }
        impl FleetSink for Wedge {
            fn on_event(&mut self, _event: &FleetEvent) -> Result<()> {
                self.seen.fetch_add(1, Ordering::Relaxed);
                let (lock, cv) = &*self.gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(())
            }
        }

        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let seen = Arc::new(AtomicU64::new(0));
        let mut sink = QueueSink::with_config(
            Wedge {
                gate: Arc::clone(&gate),
                seen: Arc::clone(&seen),
            },
            QueueConfig {
                capacity: 8,
                policy: QueuePolicy::Block,
            },
        );
        // Fill to (not past) capacity so the producer itself never
        // blocks; the consumer takes one event and wedges on it.
        for i in 0..8 {
            sink.on_event(&event(0, i)).unwrap();
        }
        while seen.load(Ordering::Relaxed) == 0 {
            thread::yield_now();
        }

        let t0 = Instant::now();
        let (inner, stats, res) = sink.join_timeout(Duration::from_millis(50));
        assert!(t0.elapsed() < Duration::from_secs(10), "must not hang");
        assert!(inner.is_none(), "wedged sink cannot be returned");
        assert!(stats.depth > 0, "undrained backlog must be reported");
        let msg = res.unwrap_err().to_string();
        assert!(msg.contains("still queued"), "unexpected error: {msg}");

        // Unwedge so the abandoned thread can exit cleanly; it must
        // drop the backlog rather than deliver it.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen.load(Ordering::Relaxed) > 1 && Instant::now() < deadline {
            thread::yield_now();
        }
        assert_eq!(seen.load(Ordering::Relaxed), 1, "backlog must be dropped");
    }

    #[test]
    fn high_watermark_is_exact_after_join() {
        use std::sync::Condvar;

        /// Counts events, blocking on a gate while it is closed — lets
        /// the test wedge the consumer at a known point.
        struct Gated {
            gate: Arc<(Mutex<bool>, Condvar)>,
            seen: Arc<AtomicU64>,
        }
        impl FleetSink for Gated {
            fn on_event(&mut self, _event: &FleetEvent) -> Result<()> {
                self.seen.fetch_add(1, Ordering::Relaxed);
                let (lock, cv) = &*self.gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(())
            }
        }

        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let seen = Arc::new(AtomicU64::new(0));
        let mut sink = QueueSink::with_config(
            Gated {
                gate: Arc::clone(&gate),
                seen: Arc::clone(&seen),
            },
            QueueConfig {
                capacity: 8,
                policy: QueuePolicy::Block,
            },
        );
        // Wedge the consumer on the very first event: once `seen` goes
        // to 1 the consumer has popped event 0 (the pop precedes the
        // delivery that blocked), so the dequeue cursor sits at 1 and
        // cannot move again while the gate is closed.
        sink.on_event(&event(0, 0)).unwrap();
        while seen.load(Ordering::Relaxed) == 0 {
            thread::yield_now();
        }
        // Seven more pushes: the true occupancy after the k-th push is
        // exactly k - 1, so this run's maximum post-push depth is 7.
        for i in 1..8 {
            sink.on_event(&event(0, i)).unwrap();
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        // A post-join snapshot must report that maximum exactly — the
        // lazily refreshed head cache may defer reading the consumer's
        // cursor, but never changes the recorded watermark.
        let (inner, stats, res) = sink.join_timeout(Duration::from_secs(30));
        res.unwrap();
        assert!(inner.is_some(), "consumer drains once the gate opens");
        assert_eq!(stats.high_watermark, 7, "post-join watermark is exact");
        assert_eq!(stats.pushed, 8);
        assert_eq!(stats.delivered, 8);
        assert_eq!(stats.depth, 0);
    }

    #[test]
    fn with_metrics_keeps_registry_series_live() {
        use cwsmooth_obs::Value;

        let registry = Registry::new();
        let mut sink = QueueSink::with_metrics(
            Collect::new(),
            QueueConfig {
                capacity: 8,
                policy: QueuePolicy::Block,
            },
            &registry,
            "test",
        );
        for i in 0..40 {
            sink.on_event(&event(i % 2, i / 2)).unwrap();
        }
        // The snapshot path mirrors stats() one sample per field.
        let mut snap = Snapshot::new();
        sink.observe(&mut snap);
        assert_eq!(snap.samples().len(), 6);
        assert!(snap
            .samples()
            .iter()
            .all(|s| s.labels == vec![("queue".to_string(), "test".to_string())]));

        let (collect, res) = sink.join();
        res.unwrap();
        assert_eq!(collect.events().len(), 40);

        // The live handles outlive the sink: a post-join scrape of the
        // registry sees the final totals.
        let mut live = Snapshot::new();
        registry.observe(&mut live);
        let value = |name: &str| {
            live.samples()
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.value.clone())
        };
        assert_eq!(value("cws_queue_pushed_total"), Some(Value::Counter(40)));
        assert_eq!(value("cws_queue_delivered_total"), Some(Value::Counter(40)));
        assert_eq!(value("cws_queue_dropped_total"), Some(Value::Counter(0)));
        assert_eq!(value("cws_queue_capacity"), Some(Value::Gauge(8.0)));
    }

    #[test]
    fn join_timeout_on_a_live_consumer_matches_join() {
        let mut sink = QueueSink::spawn(Collect::new());
        let sent: Vec<FleetEvent> = (0..100).map(|i| event(i % 3, i / 3)).collect();
        for e in &sent {
            sink.on_event(e).unwrap();
        }
        let (inner, stats, res) = sink.join_timeout(Duration::from_secs(30));
        res.unwrap();
        let collect = inner.expect("live consumer joins within the timeout");
        assert_eq!(collect.events(), &sent[..]);
        assert_eq!(stats.delivered, 100);
        assert_eq!(stats.depth, 0);
    }
}
