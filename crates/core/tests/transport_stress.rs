//! Seeded yield-injection stress test for
//! [`cwsmooth_core::transport::QueueSink`].
//!
//! Each seed drives one producer/consumer run with pseudo-random
//! `yield_now` injection on *both* sides of the ring, perturbing the
//! interleaving between the producer's push path (including DropOldest
//! eviction) and the consumer's pop/park loop.  At quiescence every run
//! must satisfy the conservation identity
//!
//! ```text
//! pushed == delivered + dropped + depth
//! ```
//!
//! and `join()` must drain the ring and return cleanly.  The default
//! sweep is 64 seeds per policy; CI sets `TRANSPORT_STRESS_SEEDS=8` for
//! a fast subset (the seed *values* are identical prefixes, so a CI
//! failure always reproduces locally).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cwsmooth_core::error::Result;
use cwsmooth_core::fleet::{FleetEvent, FleetSink};
use cwsmooth_core::transport::{QueueConfig, QueuePolicy, QueueSink};

const DEFAULT_SEEDS: u64 = 64;
const EVENTS_PER_RUN: usize = 400;

/// SplitMix64: tiny, deterministic, and good enough to decorrelate the
/// yield points of the two threads from a shared seed.
struct SplitMix(u64);

impl SplitMix {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn seed_count() -> u64 {
    std::env::var("TRANSPORT_STRESS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEEDS)
}

/// Counts deliveries and yields a seed-derived number of times per
/// event, stretching the consumer's time inside `on_event` so the ring
/// cycles through empty, full, and eviction-contended states.
struct JitterSink {
    rng: SplitMix,
    delivered: Arc<AtomicU64>,
    last_per_node: Vec<Option<usize>>,
}

impl FleetSink for JitterSink {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        for _ in 0..(self.rng.next() % 4) {
            std::thread::yield_now();
        }
        // Per-node window indices must arrive strictly increasing even
        // when DropOldest evicts between them: eviction may skip
        // windows, never reorder or replay them.
        if let Some(prev) = self.last_per_node[event.node] {
            assert!(
                event.window_index > prev,
                "node {} went backwards: {} after {}",
                event.node,
                event.window_index,
                prev
            );
        }
        self.last_per_node[event.node] = Some(event.window_index);
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

fn event(node: usize, window_index: usize) -> FleetEvent {
    FleetEvent {
        node,
        window_index,
        signature: cwsmooth_core::cs::CsSignature {
            re: vec![window_index as f64, node as f64],
            im: vec![-(window_index as f64)],
        },
    }
}

/// Runs one seeded producer/consumer session and checks conservation at
/// quiescence and after `join()`.
fn stress_one(seed: u64, policy: QueuePolicy) {
    let mut rng = SplitMix::new(seed);
    // Small rings overflow constantly, which is the point.
    let capacity = 2 + (rng.next() % 7) as usize;
    let nodes = 1 + (rng.next() % 3) as usize;
    let delivered = Arc::new(AtomicU64::new(0));
    let mut queue = QueueSink::with_config(
        JitterSink {
            rng: SplitMix::new(seed ^ 0xdead_beef),
            delivered: Arc::clone(&delivered),
            last_per_node: vec![None; nodes],
        },
        QueueConfig { capacity, policy },
    );

    let mut windows = vec![0usize; nodes];
    for _ in 0..EVENTS_PER_RUN {
        let node = (rng.next() % nodes as u64) as usize;
        queue.on_event(&event(node, windows[node])).unwrap();
        windows[node] += 1;
        for _ in 0..(rng.next() % 3) {
            std::thread::yield_now();
        }
    }

    // Quiescence: the identity must hold on a *stable* snapshot — two
    // consecutive reads that agree and balance.  A single read can
    // legitimately tear (delivered incremented between loading
    // `delivered` and `depth`), so only a repeated balanced snapshot
    // counts.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let a = queue.stats();
        let b = queue.stats();
        let balanced =
            a.pushed == a.delivered + a.dropped + a.depth as u64 && a.delivered == b.delivered;
        if balanced && a.depth == b.depth && a.dropped == b.dropped {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed} ({policy:?}): no quiescent balanced snapshot; last {a:?}"
        );
        std::thread::yield_now();
    }

    let before = queue.stats();
    assert_eq!(
        before.pushed,
        before.delivered + before.dropped + before.depth as u64,
        "seed {seed} ({policy:?}): conservation broke at quiescence: {before:?}"
    );
    assert_eq!(before.pushed, EVENTS_PER_RUN as u64);
    if matches!(policy, QueuePolicy::Block) {
        assert_eq!(before.dropped, 0, "Block must never drop (seed {seed})");
    }
    // `stats().capacity` is the ring's power-of-two rounding of the
    // requested capacity; the watermark is bounded by that, not by the
    // request.
    assert!(before.high_watermark <= before.capacity);

    let (sink, res) = queue.join();
    res.unwrap_or_else(|e| panic!("seed {seed} ({policy:?}): join surfaced {e}"));
    // join() drains the ring, so the envelope count must now balance
    // with depth 0 — and the sink's own counter must agree with the
    // transport's.
    let delivered_total = sink.delivered.load(Ordering::Relaxed);
    assert_eq!(
        delivered_total + before.dropped,
        EVENTS_PER_RUN as u64,
        "seed {seed} ({policy:?}): post-join accounting is off"
    );
    assert_eq!(delivered_total, delivered.load(Ordering::Relaxed));
}

#[test]
fn block_policy_conserves_events_across_seeds() {
    for seed in 0..seed_count() {
        stress_one(seed, QueuePolicy::Block);
    }
}

#[test]
fn drop_oldest_policy_conserves_events_across_seeds() {
    for seed in 0..seed_count() {
        stress_one(seed, QueuePolicy::DropOldest);
    }
}
