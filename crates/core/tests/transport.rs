//! Pins the off-thread transport contract of
//! [`cwsmooth_core::transport::QueueSink`]:
//!
//! * a threaded `Tee(Queue(..), Queue(..), Queue(..))` tree delivers
//!   **bit-identical** per-branch event sequences to the synchronous
//!   tree (exact `==`, no tolerance) — per-node order is preserved
//!   because each branch is one FIFO with one producer and consumer;
//! * a consumer-side sink error surfaces on the producer's next push,
//!   aborting the frame with [`FleetStats`] untouched, exactly like a
//!   synchronous sink error;
//! * [`QueuePolicy::DropOldest`]'s drop counter is exact under forced
//!   overflow (consumer gated, ring filled, evictions counted one by
//!   one).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::error::{CoreError, Result};
use cwsmooth_core::fleet::{FleetEngine, FleetEvent, FleetSink, FleetStats};
use cwsmooth_core::pipeline::{Collect, Tee};
use cwsmooth_core::transport::{QueueConfig, QueuePolicy, QueueSink};
use cwsmooth_data::WindowSpec;
use cwsmooth_linalg::Matrix;

const NODES: usize = 9;
const SENSORS: usize = 4;
const FRAMES: usize = 150;

fn methods() -> Vec<CsMethod> {
    (0..NODES)
        .map(|node| {
            let s = Matrix::from_fn(SENSORS, 140, |r, c| {
                ((c as f64 / (2.0 + r as f64) + node as f64 * 0.29).sin() * (r + 1) as f64)
                    + 0.05 * node as f64
            });
            CsMethod::new(CsTrainer::default().train(&s).unwrap(), 3).unwrap()
        })
        .collect()
}

fn column(node: usize, t: usize) -> Vec<f64> {
    (0..SENSORS)
        .map(|r| (t as f64 / (2.0 + r as f64) + node as f64 * 0.29).cos() * (r + 1) as f64)
        .collect()
}

/// Node `i` drops frame `t` on a deterministic pattern.
fn gap(node: usize, t: usize) -> bool {
    (node + 2 * t).is_multiple_of(11)
}

fn engine(shards: usize) -> FleetEngine {
    let spec = WindowSpec::new(8, 4).unwrap();
    FleetEngine::with_shards(methods(), spec, shards).unwrap()
}

fn fill(frame: &mut cwsmooth_core::fleet::FleetFrame, t: usize) {
    frame.clear();
    for node in 0..NODES {
        if !gap(node, t) {
            frame
                .slot_mut(node)
                .unwrap()
                .copy_from_slice(&column(node, t));
        }
    }
}

#[test]
fn threaded_tree_matches_synchronous_tree_bitwise() {
    for shards in [1usize, 3] {
        // Synchronous reference tree.
        let mut sync_engine = engine(shards);
        let mut frame = sync_engine.frame();
        let mut sync_tree = Tee((Collect::new(), Collect::new(), Collect::new()));
        for t in 0..FRAMES {
            fill(&mut frame, t);
            sync_engine
                .ingest_frame_sink(&frame, &mut sync_tree)
                .unwrap();
        }
        let expect = sync_tree.0 .0.events();
        assert!(expect.len() > 100, "premise: a rich event stream");

        // Threaded tree: every branch behind its own bounded queue. A
        // small capacity forces real producer/consumer interleaving
        // (and blocking) instead of one big buffered burst.
        let mut threaded_engine = engine(shards);
        let mut threaded_tree = Tee((
            QueueSink::with_config(
                Collect::new(),
                QueueConfig {
                    capacity: 8,
                    policy: QueuePolicy::Block,
                },
            ),
            QueueSink::spawn(Collect::new()),
            QueueSink::spawn(Collect::new()),
        ));
        for t in 0..FRAMES {
            fill(&mut frame, t);
            threaded_engine
                .ingest_frame_sink(&frame, &mut threaded_tree)
                .unwrap();
        }
        let Tee((qa, qb, qc)) = threaded_tree;
        for (tag, queue) in [("a", qa), ("b", qb), ("c", qc)] {
            let stats = queue.stats();
            let (collect, res) = queue.join();
            res.unwrap();
            assert_eq!(stats.dropped, 0, "block policy never drops");
            assert_eq!(stats.pushed as usize, expect.len());
            assert_eq!(
                collect.events(),
                expect,
                "branch {tag}, shards={shards}: threaded events diverged"
            );
        }
        assert_eq!(sync_engine.stats(), threaded_engine.stats());
    }
}

/// Fails on the `fail_at`-th event it sees, consumer-side.
struct FailingSink {
    seen: usize,
    fail_at: usize,
}

impl FleetSink for FailingSink {
    fn on_event(&mut self, _event: &FleetEvent) -> Result<()> {
        if self.seen == self.fail_at {
            return Err(CoreError::Persist("detector exploded".into()));
        }
        self.seen += 1;
        Ok(())
    }
}

#[test]
fn consumer_error_surfaces_on_next_push_with_stats_unchanged() {
    let mut eng = engine(2);
    let mut frame = eng.frame();
    // A tiny ring forces backpressure, so the consumer is guaranteed to
    // run (and latch the error) while frames are still being pushed —
    // without it the producer could finish all frames before the
    // consumer is ever scheduled.
    let mut queue = QueueSink::with_config(
        FailingSink {
            seen: 0,
            fail_at: 12,
        },
        QueueConfig {
            capacity: 4,
            policy: QueuePolicy::Block,
        },
    );
    let mut failed_at: Option<(usize, FleetStats)> = None;
    for t in 0..FRAMES {
        fill(&mut frame, t);
        let before = eng.stats();
        match eng.ingest_frame_sink(&frame, &mut queue) {
            Ok(()) => {}
            Err(err) => {
                // The original consumer error, verbatim.
                assert!(
                    matches!(&err, CoreError::Persist(m) if m == "detector exploded"),
                    "unexpected error: {err}"
                );
                failed_at = Some((t, before));
                break;
            }
        }
    }
    let (t, before) = failed_at.expect("the queued sink error never surfaced");
    assert!(
        t > 0,
        "some frames must succeed before the error is latched"
    );
    assert_eq!(
        eng.stats(),
        before,
        "the failing frame must leave FleetStats untouched"
    );

    // Every later push keeps failing (rendered copy of the first error).
    fill(&mut frame, t + 1);
    let err = eng
        .ingest_frame_sink(&frame, &mut queue)
        .expect_err("a failed branch must stay failed");
    assert!(
        err.to_string().contains("detector exploded"),
        "repeat error lost the original cause: {err}"
    );
    assert_eq!(eng.stats(), before);

    // Joining after the error has been surfaced reports a clean join.
    let (_sink, res) = queue.join();
    res.unwrap();
}

/// Holds the consumer inside `on_event` until released, so a test can
/// fill the ring deterministically.
struct Gate {
    entered: Arc<AtomicBool>,
    hold: Arc<AtomicBool>,
    inner: Collect,
}

impl FleetSink for Gate {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        self.entered.store(true, Ordering::Release);
        while self.hold.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        self.inner.on_event(event)
    }
}

fn wait_for(flag: &AtomicBool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !flag.load(Ordering::Acquire) {
        assert!(Instant::now() < deadline, "deadlocked waiting for consumer");
        std::thread::yield_now();
    }
}

#[test]
fn drop_oldest_counter_is_exact_under_forced_overflow() {
    let entered = Arc::new(AtomicBool::new(false));
    let hold = Arc::new(AtomicBool::new(true));
    let mut queue = QueueSink::with_config(
        Gate {
            entered: Arc::clone(&entered),
            hold: Arc::clone(&hold),
            inner: Collect::new(),
        },
        QueueConfig {
            capacity: 4,
            policy: QueuePolicy::DropOldest,
        },
    );
    let event = |i: usize| FleetEvent {
        node: 0,
        window_index: i,
        signature: cwsmooth_core::cs::CsSignature {
            re: vec![i as f64],
            im: vec![-(i as f64)],
        },
    };

    // e0 goes straight through the ring into the (gated) consumer.
    queue.on_event(&event(0)).unwrap();
    wait_for(&entered);
    // e1..e4 fill the ring exactly; no eviction yet.
    for i in 1..=4 {
        queue.on_event(&event(i)).unwrap();
    }
    assert_eq!(queue.stats().dropped, 0);
    assert_eq!(queue.stats().depth, 4);
    // e5, e6, e7 each evict the oldest queued event (e1, e2, e3).
    for i in 5..=7 {
        queue.on_event(&event(i)).unwrap();
    }
    let stats = queue.stats();
    assert_eq!(stats.dropped, 3, "one eviction per overflowing push");
    assert_eq!(stats.pushed, 8, "every push was accepted");
    assert_eq!(stats.depth, 4, "ring stays full");
    assert_eq!(stats.high_watermark, 4);

    hold.store(false, Ordering::Release);
    let (gate, res) = queue.join();
    res.unwrap();
    // Survivors: the in-flight e0 plus the final ring e4..e7 — exactly
    // the drop-oldest semantics (old events go, fresh ones stay).
    let survivors: Vec<usize> = gate.inner.events().iter().map(|e| e.window_index).collect();
    assert_eq!(survivors, vec![0, 4, 5, 6, 7]);
}
