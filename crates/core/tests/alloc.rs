//! Pins the zero-allocation guarantee of the streaming hot path: after
//! warm-up, `OnlineCs::push_into` must never touch the heap — neither on
//! buffering pushes nor on emitting ones.
//!
//! Measured with a counting global allocator filtered to the test thread. This file holds exactly one
//! `#[test]` so no concurrent test can allocate while the counter window is
//! open.

use cwsmooth_core::cs::{CsMethod, CsSignature, CsTrainer};
use cwsmooth_core::online::OnlineCs;
use cwsmooth_data::WindowSpec;
use cwsmooth_linalg::Matrix;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the thread that sets this flag is counted — the libtest
    /// harness thread allocates sporadically and must not trip the pin.
    static COUNT_ME: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counted() -> bool {
    COUNT_ME.try_with(std::cell::Cell::get).unwrap_or(false)
}

struct CountingAlloc;

// SAFETY: a pure pass-through to the System allocator — every method
// forwards its arguments unchanged, so System's contract is ours; the
// counters never touch the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as System.alloc, to which we forward.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: same contract as System.dealloc, to which we forward.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counted() {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as System.realloc, to which we forward.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_push_performs_no_heap_allocation() {
    COUNT_ME.with(|c| c.set(true));
    // Setup (allocates freely): train on data with one constant sensor so
    // the collapsed-bounds path is part of what we measure.
    let s = Matrix::from_fn(6, 200, |r, c| {
        if r == 5 {
            3.5
        } else {
            ((c as f64 / (3.0 + r as f64)).sin() * (r + 1) as f64) + 0.2 * r as f64
        }
    });
    let model = CsTrainer::default().train(&s).unwrap();
    let spec = WindowSpec::new(12, 4).unwrap();
    let mut online = OnlineCs::new(CsMethod::new(model, 4).unwrap(), spec);
    let mut sig = CsSignature::default();
    let mut column = vec![0.0; 6];

    let fill = |column: &mut [f64], t: usize| {
        for (r, v) in column.iter_mut().enumerate() {
            *v = if r == 5 {
                3.5 + t as f64 // drifts past the collapsed bounds
            } else {
                ((t as f64 / (3.0 + r as f64)).cos() * (r + 1) as f64) - 0.1 * r as f64
            };
        }
    };

    // Warm-up: fill the ring and let the first emission size `sig`.
    let mut t = 0usize;
    let mut warm_emissions = 0usize;
    while warm_emissions < 2 {
        fill(&mut column, t);
        if online.push_into(&column, &mut sig).unwrap() {
            warm_emissions += 1;
        }
        t += 1;
    }

    // Measurement window: hundreds of pushes including dozens of
    // emissions and one gap recovery — all heap-silent.
    let a0 = ALLOCS.load(Ordering::SeqCst);
    let d0 = DEALLOCS.load(Ordering::SeqCst);
    let mut emissions = 0usize;
    for _ in 0..400 {
        fill(&mut column, t);
        if online.push_into(&column, &mut sig).unwrap() {
            emissions += 1;
        }
        t += 1;
    }
    online.push_gap();
    for _ in 0..100 {
        fill(&mut column, t);
        if online.push_into(&column, &mut sig).unwrap() {
            emissions += 1;
        }
        t += 1;
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - a0;
    let deallocs = DEALLOCS.load(Ordering::SeqCst) - d0;

    assert!(emissions > 50, "expected many emissions, got {emissions}");
    assert_eq!(allocs, 0, "steady-state pushes allocated {allocs} times");
    assert_eq!(deallocs, 0, "steady-state pushes freed {deallocs} times");
    // The emissions were real: finite, mid-scale block for the collapsed
    // sensor included.
    assert!(sig.re.iter().chain(&sig.im).all(|v| v.is_finite()));
}
