//! Pins the zero-allocation guarantee of the sink-based fleet ingest
//! path: once the per-shard event pools have warmed up, a full
//! `FleetEngine::ingest_frame_sink` frame — including signature
//! emissions delivered to the sink — must never touch the heap.
//!
//! Measured with a counting global allocator on a single-shard engine
//! (the rayon fan-out of the multi-shard path allocates in the worker
//! pool by design; the per-shard ingest it runs is exactly the code
//! measured here). This file holds exactly one `#[test]` so no
//! concurrent test can allocate while the counter window is open.

use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::error::Result;
use cwsmooth_core::fleet::{FleetEngine, FleetEvent, FleetSink};
use cwsmooth_data::WindowSpec;
use cwsmooth_linalg::Matrix;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the thread that sets this flag is counted — the libtest
    /// harness thread allocates sporadically and must not trip the pin.
    static COUNT_ME: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counted() -> bool {
    COUNT_ME.try_with(std::cell::Cell::get).unwrap_or(false)
}

struct CountingAlloc;

// SAFETY: a pure pass-through to the System allocator — every method
// forwards its arguments unchanged, so System's contract is ours; the
// counters never touch the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as System.alloc, to which we forward.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: same contract as System.dealloc, to which we forward.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counted() {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as System.realloc, to which we forward.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Reads every event without taking ownership of anything.
#[derive(Default)]
struct Checksum {
    events: usize,
    sum: f64,
}

impl FleetSink for Checksum {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        self.events += 1;
        self.sum += event.signature.re.iter().sum::<f64>()
            + event.signature.im.iter().sum::<f64>()
            + event.window_index as f64;
        Ok(())
    }
}

#[test]
fn steady_state_sink_ingest_performs_no_heap_allocation() {
    COUNT_ME.with(|c| c.set(true));
    // Setup (allocates freely): 16 nodes, per-node trained models.
    let nodes = 16usize;
    let sensors = 5usize;
    let methods: Vec<CsMethod> = (0..nodes)
        .map(|node| {
            let s = Matrix::from_fn(sensors, 120, |r, c| {
                ((c as f64 / (2.0 + r as f64) + node as f64 * 0.41).sin() * (r + 1) as f64)
                    + 0.1 * node as f64
            });
            CsMethod::new(CsTrainer::default().train(&s).unwrap(), 3).unwrap()
        })
        .collect();
    let spec = WindowSpec::new(10, 5).unwrap();
    let mut engine = FleetEngine::with_shards(methods, spec, 1).unwrap();
    let mut frame = engine.frame();
    let mut sink = Checksum::default();

    let fill = |frame: &mut cwsmooth_core::fleet::FleetFrame, t: usize| {
        frame.clear();
        for node in 0..nodes {
            let slot = frame.slot_mut(node).unwrap();
            for (r, v) in slot.iter_mut().enumerate() {
                *v = ((t as f64 / (2.0 + r as f64) + node as f64 * 0.41).cos() * (r + 1) as f64)
                    - 0.05 * node as f64;
            }
        }
    };

    // Warm-up: fill rings, size signature pools, see a few emission
    // frames (every node emits in the same frame, so the pools reach
    // their maximum occupancy here).
    let mut t = 0usize;
    while sink.events < 3 * nodes {
        fill(&mut frame, t);
        engine.ingest_frame_sink(&frame, &mut sink).unwrap();
        t += 1;
    }

    // Measurement window: hundreds of frames with dozens of emission
    // bursts and interleaved gap frames — all heap-silent.
    let a0 = ALLOCS.load(Ordering::SeqCst);
    let d0 = DEALLOCS.load(Ordering::SeqCst);
    let events_before = sink.events;
    for _ in 0..300 {
        fill(&mut frame, t);
        if t.is_multiple_of(17) {
            // One node misses the frame: the gap path must stay silent too.
            frame.clear();
            for node in 1..nodes {
                let slot = frame.slot_mut(node).unwrap();
                for (r, v) in slot.iter_mut().enumerate() {
                    *v = (t + r) as f64 * 0.01;
                }
            }
        }
        engine.ingest_frame_sink(&frame, &mut sink).unwrap();
        t += 1;
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - a0;
    let deallocs = DEALLOCS.load(Ordering::SeqCst) - d0;

    let emitted = sink.events - events_before;
    assert!(emitted > 100, "expected many emissions, got {emitted}");
    assert_eq!(
        allocs, 0,
        "steady-state sink ingest allocated {allocs} times"
    );
    assert_eq!(
        deallocs, 0,
        "steady-state sink ingest freed {deallocs} times"
    );
    assert!(sink.sum.is_finite());
    assert_eq!(engine.stats().events as usize, sink.events);
}
