//! Pins the unified-ingest contract: [`FleetEngine::ingest_frame_sink`]
//! is the only engine-side ingest implementation, and the two wrapper
//! entry points — `ingest_frame_into` and `ingest_frame` — plus any
//! sink-tree built from the `pipeline` operators all observe
//! **bit-identical** [`FleetEvent`]s (exact `==`, no tolerance), which
//! in turn match the pre-refactor semantics of independent per-node
//! [`OnlineCs`] streams, including across telemetry gaps.

use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::fleet::{FleetEngine, FleetEvent};
use cwsmooth_core::online::OnlineCs;
use cwsmooth_core::pipeline::{Collect, Filter, NodeRoute, Sample, Tee};
use cwsmooth_data::WindowSpec;
use cwsmooth_linalg::Matrix;

const NODES: usize = 11;
const SENSORS: usize = 5;
const FRAMES: usize = 120;

fn methods() -> Vec<CsMethod> {
    (0..NODES)
        .map(|node| {
            let s = Matrix::from_fn(SENSORS, 150, |r, c| {
                ((c as f64 / (2.0 + r as f64) + node as f64 * 0.31).sin() * (r + 1) as f64)
                    + 0.07 * node as f64
            });
            CsMethod::new(CsTrainer::default().train(&s).unwrap(), 3).unwrap()
        })
        .collect()
}

fn column(node: usize, t: usize) -> Vec<f64> {
    (0..SENSORS)
        .map(|r| (t as f64 / (2.0 + r as f64) + node as f64 * 0.31).cos() * (r + 1) as f64)
        .collect()
}

/// Node `i` drops frame `t` on a deterministic pattern.
fn gap(node: usize, t: usize) -> bool {
    (node + t).is_multiple_of(13)
}

fn engine(shards: usize) -> FleetEngine {
    let spec = WindowSpec::new(8, 4).unwrap();
    FleetEngine::with_shards(methods(), spec, shards).unwrap()
}

fn fill(frame: &mut cwsmooth_core::fleet::FleetFrame, t: usize) {
    frame.clear();
    for node in 0..NODES {
        if !gap(node, t) {
            frame
                .slot_mut(node)
                .unwrap()
                .copy_from_slice(&column(node, t));
        }
    }
}

/// The pre-refactor semantics: each node as an independent OnlineCs.
fn reference_events() -> Vec<FleetEvent> {
    let spec = WindowSpec::new(8, 4).unwrap();
    let mut streams: Vec<OnlineCs> = methods()
        .into_iter()
        .map(|m| OnlineCs::new(m, spec))
        .collect();
    let mut out = Vec::new();
    for t in 0..FRAMES {
        for (node, stream) in streams.iter_mut().enumerate() {
            if gap(node, t) {
                stream.push_gap();
            } else if let Some(signature) = stream.push(&column(node, t)).unwrap() {
                out.push(FleetEvent {
                    node,
                    window_index: stream.emitted() - 1,
                    signature,
                });
            }
        }
    }
    out
}

#[test]
fn all_three_entry_points_emit_bit_identical_events() {
    let expect = reference_events();
    assert!(expect.len() > 100, "premise: a rich event stream");

    for shards in [1usize, 4] {
        // ingest_frame: fresh Vec per frame.
        let mut via_frame = engine(shards);
        let mut frame = via_frame.frame();
        let mut got_frame: Vec<FleetEvent> = Vec::new();
        for t in 0..FRAMES {
            fill(&mut frame, t);
            got_frame.extend(via_frame.ingest_frame(&frame).unwrap());
        }
        assert_eq!(got_frame, expect, "ingest_frame, shards={shards}");

        // ingest_frame_into: reused Vec.
        let mut via_into = engine(shards);
        let mut events: Vec<FleetEvent> = Vec::new();
        let mut got_into: Vec<FleetEvent> = Vec::new();
        for t in 0..FRAMES {
            fill(&mut frame, t);
            via_into.ingest_frame_into(&frame, &mut events).unwrap();
            got_into.extend(events.iter().cloned());
        }
        assert_eq!(got_into, expect, "ingest_frame_into, shards={shards}");

        // ingest_frame_sink with a pipeline collector.
        let mut via_sink = engine(shards);
        let mut collect = Collect::new();
        for t in 0..FRAMES {
            fill(&mut frame, t);
            via_sink.ingest_frame_sink(&frame, &mut collect).unwrap();
        }
        assert_eq!(collect.events(), &expect[..], "sink path, shards={shards}");

        // All paths also agree on the counters.
        assert_eq!(via_frame.stats(), via_into.stats());
        assert_eq!(via_frame.stats(), via_sink.stats());
        assert_eq!(via_sink.stats().events as usize, expect.len());
    }
}

/// Operator trees forward events untouched: a Tee of (everything,
/// node-routed, sampled, filtered) collectors sees exactly the expected
/// per-branch slices of the bit-identical stream.
#[test]
fn pipeline_operators_preserve_events_bitwise() {
    let expect = reference_events();
    let mut engine = engine(3);
    let mut frame = engine.frame();
    let mut tree = Tee((
        Collect::new(),
        NodeRoute::new([2usize, 5], Collect::new()),
        Sample::every(2, Collect::new()),
        Filter::new(|e: &FleetEvent| e.signature.re[0] > 0.4, Collect::new()),
    ));
    for t in 0..FRAMES {
        fill(&mut frame, t);
        engine.ingest_frame_sink(&frame, &mut tree).unwrap();
    }
    let (all, routed, sampled, filtered) = (&tree.0 .0, &tree.0 .1, &tree.0 .2, &tree.0 .3);
    assert_eq!(all.events(), &expect[..]);
    let expect_routed: Vec<FleetEvent> = expect
        .iter()
        .filter(|e| e.node == 2 || e.node == 5)
        .cloned()
        .collect();
    assert_eq!(routed.sink().events(), &expect_routed[..]);
    let expect_sampled: Vec<FleetEvent> = expect
        .iter()
        .filter(|e| e.window_index % 2 == 0)
        .cloned()
        .collect();
    assert_eq!(sampled.sink().events(), &expect_sampled[..]);
    let expect_filtered: Vec<FleetEvent> = expect
        .iter()
        .filter(|e| e.signature.re[0] > 0.4)
        .cloned()
        .collect();
    assert!(!expect_filtered.is_empty() && expect_filtered.len() < expect.len());
    assert_eq!(filtered.sink().events(), &expect_filtered[..]);
}
