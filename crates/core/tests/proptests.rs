//! Property-based tests for the signature layer.

use cwsmooth_core::baselines::{BodikMethod, LanMethod, TuncerMethod};
use cwsmooth_core::blocks::block_bounds;
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::method::SignatureMethod;
use cwsmooth_core::model::CsModel;
use cwsmooth_linalg::Matrix;
use proptest::prelude::*;

/// A training matrix: n rows, t >= 2 columns, finite values.
fn training_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..10, 2usize..40).prop_flat_map(|(n, t)| {
        prop::collection::vec(-1e4f64..1e4f64, n * t)
            .prop_map(move |data| Matrix::from_vec(n, t, data).unwrap())
    })
}

proptest! {
    #[test]
    fn blocks_cover_and_respect_bounds(n in 1usize..200, l in 1usize..200) {
        let blocks = block_bounds(n, l);
        prop_assert_eq!(blocks.len(), l);
        let mut covered = vec![false; n];
        for b in &blocks {
            prop_assert!(b.start < b.end && b.end <= n);
            for c in &mut covered[b.start..b.end] {
                *c = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn block_sizes_differ_by_at_most_one(n in 1usize..200, l in 1usize..200) {
        let blocks = block_bounds(n, l);
        let min = blocks.iter().map(|b| b.len()).min().unwrap();
        let max = blocks.iter().map(|b| b.len()).max().unwrap();
        prop_assert!(max - min <= 1, "n={n} l={l} min={min} max={max}");
    }

    #[test]
    fn training_yields_bijective_permutation(s in training_matrix()) {
        let model = CsTrainer::default().train(&s).unwrap();
        prop_assert!(model.validate().is_ok());
        prop_assert_eq!(model.n_sensors(), s.rows());
    }

    #[test]
    fn cs_signature_parts_bounded(s in training_matrix(), l in 1usize..12) {
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, l).unwrap();
        let sig = cs.signature(&s, None).unwrap();
        prop_assert_eq!(sig.blocks(), l);
        for &v in &sig.re {
            // block means of normalized values stay in [0,1]
            prop_assert!((0.0..=1.0).contains(&v), "re={v}");
        }
        for &d in &sig.im {
            // normalized derivatives are bounded by 1 in magnitude, so are
            // their (time-and-block) means
            prop_assert!(d.abs() <= 1.0 + 1e-12, "im={d}");
        }
    }

    #[test]
    fn signature_length_laws(s in training_matrix(), l in 1usize..12, wr in 1usize..10) {
        let n = s.rows();
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, l).unwrap();
        prop_assert_eq!(cs.compute(&s, None).unwrap().len(), cs.signature_len(n));
        prop_assert_eq!(TuncerMethod.compute(&s, None).unwrap().len(), 11 * n);
        prop_assert_eq!(BodikMethod.compute(&s, None).unwrap().len(), 9 * n);
        let lan = LanMethod::new(wr).unwrap();
        prop_assert_eq!(lan.compute(&s, None).unwrap().len(), wr * n);
    }

    #[test]
    fn cs_is_invariant_to_window_choice_of_constant_data(
        n in 1usize..6, wl in 2usize..20, value in -100.0f64..100.0
    ) {
        // A constant matrix trains fine and produces the "no information"
        // signature: re = 0.5, im = 0 in every block.
        let s = Matrix::filled(n, wl, value);
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, n).unwrap();
        let sig = cs.signature(&s, None).unwrap();
        for &v in &sig.re {
            prop_assert!((v - 0.5).abs() < 1e-12);
        }
        for &d in &sig.im {
            prop_assert!(d.abs() < 1e-12);
        }
    }

    #[test]
    fn model_roundtrip_arbitrary(s in training_matrix()) {
        let model = CsTrainer::default().train(&s).unwrap();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let back = CsModel::load(buf.as_slice()).unwrap();
        prop_assert_eq!(back, model);
    }

    #[test]
    fn baseline_signatures_are_finite(s in training_matrix()) {
        for sig in [
            TuncerMethod.compute(&s, None).unwrap(),
            BodikMethod.compute(&s, None).unwrap(),
            LanMethod::default().compute(&s, None).unwrap(),
        ] {
            for v in sig {
                prop_assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn cs_handles_out_of_range_inference_data(s in training_matrix(), l in 1usize..6) {
        // Inference data far outside the training range must clamp, not blow up.
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, l).unwrap();
        let mut wild = s.clone();
        wild.map_inplace(|v| v * 1e3 + 1e5);
        let sig = cs.signature(&wild, None).unwrap();
        for &v in &sig.re {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        for &d in &sig.im {
            prop_assert!(d.is_finite());
        }
    }

    #[test]
    fn sorted_window_is_a_row_permutation_of_normalized(s in training_matrix()) {
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model.clone(), 1).unwrap();
        let sorted = cs.sort_window(&s).unwrap();
        let normalized = model.bounds.apply(&s).unwrap();
        // every normalized row appears exactly once in the sorted output
        for (i, &raw) in model.perm.iter().enumerate() {
            prop_assert_eq!(sorted.row(i), normalized.row(raw));
        }
    }
}

/// Properties of the extension modules: rescaling, pruning, streaming.
mod extensions {
    use super::*;
    use cwsmooth_core::cs::CsSignature;
    use cwsmooth_core::online::OnlineCs;
    use cwsmooth_core::scale::{prune_middle, resample_signature};
    use cwsmooth_data::WindowSpec;

    fn signature_strategy() -> impl Strategy<Value = CsSignature> {
        (1usize..24).prop_flat_map(|l| {
            (
                prop::collection::vec(0.0f64..1.0, l),
                prop::collection::vec(-1.0f64..1.0, l),
            )
                .prop_map(|(re, im)| CsSignature { re, im })
        })
    }

    proptest! {
        #[test]
        fn resample_length_and_hull(sig in signature_strategy(), new_l in 1usize..32) {
            let out = resample_signature(&sig, new_l).unwrap();
            prop_assert_eq!(out.blocks(), new_l);
            let lo = sig.re.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = sig.re.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for &v in &out.re {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }

        #[test]
        fn downscale_preserves_mean(sig in signature_strategy(), new_l in 1usize..24) {
            // Area averaging conserves total mass when the target divides
            // the source evenly; in general the mean stays within the hull
            // and close to the original mean.
            prop_assume!(new_l <= sig.blocks());
            let out = resample_signature(&sig, new_l).unwrap();
            if sig.blocks() % new_l == 0 {
                let m_in: f64 = sig.re.iter().sum::<f64>() / sig.blocks() as f64;
                let m_out: f64 = out.re.iter().sum::<f64>() / new_l as f64;
                prop_assert!((m_in - m_out).abs() < 1e-9, "{m_in} vs {m_out}");
            }
        }

        #[test]
        fn prune_keeps_outer_blocks_verbatim(sig in signature_strategy(), keep in 1usize..24) {
            let out = prune_middle(&sig, keep).unwrap();
            let k = keep.min(sig.blocks());
            prop_assert_eq!(out.blocks(), k);
            let head = if keep >= sig.blocks() { k } else { keep.div_ceil(2) };
            for i in 0..head.min(k) {
                prop_assert_eq!(out.re[i], sig.re[i]);
            }
            if keep < sig.blocks() {
                let tail = keep - head;
                for i in 0..tail {
                    prop_assert_eq!(
                        out.re[head + i],
                        sig.re[sig.blocks() - tail + i]
                    );
                }
            }
        }

        #[test]
        fn online_emission_count_law(
            s in training_matrix(),
            wl in 1usize..12,
            ws in 1usize..12,
        ) {
            let model = CsTrainer::default().train(&s).unwrap();
            let cs = CsMethod::new(model, 2).unwrap();
            let spec = WindowSpec::new(wl, ws).unwrap();
            let mut online = OnlineCs::new(cs, spec);
            let mut emitted = 0usize;
            for c in 0..s.cols() {
                if online.push(&s.col(c)).unwrap().is_some() {
                    emitted += 1;
                }
            }
            prop_assert_eq!(emitted, spec.count(s.cols()));
        }
    }
}

/// Fleet/online streaming is *bit-identical* to the batch pipeline
/// (`WindowIter` + `CsMethod::signature`), per node, across gaps, for odd
/// window geometries and constant sensors.
mod streaming_equivalence {
    use super::*;
    use cwsmooth_core::cs::CsSignature;
    use cwsmooth_core::fleet::{FleetEngine, FleetEvent};
    use cwsmooth_core::online::OnlineCs;
    use cwsmooth_data::{WindowIter, WindowSpec};

    /// Batch-pipeline signatures of a full matrix.
    fn batch(cs: &CsMethod, s: &Matrix, spec: WindowSpec) -> Vec<CsSignature> {
        WindowIter::new(spec, s.cols())
            .map(|w| {
                let sub = w.extract(s).unwrap();
                let hist = w.history(s);
                cs.signature(&sub, hist.as_deref()).unwrap()
            })
            .collect()
    }

    /// A telemetry matrix with one row forced constant (collapsed trained
    /// bounds) when `n >= 2`.
    fn telemetry_matrix() -> impl Strategy<Value = Matrix> {
        (1usize..7, 4usize..60).prop_flat_map(|(n, t)| {
            prop::collection::vec(-1e3f64..1e3f64, n * t).prop_map(move |data| {
                let mut m = Matrix::from_vec(n, t, data).unwrap();
                if n >= 2 {
                    for c in 0..t {
                        m.set(n - 1, c, 42.0);
                    }
                }
                m
            })
        })
    }

    proptest! {
        #[test]
        fn online_is_bit_identical_to_batch(
            s in telemetry_matrix(),
            wl in 1usize..13,
            ws in 1usize..13,
            l in 1usize..9,
        ) {
            let model = CsTrainer::default().train(&s).unwrap();
            let cs = CsMethod::new(model, l).unwrap();
            let spec = WindowSpec::new(wl, ws).unwrap();
            let expect = batch(&cs, &s, spec);
            let mut online = OnlineCs::new(cs, spec);
            let mut got = Vec::new();
            for c in 0..s.cols() {
                if let Some(sig) = online.push(&s.col(c)).unwrap() {
                    got.push(sig);
                }
            }
            // Exact equality — the streaming path re-runs the very same
            // floating-point operations in the same order.
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn online_across_gaps_matches_chunked_batch(
            s in telemetry_matrix(),
            wl in 1usize..9,
            ws in 1usize..9,
            cut_num in 0usize..1000,
        ) {
            // A gap at `cut` splits the stream; emissions must equal the
            // batch pipeline run independently on each contiguous chunk.
            let t = s.cols();
            let cut = 1 + cut_num % (t - 1); // 1..t
            let model = CsTrainer::default().train(&s).unwrap();
            let cs = CsMethod::new(model, 3).unwrap();
            let spec = WindowSpec::new(wl, ws).unwrap();

            let mut expect = batch(&cs, &s.col_window(0, cut).unwrap(), spec);
            expect.extend(batch(&cs, &s.col_window(cut, t).unwrap(), spec));

            let mut online = OnlineCs::new(cs, spec);
            let mut got = Vec::new();
            for c in 0..t {
                if c == cut {
                    online.push_gap();
                }
                if let Some(sig) = online.push(&s.col(c)).unwrap() {
                    got.push(sig);
                }
            }
            prop_assert_eq!(got, expect);
            prop_assert_eq!(online.gaps(), 1);
        }

        #[test]
        fn fleet_is_bit_identical_to_batch_per_node(
            nodes in 1usize..6,
            wl in 1usize..7,
            ws in 1usize..7,
            t in 8usize..40,
            seed in 0u64..1_000,
            shards in 1usize..5,
        ) {
            // Per-node matrices (node n_sensors fixed at 3, one constant
            // row), deterministic per-(node, t) gaps from `seed`.
            let gap = |node: usize, c: usize| -> bool {
                // ~1/8 drop rate, decorrelated across nodes and time
                (seed ^ (node as u64).wrapping_mul(0x9e3779b97f4a7c15)
                      ^ (c as u64).wrapping_mul(0xbf58476d1ce4e5b9)).is_multiple_of(8)
            };
            let mats: Vec<Matrix> = (0..nodes)
                .map(|i| Matrix::from_fn(3, t, |r, c| {
                    if r == 2 { 7.0 } else {
                        ((c as f64 / (2.0 + r as f64) + i as f64).sin())
                            * (1.0 + seed as f64 * 1e-3)
                    }
                }))
                .collect();
            let methods: Vec<CsMethod> = mats.iter()
                .map(|m| CsMethod::new(CsTrainer::default().train(m).unwrap(), 2).unwrap())
                .collect();
            let spec = WindowSpec::new(wl, ws).unwrap();
            let mut engine =
                FleetEngine::with_shards(methods.clone(), spec, shards).unwrap();

            let mut frame = engine.frame();
            let mut events: Vec<FleetEvent> = Vec::new();
            let mut got: Vec<FleetEvent> = Vec::new();
            for c in 0..t {
                frame.clear();
                for (i, m) in mats.iter().enumerate() {
                    if !gap(i, c) {
                        frame.set(i, &m.col(c)).unwrap();
                    }
                }
                engine.ingest_frame_into(&frame, &mut events).unwrap();
                got.append(&mut events);
            }

            // Expectation: per node, the batch pipeline over each
            // contiguous present-run of that node's stream.
            for (i, (m, cs)) in mats.iter().zip(&methods).enumerate() {
                let node_got: Vec<&CsSignature> = got
                    .iter()
                    .filter(|e| e.node == i)
                    .map(|e| &e.signature)
                    .collect();
                // window indexes are consecutive from 0
                for (k, e) in got.iter().filter(|e| e.node == i).enumerate() {
                    prop_assert_eq!(e.window_index, k);
                }
                let mut expect = Vec::new();
                let mut run_start = 0usize;
                for c in 0..=t {
                    if c == t || gap(i, c) {
                        if c > run_start {
                            expect.extend(batch(
                                cs,
                                &m.col_window(run_start, c).unwrap(),
                                spec,
                            ));
                        }
                        run_start = c + 1;
                    }
                }
                prop_assert_eq!(node_got.len(), expect.len());
                for (a, b) in node_got.iter().zip(&expect) {
                    prop_assert_eq!(*a, b);
                }
            }
        }
    }
}
