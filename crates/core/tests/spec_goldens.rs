//! Golden-value specification tests: the CS algorithm evaluated on inputs
//! small enough to compute by hand, pinning every equation of Sec. III.
//!
//! These tests are the executable form of the paper's math. If any of
//! them breaks, the implementation no longer computes the published
//! algorithm — regardless of what the ML metrics say.

use cwsmooth_core::blocks::block_bounds;
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::ordering::correlation_wise;
use cwsmooth_linalg::corr::{global_coefficients, shifted_correlation_matrix};
use cwsmooth_linalg::Matrix;

const EPS: f64 = 1e-12;

/// Eq. 1 on a 3x4 matrix, every coefficient hand-computed.
///
/// S = [ 1 2 3 4 ]   (rising)
///     [ 2 4 6 8 ]   (rising, exactly 2x row 0)
///     [ 4 3 2 1 ]   (falling, exact negation pattern)
#[test]
fn equation_1_shifted_correlations() {
    let s = Matrix::from_rows([
        [1.0, 2.0, 3.0, 4.0],
        [2.0, 4.0, 6.0, 8.0],
        [4.0, 3.0, 2.0, 1.0],
    ])
    .unwrap();
    let c = shifted_correlation_matrix(&s);
    // ρ(0,1) = +1 -> shifted 2; ρ(0,2) = −1 -> shifted 0.
    assert!((c.get(0, 1) - 2.0).abs() < EPS);
    assert!((c.get(0, 2) - 0.0).abs() < EPS);
    assert!((c.get(1, 2) - 0.0).abs() < EPS);
    // Global coefficients: mean of the off-diagonal shifted values.
    // ρ_S0 = (2 + 0) / 2 = 1;  ρ_S1 = (2 + 0) / 2 = 1;  ρ_S2 = (0 + 0)/2 = 0.
    let g = global_coefficients(&c);
    assert!((g[0] - 1.0).abs() < EPS);
    assert!((g[1] - 1.0).abs() < EPS);
    assert!((g[2] - 0.0).abs() < EPS);
}

/// Algorithm 1 on the same matrix, traced step by step:
/// seed = argmax ρ_Si = row 0 (tie with row 1, lowest index wins);
/// next = argmax ρ_{Sk,S0}·ρ_Sk over {1,2} = row 1 (2·1=2 vs 0·0=0);
/// last = row 2.
#[test]
fn algorithm_1_trace() {
    let s = Matrix::from_rows([
        [1.0, 2.0, 3.0, 4.0],
        [2.0, 4.0, 6.0, 8.0],
        [4.0, 3.0, 2.0, 1.0],
    ])
    .unwrap();
    let c = shifted_correlation_matrix(&s);
    let g = global_coefficients(&c);
    assert_eq!(correlation_wise(&c, &g), vec![0, 1, 2]);
}

/// Eq. 2 for n=10, l=3 (1-indexed bounds from the paper):
/// b = (1, 4, 7), e = (4, 7, 10) -> 0-indexed [0,4), [3,7), [6,10).
#[test]
fn equation_2_block_bounds() {
    let blocks = block_bounds(10, 3);
    assert_eq!(
        blocks.iter().map(|b| (b.start, b.end)).collect::<Vec<_>>(),
        vec![(0, 4), (3, 7), (6, 10)]
    );
}

/// Eq. 3 on a 2-sensor, 2-sample window with a fully hand-computed model.
///
/// Training matrix (also the window source):
///   row a: [0, 10]  -> bounds (0, 10)
///   row b: [10, 0]  -> bounds (0, 10)
/// Correlations: ρ(a,b) = −1 (shifted 0), globals both 0 -> Algorithm 1
/// seeds at the lowest index: perm = [0, 1].
/// Window = the whole matrix; normalized rows: a' = [0, 1], b' = [1, 0].
/// One block over both sensors, wl = 2:
///   Re = (0 + 1 + 1 + 0) / (2·2) = 0.5
///   Im: derivatives with no history: a' -> [0, 1], b' -> [0, −1]
///      = (0 + 1 + 0 − 1) / 4 = 0.
#[test]
fn equation_3_hand_computed_signature() {
    let s = Matrix::from_rows([[0.0, 10.0], [10.0, 0.0]]).unwrap();
    let model = CsTrainer::default().train(&s).unwrap();
    assert_eq!(model.perm, vec![0, 1]);
    let cs = CsMethod::new(model, 1).unwrap();
    let sig = cs.signature(&s, None).unwrap();
    assert!((sig.re[0] - 0.5).abs() < EPS);
    assert!(sig.im[0].abs() < EPS);
}

/// Eq. 3 with history: same setup, but the window is the second column
/// only, with the first column as history.
/// Normalized window: a' = [1], b' = [0]; history normalized: a=0, b=1.
/// Derivatives: a: 1−0 = 1; b: 0−1 = −1. Two singleton blocks (l = 2):
///   block 1 = sorted row 0 = raw a: Re = 1, Im = 1
///   block 2 = raw b: Re = 0, Im = −1.
#[test]
fn equation_3_with_history() {
    let s = Matrix::from_rows([[0.0, 10.0], [10.0, 0.0]]).unwrap();
    let model = CsTrainer::default().train(&s).unwrap();
    let cs = CsMethod::new(model, 2).unwrap();
    let window = s.col_window(1, 2).unwrap();
    let history = s.col(0);
    let sig = cs.signature(&window, Some(&history)).unwrap();
    assert!((sig.re[0] - 1.0).abs() < EPS);
    assert!((sig.im[0] - 1.0).abs() < EPS);
    assert!((sig.re[1] - 0.0).abs() < EPS);
    assert!((sig.im[1] + 1.0).abs() < EPS);
}

/// The paper's size laws, as stated in Sec. III-B/C.
#[test]
fn signature_size_laws() {
    use cwsmooth_core::baselines::{BodikMethod, LanMethod, TuncerMethod};
    use cwsmooth_core::method::SignatureMethod;
    for n in [1usize, 31, 47, 52, 128, 832] {
        assert_eq!(TuncerMethod.signature_len(n), 11 * n);
        assert_eq!(BodikMethod.signature_len(n), 9 * n);
        assert_eq!(LanMethod::new(6).unwrap().signature_len(n), 6 * n);
    }
    let s = Matrix::from_fn(16, 8, |r, c| (r * 8 + c) as f64);
    let model = CsTrainer::default().train(&s).unwrap();
    for l in [1usize, 5, 16] {
        let cs = CsMethod::new(model.clone(), l).unwrap();
        assert_eq!(cs.signature_len(16), 2 * l, "complex blocks -> 2l features");
    }
}

/// Sorting-stage spec (Sec. III-C2): normalized + permuted, nothing else.
#[test]
fn sorting_stage_is_pure_normalize_permute() {
    let s = Matrix::from_rows([
        [0.0, 5.0, 10.0],
        [30.0, 20.0, 10.0],
        [7.0, 7.0, 7.0], // constant -> 0.5
    ])
    .unwrap();
    let model = CsTrainer::default().train(&s).unwrap();
    let cs = CsMethod::new(model.clone(), 3).unwrap();
    let sorted = cs.sort_window(&s).unwrap();
    for (i, &raw) in model.perm.iter().enumerate() {
        let expect: Vec<f64> = match raw {
            0 => vec![0.0, 0.5, 1.0],
            1 => vec![1.0, 0.5, 0.0],
            _ => vec![0.5, 0.5, 0.5],
        };
        assert_eq!(sorted.row(i), expect.as_slice(), "sorted row {i}");
    }
}
