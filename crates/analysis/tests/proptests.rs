//! Property-based tests for the analysis crate.

use cwsmooth_analysis::jsd::{js_divergence_2d, upsample_rows_nearest, DimensionHistogram};
use cwsmooth_analysis::GrayImage;
use cwsmooth_linalg::Matrix;
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..6, 1usize..24).prop_flat_map(|(r, c)| {
        prop::collection::vec(0.0f64..1.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #[test]
    fn histogram_is_a_probability_surface(m in small_matrix(), bins in 1usize..32) {
        let h = DimensionHistogram::new(&m, bins, 0.0, 1.0);
        let total: f64 = h.probs().as_slice().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(h.probs().as_slice().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn entropy_is_bounded(m in small_matrix(), bins in 1usize..32) {
        let h = DimensionHistogram::new(&m, bins, 0.0, 1.0);
        let max_bits = ((h.dims() * h.bins()) as f64).log2();
        prop_assert!(h.entropy() >= -1e-12);
        prop_assert!(h.entropy() <= max_bits + 1e-9);
    }

    #[test]
    fn jsd_laws(a in small_matrix(), b in small_matrix(), bins in 2usize..16) {
        // reshape b to match a's dimensions via upsampling
        let b = upsample_rows_nearest(&b, a.rows());
        let ha = DimensionHistogram::new(&a, bins, 0.0, 1.0);
        let hb = DimensionHistogram::new(&b, bins, 0.0, 1.0);
        let ab = js_divergence_2d(&ha, &hb);
        let ba = js_divergence_2d(&hb, &ha);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!((0.0..=1.0).contains(&ab), "bounded");
        prop_assert!(js_divergence_2d(&ha, &ha).abs() < 1e-12, "identity");
    }

    #[test]
    fn upsample_preserves_values_and_shape(m in small_matrix(), target in 1usize..24) {
        let up = upsample_rows_nearest(&m, target);
        prop_assert_eq!(up.shape(), (target, m.cols()));
        // every output row is literally one of the input rows
        for r in 0..target {
            let found = (0..m.rows()).any(|s| up.row(r) == m.row(s));
            prop_assert!(found);
        }
    }

    #[test]
    fn image_resize_laws(m in small_matrix(), h in 1usize..20, w in 1usize..20) {
        let img = GrayImage::from_matrix(&m);
        for resized in [img.resize_nearest(h, w), img.resize_bilinear(h, w)] {
            prop_assert_eq!((resized.height(), resized.width()), (h, w));
            for r in 0..h {
                for c in 0..w {
                    let v = resized.get(r, c);
                    prop_assert!((0.0..=1.0).contains(&v));
                }
            }
        }
        // identity resize
        let same = img.resize_nearest(img.height(), img.width());
        prop_assert_eq!(same, img);
    }

    #[test]
    fn ascii_render_shape(m in small_matrix()) {
        let img = GrayImage::from_matrix(&m);
        let text = img.to_ascii();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), img.height());
        prop_assert!(lines.iter().all(|l| l.chars().count() == img.width()));
    }
}
