//! Jensen-Shannon divergence between dimension-wise value distributions
//! (paper Sec. IV-A2, Eq. 4).
//!
//! Classic KL/JS divergences over joint distributions collapse under the
//! curse of dimensionality. The paper instead exploits that CS-sorted data
//! is image-like: dimensions of the original data map directly onto
//! signature blocks, so one can compare 2-D distributions `P(v, y)` — the
//! marginal probability of value `v` on dimension `y`, divided by `n` so the
//! whole surface is a probability density. The CS signature matrix is
//! nearest-neighbor-interpolated along the dimension axis to match `n`
//! before comparison. With base-2 entropy the divergence lies in `[0, 1]`.

use cwsmooth_core::cs::CsMethod;
use cwsmooth_core::error::{CoreError, Result as CoreResult};
use cwsmooth_data::WindowSpec;
use cwsmooth_linalg::Matrix;

/// A 2-D histogram `P(v, y)`: per-dimension value distributions, jointly
/// normalized so all mass sums to 1.
#[derive(Debug, Clone)]
pub struct DimensionHistogram {
    /// `dims x bins`, rows sum to `1/dims` (so the total is 1).
    probs: Matrix,
}

impl DimensionHistogram {
    /// Builds the histogram of a data matrix (rows = dimensions) with
    /// `bins` value bins over `[lo, hi]`. Values outside the range fall
    /// into the edge bins.
    ///
    /// Empty dimension rows are rejected: they would leave the surface
    /// with total mass below 1, silently breaking the probability-density
    /// contract every JS-divergence comparison relies on.
    ///
    /// # Panics
    /// On an unusable request (zero bins, empty value range, empty
    /// dimension rows). Use [`Self::try_new`] to get an `Err` instead.
    pub fn new(data: &Matrix, bins: usize, lo: f64, hi: f64) -> Self {
        Self::try_new(data, bins, lo, hi)
            .expect("dimension rows must be non-empty for a valid probability surface")
    }

    /// [`Self::new`] returning [`CoreError`] instead of panicking:
    /// `Config` for zero bins or an empty value range, `Shape` for
    /// empty dimension rows.
    pub fn try_new(data: &Matrix, bins: usize, lo: f64, hi: f64) -> CoreResult<Self> {
        if bins < 1 {
            return Err(CoreError::Config("need at least one bin".into()));
        }
        // NaN-safe: anything but a strict Greater (including
        // incomparable NaN bounds) is an empty range.
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Err(CoreError::Config(format!(
                "empty value range: lo {lo} >= hi {hi}"
            )));
        }
        if data.rows() > 0 && data.cols() == 0 {
            return Err(CoreError::Shape(
                "dimension rows must be non-empty for a valid probability surface".into(),
            ));
        }
        let n = data.rows();
        let mut probs = Matrix::zeros(n, bins);
        // Hoisted reciprocal: one multiply per sample instead of a divide.
        let inv_width = bins as f64 / (hi - lo);
        let max_bin = bins as isize - 1;
        for y in 0..n {
            let row = data.row(y);
            let prow = probs.row_mut(y);
            for &v in row {
                let b = (((v - lo) * inv_width).floor() as isize).clamp(0, max_bin) as usize;
                prow[b] += 1.0;
            }
            let mass = row.len() as f64 * n as f64;
            for p in prow.iter_mut() {
                *p /= mass;
            }
        }
        Ok(Self { probs })
    }

    /// Builds the histogram from raw per-cell counts (`dims × bins`,
    /// row-major) instead of raw data — the shape an *online* accumulator
    /// (e.g. [`crate::drift::DriftMonitor`]) maintains. Rows are
    /// normalized to `1/dims` each, exactly like
    /// [`DimensionHistogram::new`]; a row with zero total count is
    /// rejected for the same total-mass reason as an empty dimension row.
    ///
    /// # Panics
    /// On a shape/count violation. Use [`Self::try_from_counts`] to get
    /// an `Err` instead.
    pub fn from_counts(dims: usize, bins: usize, counts: &[u32]) -> Self {
        Self::try_from_counts(dims, bins, counts).expect("counts must form a dims x bins surface")
    }

    /// [`Self::from_counts`] returning [`CoreError`] instead of
    /// panicking: `Config` for zero dims/bins, `Shape` for a counts
    /// slice of the wrong length or an all-zero dimension row.
    pub fn try_from_counts(dims: usize, bins: usize, counts: &[u32]) -> CoreResult<Self> {
        if dims < 1 || bins < 1 {
            return Err(CoreError::Config("need at least one dim and bin".into()));
        }
        if counts.len() != dims * bins {
            return Err(CoreError::Shape(format!(
                "counts must be dims x bins: got {} for {dims} x {bins}",
                counts.len()
            )));
        }
        let mut probs = Matrix::zeros(dims, bins);
        for y in 0..dims {
            let row = &counts[y * bins..(y + 1) * bins];
            let total: u64 = row.iter().map(|&c| c as u64).sum();
            if total == 0 {
                return Err(CoreError::Shape(format!(
                    "dimension row {y} has zero total count — the probability \
                     surface would have mass below 1"
                )));
            }
            let mass = total as f64 * dims as f64;
            let prow = probs.row_mut(y);
            for (p, &c) in prow.iter_mut().zip(row) {
                *p = c as f64 / mass;
            }
        }
        Ok(Self { probs })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.probs.rows()
    }

    /// Number of value bins.
    pub fn bins(&self) -> usize {
        self.probs.cols()
    }

    /// Raw probability surface.
    pub fn probs(&self) -> &Matrix {
        &self.probs
    }

    /// Base-2 Shannon entropy of the whole 2-D distribution.
    pub fn entropy(&self) -> f64 {
        shannon(self.probs.as_slice())
    }
}

fn shannon(p: &[f64]) -> f64 {
    -p.iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| x * x.log2())
        .sum::<f64>()
}

/// Jensen-Shannon divergence between two equally shaped 2-D distributions
/// (Eq. 4): `JS(P‖Q) = H((P+Q)/2) − (H(P)+H(Q))/2`, in `[0, 1]` bits.
///
/// The comparison is only meaningful when both histograms share their
/// `dims() × bins()` shape (same dimensions, same value binning).
/// Mismatched shapes return `f64::NAN` — a defined, propagating "no
/// comparison" value rather than a panic, so a shape bug in a caller's
/// pipeline surfaces as NaN in its output instead of aborting it. Use
/// [`try_js_divergence_2d`] to handle the mismatch as a value.
pub fn js_divergence_2d(p: &DimensionHistogram, q: &DimensionHistogram) -> f64 {
    try_js_divergence_2d(p, q).unwrap_or(f64::NAN)
}

/// [`js_divergence_2d`] returning `None` (instead of NaN) when the two
/// histograms disagree in `dims()` or `bins()`.
pub fn try_js_divergence_2d(p: &DimensionHistogram, q: &DimensionHistogram) -> Option<f64> {
    if (p.dims(), p.bins()) != (q.dims(), q.bins()) {
        return None;
    }
    let mid: Vec<f64> = p
        .probs
        .as_slice()
        .iter()
        .zip(q.probs.as_slice())
        .map(|(&a, &b)| 0.5 * (a + b))
        .collect();
    let js = shannon(&mid) - 0.5 * (p.entropy() + q.entropy());
    Some(js.clamp(0.0, 1.0))
}

/// Nearest-neighbor upsampling of a matrix along the row (dimension) axis
/// to `target_rows` rows.
pub fn upsample_rows_nearest(m: &Matrix, target_rows: usize) -> Matrix {
    assert!(m.rows() >= 1 && target_rows >= 1);
    let mut out = Matrix::zeros(target_rows, m.cols());
    for r in 0..target_rows {
        // center-aligned nearest source row
        let src = ((r as f64 + 0.5) * m.rows() as f64 / target_rows as f64).floor() as usize;
        let src = src.min(m.rows() - 1);
        out.row_mut(r).copy_from_slice(m.row(src));
    }
    out
}

/// Value range covering both matrices (for shared histogram bins).
fn joint_range(a: &Matrix, b: &Matrix) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in a.as_slice().iter().chain(b.as_slice()) {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    if hi <= lo {
        // degenerate (constant) data: widen artificially
        return (lo - 0.5, lo + 0.5);
    }
    (lo, hi)
}

/// The paper's compression-fidelity measurement (used in Fig. 4a): average
/// JS divergence between the CS signatures of `s` and the uncompressed
/// (sorted, normalized) data.
///
/// Two comparisons are averaged:
/// * real components vs. the sorted normalized data, and
/// * imaginary components vs. its first-order derivatives,
///
/// each after nearest-neighbor upsampling of the signature heatmap to `n`
/// dimensions. Returns a value in `[0, 1]`; lower is more faithful.
///
/// # Panics
/// When `s` does not match the model or is too short for `spec`. Use
/// [`try_cs_fidelity`] to get an `Err` instead.
pub fn cs_fidelity(cs: &CsMethod, s: &Matrix, spec: WindowSpec, bins: usize) -> f64 {
    try_cs_fidelity(cs, s, spec, bins).expect("matrix matches model and spec")
}

/// [`cs_fidelity`] propagating the model/window errors (matrix not
/// matching the trained model, or too short for the window spec)
/// instead of panicking.
pub fn try_cs_fidelity(
    cs: &CsMethod,
    s: &Matrix,
    spec: WindowSpec,
    bins: usize,
) -> CoreResult<f64> {
    let sorted = cs.sort_window(s)?;
    let derivs = sorted.backward_diff(None);
    let (re, im) = cs.signature_heatmaps(s, spec)?;
    let n = s.rows();

    let re_up = upsample_rows_nearest(&re, n);
    let (lo, hi) = joint_range(&sorted, &re_up);
    let p_data = DimensionHistogram::try_new(&sorted, bins, lo, hi)?;
    let p_sig = DimensionHistogram::try_new(&re_up, bins, lo, hi)?;
    let js_re = js_divergence_2d(&p_data, &p_sig);

    let im_up = upsample_rows_nearest(&im, n);
    let (lo, hi) = joint_range(&derivs, &im_up);
    let d_data = DimensionHistogram::try_new(&derivs, bins, lo, hi)?;
    let d_sig = DimensionHistogram::try_new(&im_up, bins, lo, hi)?;
    let js_im = js_divergence_2d(&d_data, &d_sig);

    Ok(0.5 * (js_re + js_im))
}

/// Fidelity of the real components only (the paper's `-R` ablation in
/// Fig. 4a): the imaginary comparison is scored as maximally divergent
/// because the derivative information is simply absent.
pub fn cs_fidelity_real_only(cs: &CsMethod, s: &Matrix, spec: WindowSpec, bins: usize) -> f64 {
    let sorted = cs.sort_window(s).expect("matrix matches model");
    let (re, _) = cs
        .signature_heatmaps(s, spec)
        .expect("matrix long enough for windows");
    let n = s.rows();
    let re_up = upsample_rows_nearest(&re, n);
    let (lo, hi) = joint_range(&sorted, &re_up);
    let p_data = DimensionHistogram::new(&sorted, bins, lo, hi);
    let p_sig = DimensionHistogram::new(&re_up, bins, lo, hi);
    let js_re = js_divergence_2d(&p_data, &p_sig);
    0.5 * (js_re + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsmooth_core::cs::CsTrainer;

    fn hist(data: &Matrix, bins: usize) -> DimensionHistogram {
        DimensionHistogram::new(data, bins, 0.0, 1.0)
    }

    #[test]
    fn histogram_mass_sums_to_one() {
        let m = Matrix::from_rows([[0.1, 0.6, 0.9], [0.2, 0.2, 0.7]]).unwrap();
        let h = hist(&m, 4);
        let total: f64 = h.probs().as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_bins() {
        let m = Matrix::from_rows([[-5.0, 5.0]]).unwrap();
        let h = hist(&m, 4);
        assert!(h.probs().get(0, 0) > 0.0);
        assert!(h.probs().get(0, 3) > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dimension_rows_rejected() {
        // Zero-column rows would leave total mass at 0 (< 1).
        DimensionHistogram::new(&Matrix::zeros(3, 0), 4, 0.0, 1.0);
    }

    #[test]
    fn try_new_rejects_bad_requests_without_panicking() {
        use cwsmooth_core::error::CoreError;
        let m = Matrix::from_rows([[0.1, 0.6]]).unwrap();
        assert!(matches!(
            DimensionHistogram::try_new(&m, 0, 0.0, 1.0),
            Err(CoreError::Config(_))
        ));
        assert!(matches!(
            DimensionHistogram::try_new(&m, 4, 1.0, 1.0),
            Err(CoreError::Config(_))
        ));
        assert!(matches!(
            DimensionHistogram::try_new(&Matrix::zeros(3, 0), 4, 0.0, 1.0),
            Err(CoreError::Shape(_))
        ));
        // The happy path agrees with the panicking constructor.
        let a = DimensionHistogram::try_new(&m, 4, 0.0, 1.0).unwrap();
        let b = DimensionHistogram::new(&m, 4, 0.0, 1.0);
        assert_eq!(a.probs().as_slice(), b.probs().as_slice());
    }

    #[test]
    fn try_from_counts_rejects_bad_surfaces_without_panicking() {
        use cwsmooth_core::error::CoreError;
        assert!(matches!(
            DimensionHistogram::try_from_counts(0, 4, &[]),
            Err(CoreError::Config(_))
        ));
        assert!(matches!(
            DimensionHistogram::try_from_counts(2, 4, &[1; 7]),
            Err(CoreError::Shape(_))
        ));
        // A dimension row with zero total count breaks the mass contract.
        assert!(matches!(
            DimensionHistogram::try_from_counts(2, 2, &[1, 2, 0, 0]),
            Err(CoreError::Shape(_))
        ));
        let a = DimensionHistogram::try_from_counts(2, 2, &[1, 3, 2, 2]).unwrap();
        let b = DimensionHistogram::from_counts(2, 2, &[1, 3, 2, 2]);
        assert_eq!(a.probs().as_slice(), b.probs().as_slice());
    }

    #[test]
    fn bin_assignment_with_uneven_width_and_full_mass() {
        // Width 0.3 / 3 bins over [0.1, 1.0): exercises the hoisted
        // reciprocal on a non-power-of-two width, pinning bin placement
        // and the mass-sums-to-one invariant.
        let m = Matrix::from_rows([[0.1, 0.39, 0.41, 0.9], [0.69, 0.71, 0.1, 0.99]]).unwrap();
        let h = DimensionHistogram::new(&m, 3, 0.1, 1.0);
        // row 0 values land in bins [0, 0, 1, 2] -> counts [2, 1, 1]
        assert!((h.probs().get(0, 0) - 2.0 / 8.0).abs() < 1e-12);
        assert!((h.probs().get(0, 1) - 1.0 / 8.0).abs() < 1e-12);
        assert!((h.probs().get(0, 2) - 1.0 / 8.0).abs() < 1e-12);
        let total: f64 = h.probs().as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jsd_identity_is_zero() {
        let m = Matrix::from_rows([[0.1, 0.5, 0.9], [0.3, 0.3, 0.8]]).unwrap();
        let h = hist(&m, 8);
        assert!(js_divergence_2d(&h, &h).abs() < 1e-12);
    }

    #[test]
    fn jsd_is_symmetric_and_bounded() {
        let a = hist(&Matrix::from_rows([[0.1, 0.2, 0.3]]).unwrap(), 8);
        let b = hist(&Matrix::from_rows([[0.7, 0.8, 0.9]]).unwrap(), 8);
        let ab = js_divergence_2d(&a, &b);
        let ba = js_divergence_2d(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
        // disjoint supports -> maximal divergence (1 bit)
        assert!((ab - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jsd_shape_mismatch_is_nan_not_panic() {
        // Mismatched dims().
        let a = hist(&Matrix::zeros(2, 3), 4);
        let b = hist(&Matrix::zeros(3, 3), 4);
        assert!(js_divergence_2d(&a, &b).is_nan());
        assert!(try_js_divergence_2d(&a, &b).is_none());
        // Mismatched bins().
        let c = hist(&Matrix::zeros(2, 3), 8);
        assert!(js_divergence_2d(&a, &c).is_nan());
        assert!(try_js_divergence_2d(&a, &c).is_none());
        // Matching shapes still produce a defined value through both
        // entry points.
        let d = hist(&Matrix::from_rows([[0.1, 0.9], [0.4, 0.6]]).unwrap(), 4);
        let e = hist(&Matrix::from_rows([[0.2, 0.8], [0.3, 0.7]]).unwrap(), 4);
        let js = js_divergence_2d(&d, &e);
        assert!(js.is_finite());
        assert_eq!(try_js_divergence_2d(&d, &e), Some(js));
    }

    #[test]
    fn upsample_replicates_rows() {
        let m = Matrix::from_rows([[1.0, 2.0], [3.0, 4.0]]).unwrap();
        let up = upsample_rows_nearest(&m, 4);
        assert_eq!(up.shape(), (4, 2));
        assert_eq!(up.row(0), &[1.0, 2.0]);
        assert_eq!(up.row(1), &[1.0, 2.0]);
        assert_eq!(up.row(2), &[3.0, 4.0]);
        assert_eq!(up.row(3), &[3.0, 4.0]);
        // upsampling to the same count is the identity
        assert_eq!(upsample_rows_nearest(&m, 2), m);
    }

    /// Correlated waves + noise: the structure CS is designed for.
    fn structured(n: usize, t: usize) -> Matrix {
        Matrix::from_fn(n, t, |r, c| {
            let latent = (c as f64 / 11.0).sin() * 0.5 + 0.5;
            match r % 4 {
                0 => latent,
                1 => 0.8 * latent + 0.1,
                2 => 1.0 - latent,
                _ => ((r * 31 + c * 17) % 97) as f64 / 97.0,
            }
        })
    }

    #[test]
    fn fidelity_improves_with_block_count() {
        let s = structured(24, 400);
        let model = CsTrainer::default().train(&s).unwrap();
        let spec = WindowSpec::new(20, 10).unwrap();
        let mut last = f64::INFINITY;
        for l in [2usize, 6, 12, 24] {
            let cs = CsMethod::new(model.clone(), l).unwrap();
            let js = cs_fidelity(&cs, &s, spec, 32);
            assert!((0.0..=1.0).contains(&js));
            assert!(
                js <= last + 0.03,
                "fidelity regressed at l={l}: {js} after {last}"
            );
            last = js;
        }
    }

    #[test]
    fn try_cs_fidelity_propagates_model_errors() {
        let s = structured(16, 300);
        let model = CsTrainer::default().train(&s).unwrap();
        let spec = WindowSpec::new(20, 10).unwrap();
        let cs = CsMethod::new(model, 8).unwrap();
        // Wrong row count for the trained model: Err, not a panic.
        let wrong = Matrix::zeros(3, 300);
        assert!(try_cs_fidelity(&cs, &wrong, spec, 32).is_err());
        // Matching input agrees with the panicking wrapper.
        let js = try_cs_fidelity(&cs, &s, spec, 32).unwrap();
        assert_eq!(js, cs_fidelity(&cs, &s, spec, 32));
    }

    #[test]
    fn real_only_fidelity_is_worse() {
        let s = structured(16, 300);
        let model = CsTrainer::default().train(&s).unwrap();
        let spec = WindowSpec::new(20, 10).unwrap();
        let cs = CsMethod::new(model, 8).unwrap();
        let full = cs_fidelity(&cs, &s, spec, 32);
        let real = cs_fidelity_real_only(&cs, &s, spec, 32);
        assert!(real > full, "real-only {real} vs full {full}");
    }
}
