//! Similarity metrics and visualization tooling for CS signatures.
//!
//! Three concerns live here:
//!
//! * [`jsd`] — the paper's compression-fidelity metric (Sec. IV-A2): a
//!   Jensen-Shannon divergence over 2-D probability distributions where the
//!   vertical axis is the (sorted) data dimension and the horizontal axis
//!   the value. CS signatures are nearest-neighbor-upsampled along the
//!   dimension axis before comparison, exactly as in the paper.
//! * [`drift`] — [`drift::DriftMonitor`]: the same 2-D JSD run *online*
//!   as a fleet-event sink, comparing each node's live signature
//!   distribution against its own healthy reference in tumbling windows.
//! * [`image`] — grayscale heatmap rendering of sensor matrices and
//!   signature matrices (Figs. 2, 6, 7): scaling via nearest-neighbor or
//!   bilinear interpolation, PGM output for files, ASCII output for
//!   terminals.

#![warn(missing_docs)]

pub mod drift;
pub mod image;
pub mod jsd;

pub use drift::{DriftConfig, DriftMonitor};
pub use image::GrayImage;
pub use jsd::{cs_fidelity, js_divergence_2d, try_js_divergence_2d, DimensionHistogram};
