//! Online distribution-drift monitoring over streaming signatures.
//!
//! The paper's fidelity metric (Sec. IV-A2) compares *distributions* of
//! signature values with a 2-D Jensen-Shannon divergence; the same
//! comparison run continuously makes a change detector: if the
//! distribution of a node's signature blocks walks away from the
//! distribution observed when the node was known-healthy, something
//! changed — a fault, a workload shift, a sensor going bad — even when
//! no classifier has ever seen that failure mode.
//!
//! [`DriftMonitor`] is a [`FleetSink`]: it maintains one online
//! [`DimensionHistogram`]-shaped accumulator per node (dimension axis =
//! signature feature, value axis = binned feature value), in *tumbling
//! windows* of [`DriftConfig::window_events`] events. A node's first
//! completed window becomes its healthy **reference**; every later
//! window is compared against it with the same base-2 JSD as
//! [`crate::jsd::js_divergence_2d`] (computed in place, no histograms
//! materialized), and a divergence above [`DriftConfig::threshold`]
//! raises the node's drift alarm.
//!
//! The per-event path touches no heap once a node's buffers exist
//! (they are created on its first event and first completed window —
//! warm-up, by the same rule as every other sink in the pipeline); the
//! workspace counting-allocator test pins this.

use crate::jsd::DimensionHistogram;
use cwsmooth_core::error::{CoreError, Result as CoreResult};
use cwsmooth_core::fleet::{FleetEvent, FleetSink};
use cwsmooth_obs::{Observe, Snapshot};

/// Configuration for a [`DriftMonitor`].
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Value bins per feature dimension.
    pub bins: usize,
    /// Events per tumbling window (per node): the histogram sample size.
    /// Larger windows lower the small-sample JSD noise floor
    /// (`≈ bins / (2.77 · window_events)` bits) at the cost of latency.
    pub window_events: usize,
    /// Tumbling windows accumulated into the healthy reference before
    /// comparisons start (>= 1). A longer calibration spans more of the
    /// workload's natural variation, so periodic behaviour is not
    /// mistaken for drift.
    pub reference_windows: usize,
    /// JSD (bits, in `[0, 1]`) above which a node is considered drifted.
    pub threshold: f64,
    /// Lower edge of the value range (values below clamp to the first
    /// bin). Signature re parts live in `[0, 1]`, im parts in `[-1, 1]`.
    pub lo: f64,
    /// Upper edge of the value range.
    pub hi: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            bins: 8,
            window_events: 32,
            reference_windows: 1,
            threshold: 0.3,
            lo: -1.0,
            hi: 1.0,
        }
    }
}

/// Per-node accumulator state.
#[derive(Debug, Clone, Default)]
struct NodeDrift {
    /// Current tumbling window: `dims × bins` counts, row-major.
    counts: Vec<u32>,
    /// Events in the current window.
    filled: usize,
    /// The calibration counts, accumulated over the first
    /// `reference_windows` tumbling windows (empty until allocated at
    /// the node's first completed window).
    reference: Vec<u32>,
    /// Tumbling windows folded into the reference so far.
    ref_windows: usize,
    /// Cached base-2 entropy of the normalized reference.
    ref_entropy: f64,
    /// JSD of the latest completed window vs the reference.
    last_jsd: f64,
    /// Largest JSD seen over this node's comparisons.
    peak_jsd: f64,
    /// Completed windows (including the calibration window).
    windows: u64,
    alarmed: bool,
}

/// A [`FleetSink`] watching every node's signature distribution for
/// drift away from its own healthy reference (see module docs).
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    cfg: DriftConfig,
    inv_width: f64,
    /// Feature dimensions (`2·l`); learned from the first event.
    dims: usize,
    nodes: Vec<NodeDrift>,
    events: u64,
    comparisons: u64,
    alarms: u64,
    max_jsd: f64,
}

impl DriftMonitor {
    /// Creates a monitor.
    ///
    /// # Panics
    /// On an inconsistent config: zero bins, zero `window_events`, an
    /// empty value range or a non-finite/out-of-`[0,1]` threshold. Use
    /// [`Self::try_new`] to get an `Err` instead.
    pub fn new(cfg: DriftConfig) -> Self {
        // lint:allow(no-panic-paths): documented panicking convenience
        // wrapper; the fallible path is try_new.
        Self::try_new(cfg).expect("inconsistent DriftConfig")
    }

    /// Creates a monitor, rejecting an inconsistent config with
    /// [`CoreError::Config`] instead of panicking: zero bins, zero
    /// `window_events`, zero `reference_windows`, an empty value range
    /// or a non-finite / out-of-`[0,1]` threshold.
    pub fn try_new(cfg: DriftConfig) -> CoreResult<Self> {
        if cfg.bins < 1 {
            return Err(CoreError::Config("need at least one bin".into()));
        }
        if cfg.window_events < 1 {
            return Err(CoreError::Config(
                "need at least one event per window".into(),
            ));
        }
        if cfg.reference_windows < 1 {
            return Err(CoreError::Config(
                "need at least one reference window".into(),
            ));
        }
        // NaN-safe: anything but a strict Greater (including
        // incomparable NaN bounds) is an empty range.
        if cfg.hi.partial_cmp(&cfg.lo) != Some(std::cmp::Ordering::Greater) {
            return Err(CoreError::Config(format!(
                "empty value range: lo {} >= hi {}",
                cfg.lo, cfg.hi
            )));
        }
        if !(0.0..=1.0).contains(&cfg.threshold) {
            return Err(CoreError::Config(format!(
                "threshold must be a JSD in [0, 1], got {}",
                cfg.threshold
            )));
        }
        Ok(Self {
            cfg,
            inv_width: cfg.bins as f64 / (cfg.hi - cfg.lo),
            dims: 0,
            nodes: Vec::new(),
            events: 0,
            comparisons: 0,
            alarms: 0,
            max_jsd: 0.0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> DriftConfig {
        self.cfg
    }

    /// Events accumulated so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Completed window-vs-reference comparisons so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Alarm *transitions* so far (a node entering the drifted state).
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Largest JSD observed across all comparisons.
    pub fn max_jsd(&self) -> f64 {
        self.max_jsd
    }

    /// `true` once `node`'s reference (all
    /// [`DriftConfig::reference_windows`] calibration windows) has
    /// completed.
    pub fn calibrated(&self, node: usize) -> bool {
        self.nodes
            .get(node)
            .is_some_and(|n| n.ref_windows == self.cfg.reference_windows)
    }

    /// JSD of `node`'s latest completed window vs its reference, or
    /// `None` before the first comparison.
    pub fn last_jsd(&self, node: usize) -> Option<f64> {
        self.nodes
            .get(node)
            .filter(|n| n.windows > self.cfg.reference_windows as u64)
            .map(|n| n.last_jsd)
    }

    /// Largest JSD over `node`'s comparisons so far, or `None` before
    /// the first one — the per-node drift severity, robust to a fault
    /// that ends before the last tumbling window.
    pub fn peak_jsd(&self, node: usize) -> Option<f64> {
        self.nodes
            .get(node)
            .filter(|n| n.windows > self.cfg.reference_windows as u64)
            .map(|n| n.peak_jsd)
    }

    /// `true` while `node`'s latest comparison exceeded the threshold.
    pub fn alarmed(&self, node: usize) -> bool {
        self.nodes.get(node).is_some_and(|n| n.alarmed)
    }

    /// Nodes currently in the drifted state, ascending.
    pub fn alarmed_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alarmed)
            .map(|(i, _)| i)
    }

    /// `node`'s reference distribution as a [`DimensionHistogram`]
    /// (materialized on call), or `None` before calibration.
    pub fn reference_histogram(&self, node: usize) -> Option<DimensionHistogram> {
        let n = self.nodes.get(node)?;
        if n.ref_windows != self.cfg.reference_windows {
            return None;
        }
        Some(DimensionHistogram::from_counts(
            self.dims,
            self.cfg.bins,
            &n.reference,
        ))
    }

    /// Finishes a node's tumbling window: calibrate or compare.
    fn finish_window(
        cfg: &DriftConfig,
        state: &mut NodeDrift,
        comparisons: &mut u64,
        alarms: &mut u64,
        max_jsd: &mut f64,
    ) {
        state.windows += 1;
        let dims = state.counts.len() / cfg.bins;
        let inv_q = 1.0 / (dims * cfg.window_events) as f64;
        if state.ref_windows < cfg.reference_windows {
            // Calibration: fold this window into the healthy reference.
            if state.reference.is_empty() {
                state.reference = state.counts.clone();
            } else {
                for (r, &c) in state.reference.iter_mut().zip(&state.counts) {
                    *r += c;
                }
            }
            state.ref_windows += 1;
            if state.ref_windows == cfg.reference_windows {
                let inv_p = inv_q / cfg.reference_windows as f64;
                state.ref_entropy = state
                    .reference
                    .iter()
                    .map(|&c| ent(c as f64 * inv_p))
                    .sum::<f64>();
            }
        } else {
            // Streaming Eq. 4: JS(P‖Q) = H((P+Q)/2) − (H(P)+H(Q))/2,
            // identical cell-for-cell to js_divergence_2d over the
            // materialized histograms (pinned by tests), but computed
            // without building them. Reference and window carry
            // different total counts, so each uses its own
            // normalization.
            let inv_p = inv_q / cfg.reference_windows as f64;
            let mut h_mid = 0.0;
            let mut h_q = 0.0;
            for (&r, &c) in state.reference.iter().zip(&state.counts) {
                let p = r as f64 * inv_p;
                let q = c as f64 * inv_q;
                h_mid += ent(0.5 * (p + q));
                h_q += ent(q);
            }
            let js = (h_mid - 0.5 * (state.ref_entropy + h_q)).clamp(0.0, 1.0);
            state.last_jsd = js;
            if js > state.peak_jsd {
                state.peak_jsd = js;
            }
            *comparisons += 1;
            if js > *max_jsd {
                *max_jsd = js;
            }
            let drifted = js > cfg.threshold;
            if drifted && !state.alarmed {
                *alarms += 1;
            }
            state.alarmed = drifted;
        }
        state.counts.fill(0);
        state.filled = 0;
    }
}

/// One base-2 entropy term, `-x·log2(x)` (0 at 0).
fn ent(x: f64) -> f64 {
    if x > 0.0 {
        -x * x.log2()
    } else {
        0.0
    }
}

/// Snapshot of the monitor's drift state under `stage="drift"`:
/// lifetime event/comparison/alarm-transition counters, the number of
/// nodes currently drifted, and `cws_drift_peak_jsd` — the largest
/// divergence seen across all comparisons so far.
impl Observe for DriftMonitor {
    fn observe(&self, out: &mut Snapshot) {
        let labels = &[("stage", "drift")];
        out.counter("cws_drift_events_total", labels, self.events);
        out.counter("cws_drift_comparisons_total", labels, self.comparisons);
        out.counter("cws_drift_alarms_total", labels, self.alarms);
        out.gauge(
            "cws_drift_alarmed_nodes",
            labels,
            self.alarmed_nodes().count() as f64,
        );
        out.gauge("cws_drift_peak_jsd", labels, self.max_jsd);
    }
}

impl FleetSink for DriftMonitor {
    fn on_event(&mut self, event: &FleetEvent) -> CoreResult<()> {
        let l = event.signature.re.len();
        let dims = 2 * l;
        if l == 0 || event.signature.im.len() != l {
            return Err(CoreError::Shape(format!(
                "drift monitor: malformed signature ({l} re / {} im blocks)",
                event.signature.im.len()
            )));
        }
        if self.dims == 0 {
            self.dims = dims;
        } else if dims != self.dims {
            return Err(CoreError::Shape(format!(
                "drift monitor: event has {dims} feature dims, stream started with {}",
                self.dims
            )));
        }
        if event.node >= self.nodes.len() {
            self.nodes.resize(event.node + 1, NodeDrift::default());
        }
        let bins = self.cfg.bins;
        // Bin the event before re-borrowing the node mutably.
        let state = &mut self.nodes[event.node];
        if state.counts.is_empty() {
            state.counts = vec![0; dims * bins];
        }
        for (d, &v) in event.signature.re.iter().enumerate() {
            let b = (((v - self.cfg.lo) * self.inv_width).floor() as isize)
                .clamp(0, bins as isize - 1) as usize;
            state.counts[d * bins + b] += 1;
        }
        for (d, &v) in event.signature.im.iter().enumerate() {
            let b = (((v - self.cfg.lo) * self.inv_width).floor() as isize)
                .clamp(0, bins as isize - 1) as usize;
            state.counts[(l + d) * bins + b] += 1;
        }
        state.filled += 1;
        self.events += 1;
        if state.filled == self.cfg.window_events {
            Self::finish_window(
                &self.cfg,
                state,
                &mut self.comparisons,
                &mut self.alarms,
                &mut self.max_jsd,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsd::js_divergence_2d;
    use cwsmooth_core::cs::CsSignature;
    use cwsmooth_linalg::Matrix;

    const L: usize = 2;

    /// Deterministic pseudo-noise in [0, 1).
    fn noise(seed: u64) -> f64 {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn event(node: usize, w: usize, shift: f64) -> FleetEvent {
        let n1 = noise(w as u64 * 31 + node as u64);
        let n2 = noise(w as u64 * 57 + node as u64 + 1000);
        FleetEvent {
            node,
            window_index: w,
            signature: CsSignature {
                re: vec![
                    (0.3 + shift + 0.1 * n1).clamp(0.0, 1.0),
                    (0.6 + shift + 0.1 * n2).clamp(0.0, 1.0),
                ],
                im: vec![0.05 * (n1 - 0.5), 0.05 * (n2 - 0.5)],
            },
        }
    }

    fn monitor(window_events: usize) -> DriftMonitor {
        DriftMonitor::new(DriftConfig {
            bins: 8,
            window_events,
            threshold: 0.3,
            ..DriftConfig::default()
        })
    }

    #[test]
    fn monitor_is_send() {
        // The off-thread transport (`cwsmooth_core::transport::QueueSink`)
        // moves the monitor onto a consumer thread; this pins the `Send`
        // bound so a future `Rc`/raw-pointer field can't silently take
        // that ability away.
        fn assert_send<T: Send>() {}
        assert_send::<DriftMonitor>();
    }

    #[test]
    fn observe_snapshots_drift_state() {
        use cwsmooth_obs::Value;

        let mut m = monitor(24);
        let mut w = 0usize;
        for _ in 0..3 * 24 {
            m.on_event(&event(0, w, 0.0)).unwrap();
            m.on_event(&event(1, w, 0.0)).unwrap();
            w += 1;
        }
        for _ in 0..24 {
            m.on_event(&event(0, w, 0.0)).unwrap();
            m.on_event(&event(1, w, 0.35)).unwrap();
            w += 1;
        }
        assert!(m.alarmed(1));
        let mut snap = Snapshot::new();
        m.observe(&mut snap);
        let value = |name: &str| {
            snap.samples()
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.value.clone())
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(value("cws_drift_events_total"), Value::Counter(m.events()));
        assert_eq!(
            value("cws_drift_comparisons_total"),
            Value::Counter(m.comparisons())
        );
        assert_eq!(value("cws_drift_alarms_total"), Value::Counter(1));
        assert_eq!(value("cws_drift_alarmed_nodes"), Value::Gauge(1.0));
        assert_eq!(value("cws_drift_peak_jsd"), Value::Gauge(m.max_jsd()));
        assert!(m.max_jsd() > 0.3);
        for s in snap.samples() {
            assert_eq!(s.labels, vec![("stage".to_string(), "drift".to_string())]);
        }
    }

    #[test]
    fn stable_distribution_stays_quiet_shifted_one_alarms() {
        let mut m = monitor(24);
        let mut w = 0usize;
        // Calibration + two stable windows on both nodes.
        for _ in 0..3 * 24 {
            m.on_event(&event(0, w, 0.0)).unwrap();
            m.on_event(&event(1, w, 0.0)).unwrap();
            w += 1;
        }
        assert!(m.calibrated(0) && m.calibrated(1));
        assert_eq!(m.comparisons(), 4);
        assert!(
            m.last_jsd(0).unwrap() < 0.3,
            "jsd {}",
            m.last_jsd(0).unwrap()
        );
        assert!(!m.alarmed(0) && !m.alarmed(1));
        assert_eq!(m.alarms(), 0);

        // Node 1 drifts hard; node 0 stays put.
        for _ in 0..24 {
            m.on_event(&event(0, w, 0.0)).unwrap();
            m.on_event(&event(1, w, 0.35)).unwrap();
            w += 1;
        }
        assert!(!m.alarmed(0));
        assert!(m.alarmed(1), "jsd {}", m.last_jsd(1).unwrap());
        assert!(m.last_jsd(1).unwrap() > 0.3);
        assert_eq!(m.alarms(), 1);
        assert_eq!(m.alarmed_nodes().collect::<Vec<_>>(), vec![1]);
        assert!(m.max_jsd() >= m.last_jsd(1).unwrap());

        // Recovery drops the alarm; a second drift re-alarms.
        for _ in 0..24 {
            m.on_event(&event(1, w, 0.0)).unwrap();
            w += 1;
        }
        assert!(!m.alarmed(1));
        // The peak remembers the excursion even after recovery.
        assert!(m.peak_jsd(1).unwrap() > 0.3);
        assert!(m.peak_jsd(1).unwrap() >= m.last_jsd(1).unwrap());
        assert!(m.peak_jsd(0).unwrap() < 0.3);
        for _ in 0..24 {
            m.on_event(&event(1, w, 0.35)).unwrap();
            w += 1;
        }
        assert_eq!(m.alarms(), 2);
    }

    /// The streaming JSD must agree exactly with the reference
    /// implementation over materialized histograms.
    #[test]
    fn streaming_jsd_matches_js_divergence_2d() {
        let we = 20usize;
        let mut m = monitor(we);
        let mut ref_vals: Vec<Vec<f64>> = vec![Vec::new(); 2 * L];
        let mut cur_vals: Vec<Vec<f64>> = vec![Vec::new(); 2 * L];
        for w in 0..2 * we {
            let e = event(3, w, if w < we { 0.0 } else { 0.2 });
            let bucket = if w < we { &mut ref_vals } else { &mut cur_vals };
            for d in 0..L {
                bucket[d].push(e.signature.re[d]);
                bucket[L + d].push(e.signature.im[d]);
            }
            m.on_event(&e).unwrap();
        }
        let cfg = m.config();
        let to_hist = |vals: &Vec<Vec<f64>>| {
            let mat = Matrix::from_fn(2 * L, we, |r, c| vals[r][c]);
            DimensionHistogram::new(&mat, cfg.bins, cfg.lo, cfg.hi)
        };
        let expect = js_divergence_2d(&to_hist(&ref_vals), &to_hist(&cur_vals));
        let got = m.last_jsd(3).unwrap();
        assert!(
            (got - expect).abs() < 1e-12,
            "streaming {got} vs reference {expect}"
        );
        // The reference histogram accessor matches the collected data too.
        let ref_hist = m.reference_histogram(3).unwrap();
        assert_eq!(ref_hist.probs(), to_hist(&ref_vals).probs());
        assert!(m.reference_histogram(0).is_none());
    }

    /// A multi-window reference accumulates counts across calibration
    /// windows and normalizes each side by its own mass — pinned
    /// against the materialized-histogram reference implementation.
    #[test]
    fn multi_window_reference_matches_materialized_histograms() {
        let we = 10usize;
        let mut m = DriftMonitor::new(DriftConfig {
            bins: 8,
            window_events: we,
            reference_windows: 3,
            threshold: 0.3,
            ..DriftConfig::default()
        });
        let mut ref_vals: Vec<Vec<f64>> = vec![Vec::new(); 2 * L];
        let mut cur_vals: Vec<Vec<f64>> = vec![Vec::new(); 2 * L];
        for w in 0..4 * we {
            let calib = w < 3 * we;
            // Calibration spans two regimes; the compared window is a third.
            let shift = if w < we {
                0.0
            } else if calib {
                0.1
            } else {
                0.25
            };
            let e = event(0, w, shift);
            let bucket = if calib { &mut ref_vals } else { &mut cur_vals };
            for d in 0..L {
                bucket[d].push(e.signature.re[d]);
                bucket[L + d].push(e.signature.im[d]);
            }
            assert_eq!(m.calibrated(0), w >= 3 * we);
            assert_eq!(m.last_jsd(0).is_some(), w >= 4 * we);
            m.on_event(&e).unwrap();
        }
        let cfg = m.config();
        let to_hist = |vals: &Vec<Vec<f64>>, n: usize| {
            let mat = Matrix::from_fn(2 * L, n, |r, c| vals[r][c]);
            DimensionHistogram::new(&mat, cfg.bins, cfg.lo, cfg.hi)
        };
        let expect = js_divergence_2d(&to_hist(&ref_vals, 3 * we), &to_hist(&cur_vals, we));
        let got = m.last_jsd(0).unwrap();
        assert!(
            (got - expect).abs() < 1e-12,
            "streaming {got} vs reference {expect}"
        );
        assert_eq!(
            m.reference_histogram(0).unwrap().probs(),
            to_hist(&ref_vals, 3 * we).probs()
        );
    }

    #[test]
    fn rejects_malformed_and_mismatched_signatures() {
        let mut m = monitor(4);
        let empty = FleetEvent {
            node: 0,
            window_index: 0,
            signature: CsSignature::default(),
        };
        assert!(m.on_event(&empty).is_err());
        let lopsided = FleetEvent {
            node: 0,
            window_index: 0,
            signature: CsSignature {
                re: vec![0.1, 0.2],
                im: vec![0.0],
            },
        };
        assert!(m.on_event(&lopsided).is_err());
        m.on_event(&event(0, 0, 0.0)).unwrap();
        let narrow = FleetEvent {
            node: 0,
            window_index: 1,
            signature: CsSignature {
                re: vec![0.1],
                im: vec![0.0],
            },
        };
        assert!(m.on_event(&narrow).is_err(), "dims changed mid-stream");
        assert_eq!(m.events(), 1);
    }

    #[test]
    fn accessors_before_any_data() {
        let m = monitor(4);
        assert!(!m.calibrated(0));
        assert!(m.last_jsd(0).is_none());
        assert!(!m.alarmed(5));
        assert_eq!(m.alarmed_nodes().count(), 0);
        assert_eq!(m.events(), 0);
        assert_eq!(m.max_jsd(), 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn config_validation_panics() {
        DriftMonitor::new(DriftConfig {
            threshold: 2.0,
            ..DriftConfig::default()
        });
    }

    #[test]
    fn try_new_rejects_each_inconsistency_without_panicking() {
        let base = DriftConfig::default();
        let bad = [
            DriftConfig { bins: 0, ..base },
            DriftConfig {
                window_events: 0,
                ..base
            },
            DriftConfig {
                reference_windows: 0,
                ..base
            },
            DriftConfig {
                lo: 1.0,
                hi: 1.0,
                ..base
            },
            DriftConfig {
                threshold: f64::NAN,
                ..base
            },
            DriftConfig {
                threshold: 2.0,
                ..base
            },
        ];
        for cfg in bad {
            assert!(
                matches!(DriftMonitor::try_new(cfg), Err(CoreError::Config(_))),
                "{cfg:?} should be rejected"
            );
        }
        // The valid default still constructs through both entry points.
        assert!(DriftMonitor::try_new(base).is_ok());
        let _ = DriftMonitor::new(base);
    }
}
