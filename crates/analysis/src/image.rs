//! Grayscale heatmap images of sensor and signature matrices.
//!
//! The paper's Figs. 2, 6 and 7 render sorted sensor data and signature
//! heatmaps as images (darker = higher). [`GrayImage`] provides exactly
//! that: build from a matrix with min-max normalization, rescale with
//! nearest-neighbor or bilinear interpolation (the paper's "signatures can
//! be scaled at will using traditional image processing algorithms"), and
//! write to binary PGM files or ASCII for terminals.

use cwsmooth_linalg::Matrix;
use std::io::Write;
use std::path::Path;

/// A grayscale image with `f64` intensities in `[0, 1]`.
///
/// ```
/// use cwsmooth_analysis::GrayImage;
/// use cwsmooth_linalg::Matrix;
///
/// let m = Matrix::from_fn(4, 8, |r, c| (r + c) as f64);
/// let img = GrayImage::from_matrix(&m);       // min-max normalized
/// let big = img.resize_bilinear(16, 32);      // signatures scale like images
/// assert_eq!((big.height(), big.width()), (16, 32));
/// let ascii = img.to_ascii();                 // terminal heatmap
/// assert_eq!(ascii.lines().count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    /// Row-major intensities.
    data: Vec<f64>,
}

impl GrayImage {
    /// Builds an image from a matrix, min-max normalizing all values into
    /// `[0, 1]` (constant matrices render mid-gray).
    pub fn from_matrix(m: &Matrix) -> Self {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in m.as_slice() {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        let range = hi - lo;
        let data = if range > 0.0 && range.is_finite() {
            m.as_slice().iter().map(|&v| (v - lo) / range).collect()
        } else {
            vec![0.5; m.len()]
        };
        Self {
            width: m.cols(),
            height: m.rows(),
            data,
        }
    }

    /// Builds directly from intensities (clamped into `[0, 1]`).
    pub fn from_intensities(height: usize, width: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), width * height);
        let data = data.into_iter().map(|v| v.clamp(0.0, 1.0)).collect();
        Self {
            width,
            height,
            data,
        }
    }

    /// Image width (pixels).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height (pixels).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel intensity at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.width + col]
    }

    /// Nearest-neighbor rescale to `new_height x new_width`.
    pub fn resize_nearest(&self, new_height: usize, new_width: usize) -> GrayImage {
        assert!(new_height >= 1 && new_width >= 1);
        let mut data = Vec::with_capacity(new_height * new_width);
        for r in 0..new_height {
            let sr = (((r as f64 + 0.5) * self.height as f64 / new_height as f64).floor() as usize)
                .min(self.height - 1);
            for c in 0..new_width {
                let sc = (((c as f64 + 0.5) * self.width as f64 / new_width as f64).floor()
                    as usize)
                    .min(self.width - 1);
                data.push(self.get(sr, sc));
            }
        }
        GrayImage {
            width: new_width,
            height: new_height,
            data,
        }
    }

    /// Bilinear rescale to `new_height x new_width`.
    pub fn resize_bilinear(&self, new_height: usize, new_width: usize) -> GrayImage {
        assert!(new_height >= 1 && new_width >= 1);
        let mut data = Vec::with_capacity(new_height * new_width);
        for r in 0..new_height {
            // map to continuous source coordinates (center-aligned)
            let fy = ((r as f64 + 0.5) * self.height as f64 / new_height as f64 - 0.5)
                .clamp(0.0, (self.height - 1) as f64);
            let y0 = fy.floor() as usize;
            let y1 = (y0 + 1).min(self.height - 1);
            let wy = fy - y0 as f64;
            for c in 0..new_width {
                let fx = ((c as f64 + 0.5) * self.width as f64 / new_width as f64 - 0.5)
                    .clamp(0.0, (self.width - 1) as f64);
                let x0 = fx.floor() as usize;
                let x1 = (x0 + 1).min(self.width - 1);
                let wx = fx - x0 as f64;
                let top = self.get(y0, x0) * (1.0 - wx) + self.get(y0, x1) * wx;
                let bot = self.get(y1, x0) * (1.0 - wx) + self.get(y1, x1) * wx;
                data.push(top * (1.0 - wy) + bot * wy);
            }
        }
        GrayImage {
            width: new_width,
            height: new_height,
            data,
        }
    }

    /// Writes a binary PGM (P5). Darker pixels correspond to *higher*
    /// values, matching the paper's colormap.
    pub fn write_pgm<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "P5")?;
        writeln!(w, "{} {}", self.width, self.height)?;
        writeln!(w, "255")?;
        let bytes: Vec<u8> = self
            .data
            .iter()
            .map(|&v| (255.0 * (1.0 - v.clamp(0.0, 1.0))) as u8)
            .collect();
        w.write_all(&bytes)
    }

    /// Writes a PGM file.
    pub fn save_pgm(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.write_pgm(std::io::BufWriter::new(f))
    }

    /// Renders the image as ASCII art (one char per pixel, denser = higher).
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity(self.height * (self.width + 1));
        for r in 0..self.height {
            for c in 0..self.width {
                let v = self.get(r, c).clamp(0.0, 1.0);
                let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(h: usize, w: usize) -> GrayImage {
        let m = Matrix::from_fn(h, w, |r, c| (r + c) as f64);
        GrayImage::from_matrix(&m)
    }

    #[test]
    fn from_matrix_normalizes() {
        let m = Matrix::from_rows([[10.0, 20.0], [30.0, 50.0]]).unwrap();
        let img = GrayImage::from_matrix(&m);
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(1, 1), 1.0);
        assert!((img.get(0, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn constant_matrix_is_mid_gray() {
        let img = GrayImage::from_matrix(&Matrix::filled(3, 3, 7.0));
        assert!(img.to_ascii().lines().all(|l| l.chars().all(|c| c == '+')));
    }

    #[test]
    fn nearest_resize_shapes_and_identity() {
        let img = gradient(4, 6);
        let up = img.resize_nearest(8, 12);
        assert_eq!((up.height(), up.width()), (8, 12));
        assert_eq!(img.resize_nearest(4, 6), img);
        // corners preserved
        assert_eq!(up.get(0, 0), img.get(0, 0));
        assert_eq!(up.get(7, 11), img.get(3, 5));
    }

    #[test]
    fn bilinear_resize_is_smooth_and_bounded() {
        let img = gradient(4, 4);
        let up = img.resize_bilinear(9, 9);
        for r in 0..9 {
            for c in 0..8 {
                // gradient image stays monotone along rows
                assert!(up.get(r, c) <= up.get(r, c + 1) + 1e-12);
                assert!((0.0..=1.0).contains(&up.get(r, c)));
            }
        }
        assert_eq!(img.resize_bilinear(4, 4), img);
    }

    #[test]
    fn downscale_averages_structure() {
        let img = gradient(8, 8);
        let down = img.resize_bilinear(2, 2);
        assert!(down.get(0, 0) < down.get(1, 1));
    }

    #[test]
    fn pgm_roundtrip_header() {
        let img = gradient(3, 5);
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf[..12]);
        assert!(text.starts_with("P5\n5 3\n255"));
        // header + 15 pixel bytes
        assert_eq!(buf.len(), buf.len() - 15 + 15);
        // darker = higher: last pixel (max value) must be byte 0
        assert_eq!(*buf.last().unwrap(), 0u8);
    }

    #[test]
    fn ascii_dimensions() {
        let img = gradient(3, 7);
        let text = img.to_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 7));
    }

    #[test]
    fn intensities_constructor_clamps() {
        let img = GrayImage::from_intensities(1, 3, vec![-1.0, 0.5, 2.0]);
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(0, 2), 1.0);
    }
}
