//! End-to-end background compaction: event preservation across merges,
//! bit-identical queries after Morton reordering (the compaction-parity
//! property), and composition with drop-oldest retention.

use cwsmooth_core::cs::CsSignature;
use cwsmooth_data::WindowSpec;
use cwsmooth_store::{
    Compactor, CompactorConfig, Distance, Encoding, SignatureIndex, SignatureStore, StoreConfig,
};
use std::path::PathBuf;

const L: usize = 3;

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cwsmooth-compact-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn spec() -> WindowSpec {
    WindowSpec::new(30, 10).unwrap()
}

/// Deterministic xorshift generator — the parity test sweeps seeds.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Pushes a clustered pseudo-random corpus and flushes; each node
/// orbits its own center so coarse quantization has real structure.
fn push_corpus(store: &mut SignatureStore, nodes: u32, windows: u64, seed: u64) {
    let mut rng = Rng(seed | 1);
    for w in 0..windows {
        for n in 0..nodes {
            let c = (n as f64 + 1.0) / nodes as f64;
            let sig = CsSignature {
                re: (0..L)
                    .map(|i| c + 0.05 * rng.next() + 0.01 * i as f64)
                    .collect(),
                im: (0..L).map(|_| 0.1 * c + 0.02 * rng.next()).collect(),
            };
            store.push(n, w, &sig).unwrap();
        }
    }
    store.flush().unwrap();
}

fn collect(store: &SignatureStore) -> Vec<(u32, u64, Vec<f64>)> {
    let mut out = Vec::new();
    store
        .for_each(|n, w, v| out.push((n, w, v.to_vec())))
        .unwrap();
    out.sort_by_key(|e| (e.0, e.1));
    out
}

fn cws_files(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "cws"))
        .count()
}

#[test]
fn background_compaction_merges_small_segments_and_preserves_every_event() {
    let dir = tmpdir("merge");
    let cfg = StoreConfig::default()
        .with_block_events(8)
        .with_segment_events(64);
    let mut store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    push_corpus(&mut store, 6, 64, 9);
    let before = collect(&store);
    assert!(!before.is_empty());
    let files_before = cws_files(&dir);
    assert!(
        files_before >= 4,
        "corpus must span several segments, got {files_before}"
    );

    // `small_events: MAX` makes every sealed segment a candidate, so
    // cascading runs converge on a single sealed segment.
    let mut compactor = Compactor::new(CompactorConfig {
        small_events: Some(u64::MAX),
        ..CompactorConfig::default()
    })
    .unwrap();
    let commits = compactor.run_until_idle(&mut store).unwrap();
    assert!(commits >= 1);
    let stats = compactor.stats();
    assert_eq!(stats.runs, commits as u64);
    assert!(stats.segments_in >= 2 * stats.runs);
    assert!(stats.events > 0 && stats.bytes_out > 0);
    assert!(cws_files(&dir) < files_before);
    assert_eq!(
        collect(&store),
        before,
        "compaction must not change a single readable event"
    );
    compactor.shutdown().unwrap();

    // Reopen: the merged layout recovers cleanly and reads identically.
    drop(store);
    let store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    assert_eq!(store.recovery().compactions_rolled_forward, 0);
    assert_eq!(store.recovery().compactions_rolled_back, 0);
    assert_eq!(collect(&store), before);
    std::fs::remove_dir_all(&dir).ok();
}

/// The compaction-parity property: across seeds, encodings and layout
/// policies, every query answer — the full `(distance, node, window)`
/// total order, distances included — is bit-identical before and after
/// compaction, and again after a reopen of the compacted directory.
#[test]
fn compaction_parity_queries_bit_identical_across_seeds_encodings_and_layout() {
    let cases = [
        (1u64, Encoding::Exact, true),
        (2, Encoding::Exact, true),
        (3, Encoding::Exact, false),
        (4, Encoding::Quant16, true),
        (5, Encoding::Quant8, true),
    ];
    for &(seed, encoding, morton) in &cases {
        let label = format!("seed {seed} {encoding:?} morton={morton}");
        let dir = tmpdir(&format!("parity-{seed}"));
        let cfg = StoreConfig::default()
            .with_encoding(encoding)
            .with_block_events(8)
            .with_segment_events(48);
        let mut store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
        push_corpus(&mut store, 5, 60, seed);
        let events = collect(&store);

        // Pre-compaction answers: exact scans plus full-probe indexed
        // scans (probing every cell pins the indexed code path's total
        // order without depending on where k-means puts centroids).
        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9) | 1);
        let queries: Vec<Vec<f64>> = (0..24)
            .map(|_| (0..2 * L).map(|_| rng.next()).collect())
            .collect();
        let index = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse(6, 6)
            .unwrap();
        let full_probe = index.len();
        let before: Vec<_> = queries
            .iter()
            .map(|q| {
                (
                    index.query(q, 12).unwrap(),
                    index.query_indexed(q, 12, full_probe).unwrap(),
                )
            })
            .collect();

        let mut compactor = Compactor::new(CompactorConfig {
            small_events: Some(u64::MAX),
            morton,
            ..CompactorConfig::default()
        })
        .unwrap();
        assert!(
            compactor.run_until_idle(&mut store).unwrap() >= 1,
            "{label}"
        );
        compactor.shutdown().unwrap();
        assert_eq!(collect(&store), events, "{label}");

        let index = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse(6, 6)
            .unwrap();
        for (q, (exact, full)) in queries.iter().zip(&before) {
            assert_eq!(&index.query(q, 12).unwrap(), exact, "{label}");
            assert_eq!(
                &index.query_indexed(q, 12, full_probe).unwrap(),
                full,
                "{label}"
            );
        }

        // And once more through the sidecar-driven recovery path.
        drop(store);
        let store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
        assert!(store.recovery().sidecars_used > 0, "{label}");
        let index = SignatureIndex::build(&store, Distance::L2).unwrap();
        for (q, (exact, _)) in queries.iter().zip(&before) {
            assert_eq!(&index.query(q, 12).unwrap(), exact, "{label} (reopen)");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn compaction_composes_with_drop_oldest_retention() {
    let dir = tmpdir("retention");
    let cfg = StoreConfig::default()
        .with_block_events(4)
        .with_segment_events(24)
        .with_max_segments(3);
    let mut store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    let mut compactor = Compactor::new(CompactorConfig {
        min_inputs: 2,
        max_inputs: 4,
        small_events: Some(u64::MAX),
        morton: true,
    })
    .unwrap();
    let mut rng = Rng(77);
    let mut w = 0u64;
    for _round in 0..40 {
        for _ in 0..12 {
            for n in 0..2u32 {
                let sig = CsSignature {
                    re: (0..L).map(|_| rng.next()).collect(),
                    im: (0..L).map(|_| rng.next()).collect(),
                };
                store.push(n, w, &sig).unwrap();
            }
            w += 1;
        }
        store.flush().unwrap();
        // Interleaved scheduling: commits land between flushes while
        // retention keeps evicting — stale merges are skipped, never
        // errors.
        compactor.poll(&mut store).unwrap();
    }
    compactor.run_until_idle(&mut store).unwrap();
    compactor.shutdown().unwrap();

    let stats = store.stats();
    assert!(
        stats.segments_dropped > 0,
        "retention must have fired: {stats:?}"
    );
    let events = collect(&store);
    assert_eq!(
        events.len() as u64,
        stats.events - stats.events_dropped,
        "every accepted event is either readable or accounted dropped"
    );
    let newest = events.iter().map(|e| e.1).max().unwrap();
    assert_eq!(newest, w - 1, "the newest window must survive retention");
    std::fs::remove_dir_all(&dir).ok();
}
