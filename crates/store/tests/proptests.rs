//! Property-based round-trip tests for the signature store: arbitrary
//! event streams (gappy window axes, extreme-but-finite values, many
//! nodes) must survive flush + reopen under every encoding.

use cwsmooth_core::cs::CsSignature;
use cwsmooth_data::WindowSpec;
use cwsmooth_store::{Encoding, SignatureStore, StoreConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cwsmooth-store-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One node's stream: strictly increasing windows with arbitrary gaps,
/// plus a value per (event, feature).
fn node_stream(l: usize) -> impl Strategy<Value = (Vec<u64>, Vec<f64>)> {
    (1usize..20).prop_flat_map(move |events| {
        (
            prop::collection::vec(1u64..50, events),
            prop::collection::vec(-1e6f64..1e6f64, events * 2 * l),
        )
            .prop_map(|(gaps, values)| {
                let mut w = 0u64;
                let windows: Vec<u64> = gaps
                    .iter()
                    .map(|&g| {
                        w += g;
                        w
                    })
                    .collect();
                (windows, values)
            })
    })
}

fn run_roundtrip(
    encoding: Encoding,
    block_events: usize,
    streams: Vec<(Vec<u64>, Vec<f64>)>,
) -> Result<(), TestCaseError> {
    let dir = tmpdir();
    let l = 2usize;
    let spec = WindowSpec::new(16, 8).unwrap();
    let cfg = StoreConfig::default()
        .with_encoding(encoding)
        .with_block_events(block_events);
    let mut store = SignatureStore::open(&dir, spec, l, cfg).unwrap();
    let mut expect: Vec<(u32, u64, Vec<f64>)> = Vec::new();
    for (node, (windows, values)) in streams.iter().enumerate() {
        for (i, &w) in windows.iter().enumerate() {
            let feats = &values[i * 2 * l..(i + 1) * 2 * l];
            let sig = CsSignature {
                re: feats[..l].to_vec(),
                im: feats[l..].to_vec(),
            };
            store.push(node as u32, w, &sig).unwrap();
            expect.push((node as u32, w, feats.to_vec()));
        }
    }
    store.flush().unwrap();
    drop(store);

    let store = SignatureStore::open(&dir, spec, l, cfg).unwrap();
    let mut got: Vec<(u32, u64, Vec<f64>)> = Vec::new();
    store
        .for_each(|n, w, v| got.push((n, w, v.to_vec())))
        .unwrap();
    got.sort_by_key(|&(n, w, _)| (n, w));
    expect.sort_by_key(|&(n, w, _)| (n, w));
    prop_assert_eq!(got.len(), expect.len());
    for ((gn, gw, gv), (en, ew, ev)) in got.iter().zip(&expect) {
        prop_assert_eq!((gn, gw), (en, ew));
        match encoding {
            Encoding::Exact => {
                for (a, b) in gv.iter().zip(ev) {
                    // Exact mode must be bitwise.
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            Encoding::Quant8 | Encoding::Quant16 => {
                // Error is bounded by one quantization step of the
                // block's value range (<= full range here).
                let qmax = if encoding == Encoding::Quant8 {
                    255.0
                } else {
                    65535.0
                };
                let step = 2e6 / qmax;
                for (a, b) in gv.iter().zip(ev) {
                    prop_assert!((a - b).abs() <= step, "{a} vs {b} (step {step})");
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

proptest! {
    #[test]
    fn exact_roundtrip_is_bitwise(
        streams in prop::collection::vec(node_stream(2), 1..6),
        block_events in 1usize..12,
    ) {
        run_roundtrip(Encoding::Exact, block_events, streams)?;
    }

    #[test]
    fn quant8_roundtrip_is_step_bounded(
        streams in prop::collection::vec(node_stream(2), 1..6),
        block_events in 1usize..12,
    ) {
        run_roundtrip(Encoding::Quant8, block_events, streams)?;
    }

    #[test]
    fn quant16_roundtrip_is_step_bounded(
        streams in prop::collection::vec(node_stream(2), 1..6),
        block_events in 1usize..12,
    ) {
        run_roundtrip(Encoding::Quant16, block_events, streams)?;
    }

    #[test]
    fn truncation_anywhere_never_panics_on_reopen(
        events in 2usize..40,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = tmpdir();
        let spec = WindowSpec::new(16, 8).unwrap();
        let cfg = StoreConfig::default().with_block_events(4);
        let mut store = SignatureStore::open(&dir, spec, 1, cfg).unwrap();
        for w in 0..events as u64 {
            let sig = CsSignature { re: vec![w as f64], im: vec![-(w as f64)] };
            store.push(0, w, &sig).unwrap();
        }
        store.flush().unwrap();
        drop(store);
        let path = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let len = std::fs::metadata(&path).unwrap().len();
        let cut = (len as f64 * cut_frac) as u64;
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(cut).unwrap();
        // Reopen must either recover a prefix or error cleanly — never panic.
        match SignatureStore::open(&dir, spec, 1, cfg) {
            Ok(store) => prop_assert!(store.recovery().events <= events as u64),
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(!msg.is_empty());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
