//! Store durability and fidelity on the fleet-sim workload: kill-and-
//! reopen recovery, quantized-vs-exact reconstruction fidelity (JSD and
//! compression ratio), and exact-scan vs coarse-indexed k-NN parity.

use cwsmooth_analysis::jsd::{js_divergence_2d, DimensionHistogram};
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::fleet::FleetEngine;
use cwsmooth_data::WindowSpec;
use cwsmooth_linalg::Matrix;
use cwsmooth_sim::fleet::{FleetScenario, FleetSimConfig};
use cwsmooth_store::{Distance, Encoding, SignatureIndex, SignatureStore, StoreConfig};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cwsmooth-durability-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

const L: usize = 4;
const TRAIN: usize = 256;

fn spec() -> WindowSpec {
    WindowSpec::new(30, 10).unwrap()
}

/// Streams `frames` fleet frames (after training) into `store`,
/// returning the engine for stats cross-checks.
fn ingest_fleet(store: &mut SignatureStore, nodes: usize, frames: usize, gaps: u32) -> FleetEngine {
    let scenario = FleetScenario::new(FleetSimConfig::new(42, nodes).with_gaps(gaps));
    let methods: Vec<CsMethod> = (0..nodes)
        .map(|node| {
            let history = scenario.training_matrix(node, TRAIN);
            CsMethod::new(CsTrainer::default().train(&history).unwrap(), L).unwrap()
        })
        .collect();
    let mut engine = FleetEngine::new(methods, spec()).unwrap();
    let mut frame = engine.frame();
    for f in 0..frames {
        let t = TRAIN + f;
        frame.clear();
        for node in 0..nodes {
            if !scenario.has_gap(node, t) {
                scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
            }
        }
        engine.ingest_frame_sink(&frame, store).unwrap();
    }
    engine
}

fn collect(store: &SignatureStore) -> Vec<(u32, u64, Vec<f64>)> {
    let mut out = Vec::new();
    store
        .for_each(|n, w, v| out.push((n, w, v.to_vec())))
        .unwrap();
    out.sort_by_key(|&(n, w, _)| (n, w));
    out
}

#[test]
fn kill_and_reopen_recovers_the_flushed_prefix() {
    let dir = tmpdir("kill");
    let cfg = StoreConfig::default().with_block_events(32);
    let mut store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    let engine = ingest_fleet(&mut store, 12, 600, 5);
    store.flush().unwrap();
    assert_eq!(store.stats().events, engine.stats().events);
    let before = collect(&store);
    assert!(!before.is_empty());
    drop(store);

    // Simulate a kill mid-append: chop the tail of the newest segment.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "cws"))
        .collect();
    files.sort();
    let last = files.last().unwrap();
    let bytes = std::fs::read(last).unwrap();
    let cut = bytes.len() - bytes.len() / 3;
    std::fs::OpenOptions::new()
        .write(true)
        .open(last)
        .unwrap()
        .set_len(cut as u64)
        .unwrap();

    let store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    let rec = store.recovery();
    assert!(rec.bytes_truncated > 0, "{rec:?}");
    let after = collect(&store);
    // Whatever survived is a strict prefix of the pre-kill contents:
    // every recovered event matches the original bit for bit.
    assert!(after.len() < before.len());
    assert!(!after.is_empty());
    assert_eq!(rec.events as usize, after.len());
    for ev in &after {
        let orig = before
            .iter()
            .find(|o| (o.0, o.1) == (ev.0, ev.1))
            .expect("recovered event was never written");
        assert_eq!(&orig.2, &ev.2);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_report_counts_removed_files_and_truncated_bytes() {
    let dir = tmpdir("recovery-report");
    let cfg = StoreConfig::default().with_block_events(16);
    let mut store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    ingest_fleet(&mut store, 6, 400, 0);
    store.flush().unwrap();
    drop(store);

    // A dead header-only segment (an active file a previous process
    // never wrote to) before the data, and a half-written block at the
    // end of the newest (last) data segment.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "cws"))
        .collect();
    files.sort();
    let data = files.last().unwrap().clone();
    let header = std::fs::read(&data).unwrap()[..32].to_vec();
    std::fs::write(dir.join("seg-00000000.cws"), &header).unwrap();
    let len = std::fs::metadata(&data).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&data)
        .unwrap()
        .set_len(len - 9)
        .unwrap();

    let store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    let rec = store.recovery();
    assert_eq!(rec.segments_removed, 1, "{rec:?}");
    assert!(rec.bytes_truncated > 0, "{rec:?}");
    assert!(rec.events > 0 && rec.segments > 0, "{rec:?}");
    assert!(!dir.join("seg-00000000.cws").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crc_corruption_in_a_sealed_segment_is_an_error_not_a_panic() {
    let dir = tmpdir("crc");
    let cfg = StoreConfig::default()
        .with_block_events(16)
        .with_segment_events(64);
    let mut store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    ingest_fleet(&mut store, 8, 400, 0);
    store.flush().unwrap();
    drop(store);

    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.retain(|f| f.extension().is_some_and(|e| e == "cws"));
    files.sort();
    assert!(files.len() >= 3, "expected several sealed segments");
    // Flip one payload byte in the middle of an *early* segment. The
    // flip is mid-file, so the segment's fingerprint (head + tail) —
    // and hence its index sidecar — still matches.
    let victim = files[0].clone();
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();

    // With the sidecar present, open skips the full CRC pass — the
    // corruption surfaces as an error (never a panic, never silent
    // garbage) at the first read touching the damaged block.
    let store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    assert!(store.recovery().sidecars_used > 0, "premise: fast path");
    let err = store.for_each(|_, _, _| {}).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("corrupt"), "unexpected error: {msg}");
    drop(store);

    // Without the sidecar, the full open-time scan catches it up front.
    std::fs::remove_file(victim.with_extension("idx")).unwrap();
    let err = SignatureStore::open(&dir, spec(), L, cfg).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("corrupt"), "unexpected error: {msg}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbage_files_error_cleanly() {
    let dir = tmpdir("garbage");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("seg-00000001.cws"),
        b"this is not a segment file at all",
    )
    .unwrap();
    assert!(SignatureStore::open(&dir, spec(), L, StoreConfig::default()).is_err());
    // An empty crash file in last position is removed, not fatal.
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("seg-00000001.cws"), b"").unwrap();
    let store = SignatureStore::open(&dir, spec(), L, StoreConfig::default()).unwrap();
    assert_eq!(store.recovery().segments, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance bar: ≥ 8x compression vs raw f64 signature storage
/// (window index + `2l` f64 features per event) on the fleet workload,
/// with reconstructed signatures statistically faithful to the
/// originals (JSD over per-dimension value distributions).
#[test]
fn quantized_store_compresses_8x_with_bounded_jsd() {
    let exact_dir = tmpdir("fid-exact");
    let q8_dir = tmpdir("fid-q8");
    let q16_dir = tmpdir("fid-q16");
    let nodes = 8usize;
    let frames = 3000usize;
    let base = StoreConfig::default().with_block_events(256);

    let mut exact = SignatureStore::open(&exact_dir, spec(), L, base).unwrap();
    ingest_fleet(&mut exact, nodes, frames, 5);
    exact.flush().unwrap();
    let mut q8 =
        SignatureStore::open(&q8_dir, spec(), L, base.with_encoding(Encoding::Quant8)).unwrap();
    ingest_fleet(&mut q8, nodes, frames, 5);
    q8.flush().unwrap();
    let mut q16 =
        SignatureStore::open(&q16_dir, spec(), L, base.with_encoding(Encoding::Quant16)).unwrap();
    ingest_fleet(&mut q16, nodes, frames, 5);
    q16.flush().unwrap();

    let events = exact.events();
    assert!(events > 2000, "workload too small: {events}");
    let dim = exact.dim();
    let raw_bytes = events * (8 + 8 * dim as u64);
    let ratio8 = raw_bytes as f64 / q8.bytes_on_disk() as f64;
    let ratio16 = raw_bytes as f64 / q16.bytes_on_disk() as f64;
    assert!(ratio8 >= 8.0, "u8 compression ratio {ratio8:.2} < 8x");
    assert!(ratio16 >= 4.0, "u16 compression ratio {ratio16:.2} < 4x");

    // Reconstruction fidelity: per-dimension value distributions of the
    // decoded store vs the exact store, as 2-D histograms (the paper's
    // Sec. IV-A2 comparison applied to the storage layer).
    let originals = collect(&exact);
    for (store, bound, tag) in [(&q8, 0.02, "u8"), (&q16, 0.002, "u16")] {
        let decoded = collect(store);
        assert_eq!(decoded.len(), originals.len());
        let n = originals.len();
        let mut orig_m = Matrix::zeros(dim, n);
        let mut deco_m = Matrix::zeros(dim, n);
        let mut max_err: f64 = 0.0;
        for (c, (o, d)) in originals.iter().zip(&decoded).enumerate() {
            assert_eq!((o.0, o.1), (d.0, d.1), "event keys must line up");
            for r in 0..dim {
                orig_m.set(r, c, o.2[r]);
                deco_m.set(r, c, d.2[r]);
                max_err = max_err.max((o.2[r] - d.2[r]).abs());
            }
        }
        let (lo, hi) = (
            orig_m
                .as_slice()
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min),
            orig_m
                .as_slice()
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max),
        );
        let p = DimensionHistogram::new(&orig_m, 64, lo, hi);
        let q = DimensionHistogram::new(&deco_m, 64, lo, hi);
        let jsd = js_divergence_2d(&p, &q);
        assert!(jsd <= bound, "{tag}: JSD {jsd:.5} exceeds {bound}");
        assert!(max_err < 0.05, "{tag}: max reconstruction error {max_err}");
    }
    for d in [&exact_dir, &q8_dir, &q16_dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn reopened_exact_store_yields_bit_identical_queries() {
    let dir = tmpdir("reopen-query");
    let cfg = StoreConfig::default().with_block_events(64);
    let mut store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    ingest_fleet(&mut store, 10, 800, 5);
    store.flush().unwrap();
    let index = SignatureIndex::build(&store, Distance::L2).unwrap();
    let queries: Vec<Vec<f64>> = collect(&store)
        .iter()
        .step_by(97)
        .map(|(_, _, v)| v.clone())
        .collect();
    let before: Vec<_> = queries
        .iter()
        .map(|q| index.query(q, 10).unwrap())
        .collect();
    drop(index);
    drop(store);

    let store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    let index = SignatureIndex::build(&store, Distance::L2).unwrap();
    let after: Vec<_> = queries
        .iter()
        .map(|q| index.query(q, 10).unwrap())
        .collect();
    // Not approximately equal: *the same* neighbors at *the same*
    // (bitwise) distances, exact mode round-trips f64 losslessly.
    assert_eq!(before, after);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn indexed_knn_on_fleet_data_meets_recall_bar() {
    let dir = tmpdir("recall");
    let mut store = SignatureStore::open(&dir, spec(), L, StoreConfig::default()).unwrap();
    ingest_fleet(&mut store, 16, 1500, 5);
    store.flush().unwrap();
    for distance in [Distance::L2, Distance::Pearson] {
        let index = SignatureIndex::build(&store, distance)
            .unwrap()
            .with_coarse(24, 10)
            .unwrap();
        assert!(index.len() > 2000);
        let events = collect(&store);
        let mut top1 = 0usize;
        let mut recall = 0.0;
        let queries: Vec<_> = events.iter().step_by(53).collect();
        for (_, _, q) in &queries {
            let exact = index.query(q, 10).unwrap();
            let approx = index.query_indexed(q, 10, 4).unwrap();
            if approx[0] == exact[0] {
                top1 += 1;
            }
            let exact_keys: Vec<(u32, u64)> =
                exact.iter().map(|h| (h.node, h.window_index)).collect();
            let hit = approx
                .iter()
                .filter(|h| exact_keys.contains(&(h.node, h.window_index)))
                .count();
            recall += hit as f64 / exact.len() as f64;
        }
        let n = queries.len() as f64;
        assert_eq!(
            top1,
            queries.len(),
            "{distance:?}: top-1 must match exact scan"
        );
        let recall = recall / n;
        assert!(recall >= 0.9, "{distance:?}: recall@10 {recall:.3} < 0.9");

        // IVF-PQ: the ADC first pass plus exact re-ranking must hold
        // the same bar (dim = 8, m = 4 → two features per subquantizer).
        let index = index.with_pq(4, 8).unwrap();
        let mut recall_pq = 0.0;
        for (_, _, q) in &queries {
            let exact = index.query(q, 10).unwrap();
            let approx = index.query_indexed(q, 10, 4).unwrap();
            assert_eq!(
                approx[0], exact[0],
                "{distance:?}: PQ re-ranking must preserve the top hit"
            );
            let exact_keys: Vec<(u32, u64)> =
                exact.iter().map(|h| (h.node, h.window_index)).collect();
            let hit = approx
                .iter()
                .filter(|h| exact_keys.contains(&(h.node, h.window_index)))
                .count();
            recall_pq += hit as f64 / exact.len() as f64;
        }
        let recall_pq = recall_pq / n;
        assert!(
            recall_pq >= 0.9,
            "{distance:?}: PQ recall@10 {recall_pq:.3} < 0.9"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
