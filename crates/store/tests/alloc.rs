//! Pins the zero-allocation guarantee of the store ingest hot path:
//! once per-node staging buffers, the encode scratch and the block
//! index have warmed up, `SignatureStore::push` — including the block
//! flushes it triggers — must never touch the heap. File writes go
//! straight to the descriptor; no userspace buffering, no allocation.
//!
//! Measured with a counting global allocator filtered to the test
//! thread: the libtest harness thread allocates sporadically (observed
//! as intermittent 48+96-byte pairs), so counting every thread makes
//! the pin flaky. This file still holds exactly one `#[test]` so the
//! counter window stays easy to reason about.

use cwsmooth_core::cs::CsSignature;
use cwsmooth_data::WindowSpec;
use cwsmooth_store::{Encoding, SignatureStore, StoreConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the thread that sets this flag is counted.
    static COUNT_ME: Cell<bool> = const { Cell::new(false) };
}

fn counted() -> bool {
    COUNT_ME.try_with(Cell::get).unwrap_or(false)
}

struct CountingAlloc;

// SAFETY: a pure pass-through to the System allocator — every method
// forwards its arguments unchanged, so System's contract is ours; the
// counters never touch the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as System.alloc, to which we forward.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: same contract as System.dealloc, to which we forward.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counted() {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as System.realloc, to which we forward.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_store_push_performs_no_heap_allocation() {
    COUNT_ME.with(|c| c.set(true));
    let dir = std::env::temp_dir().join(format!("cwsmooth-store-alloc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let l = 4usize;
    let nodes = 8u32;
    let spec = WindowSpec::new(30, 10).unwrap();
    // Quantized encoding (the more complex encode path) and a segment
    // capacity large enough that no roll-over lands in the window.
    let cfg = StoreConfig::default()
        .with_encoding(Encoding::Quant8)
        .with_block_events(32)
        .with_segment_events(1 << 40);
    let mut store = SignatureStore::open(&dir, spec, l, cfg).unwrap();
    let mut sig = CsSignature {
        re: vec![0.0; l],
        im: vec![0.0; l],
    };
    let fill = |sig: &mut CsSignature, node: u32, w: u64| {
        for (i, v) in sig.re.iter_mut().enumerate() {
            *v = ((w as f64 + i as f64) * 0.31 + node as f64).sin() * 0.5 + 0.5;
        }
        for (i, v) in sig.im.iter_mut().enumerate() {
            *v = ((w as f64 - i as f64) * 0.17 + node as f64).cos() * 0.01;
        }
    };

    // Warm-up: several full block flushes per node.
    let mut w = 0u64;
    while store.stats().blocks < 3 * nodes as u64 {
        for node in 0..nodes {
            fill(&mut sig, node, w);
            store.push(node, w, &sig).unwrap();
        }
        w += 1;
    }

    // Measurement window: thousands of pushes including dozens of block
    // flushes (and window gaps exercising the delta packer) — all
    // heap-silent.
    let a0 = ALLOCS.load(Ordering::SeqCst);
    let d0 = DEALLOCS.load(Ordering::SeqCst);
    let blocks_before = store.stats().blocks;
    for _ in 0..400 {
        w += if w.is_multiple_of(13) { 3 } else { 1 }; // occasional gaps
        for node in 0..nodes {
            fill(&mut sig, node, w);
            store.push(node, w, &sig).unwrap();
        }
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - a0;
    let deallocs = DEALLOCS.load(Ordering::SeqCst) - d0;
    let blocks = store.stats().blocks - blocks_before;

    assert!(blocks > 50, "expected many block flushes, got {blocks}");
    assert_eq!(allocs, 0, "steady-state pushes allocated {allocs} times");
    assert_eq!(deallocs, 0, "steady-state pushes freed {deallocs} times");
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
