//! Sidecar files: persisted indexes and the compaction intent log.
//!
//! Three kinds of file live next to the `.cws` segments, all following
//! the store's CRC-everywhere discipline (a whole-file CRC-32 trailer;
//! any damage → the sidecar is ignored and rebuilt, never an error):
//!
//! | file | contents |
//! |---|---|
//! | `seg-<id>.idx` | block offset index + segment fingerprint — lets `open()` skip re-reading and re-parsing the whole segment |
//! | `knn.idx` | coarse-quantizer centroids, inverted-list assignments, optional PQ codebooks/codes + store fingerprint — lets index builds skip re-clustering |
//! | `compact-<id>.intent` | compaction commit record: output id + input ids — replayed or rolled back at `open()` |
//!
//! Sidecars are *caches with a proof*: each carries a fingerprint of
//! the data it was derived from, checked before use. A mismatch (the
//! segment was truncated by crash recovery, replaced by compaction,
//! or the store grew) silently falls back to the slow path that
//! rebuilds — and rewrites — the sidecar. Correctness never depends on
//! a sidecar being present, fresh, or intact.
//!
//! The intent file is the exception: it is not a cache but the
//! write-ahead record of a compaction commit. It is fsynced *before*
//! the merged segment is renamed over its first input, so
//! `recover_compaction` can always tell which side of the rename a
//! crash happened on: temporary still present → roll back (delete it);
//! temporary gone → the rename landed, roll forward (delete the now
//! duplicate inputs).

use crate::crc::crc32;
use crate::store::BlockEntry;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Current sidecar format version (shared by all sidecar kinds).
const SIDECAR_VERSION: u16 = 1;
const SEG_MAGIC: &[u8; 8] = b"CWSIDX\x01\x00";
const KNN_MAGIC: &[u8; 8] = b"CWSKNN\x01\x00";
const INTENT_MAGIC: &[u8; 8] = b"CWSINT\x01\x00";

/// Path of the block-index sidecar for segment `id`.
pub(crate) fn seg_sidecar_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.idx"))
}

/// Path of the store-wide k-NN quantizer sidecar.
pub(crate) fn knn_sidecar_path(dir: &Path) -> PathBuf {
    dir.join("knn.idx")
}

/// Path of the compaction intent record for output segment `id`.
pub(crate) fn intent_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("compact-{id:08}.intent"))
}

/// Path of the compaction merge temporary for output segment `id`.
pub(crate) fn compact_tmp_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("compact-{id:08}.tmp"))
}

// ---------------------------------------------------------------------
// Little-endian buffer I/O with a whole-file CRC trailer.
// ---------------------------------------------------------------------

/// Builds a sidecar image: magic + version, fields, CRC-32 trailer.
pub(crate) struct SidecarWriter {
    buf: Vec<u8>,
}

impl SidecarWriter {
    fn new(magic: &[u8; 8]) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(magic);
        buf.extend_from_slice(&SIDECAR_VERSION.to_le_bytes());
        Self { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn finish(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

/// Cursor over a CRC-verified sidecar image. Every accessor returns
/// `None` past the end instead of panicking; a `None` anywhere makes
/// the caller treat the sidecar as absent.
pub(crate) struct SidecarReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> SidecarReader<'a> {
    /// Verifies magic, version and the CRC trailer; `None` on any
    /// mismatch (including truncation).
    fn open(bytes: &'a [u8], magic: &[u8; 8]) -> Option<Self> {
        if bytes.len() < magic.len() + 2 + 4 || &bytes[..8] != magic {
            return None;
        }
        let body = &bytes[..bytes.len() - 4];
        let mut tail = [0u8; 4];
        tail.copy_from_slice(&bytes[bytes.len() - 4..]);
        if crc32(body) != u32::from_le_bytes(tail) {
            return None;
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != SIDECAR_VERSION {
            return None;
        }
        Some(Self { buf: body, at: 10 })
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u32(&mut self) -> Option<u32> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Some(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Some(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads `n` f64s, refusing counts larger than what the verified
    /// buffer can hold (bounds allocation by the actual file size).
    fn f64_vec(&mut self, n: usize) -> Option<Vec<f64>> {
        if n.checked_mul(8)? > self.buf.len() - self.at {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Some(out)
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// Writes `bytes` to `path` atomically: a `.wip` neighbour is written,
/// synced, then renamed into place — a reader never sees a torn file.
fn write_atomic(path: &Path, bytes: &[u8], sync: bool) -> std::io::Result<()> {
    let tmp = path.with_extension("wip");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    if sync {
        f.sync_all()?;
    }
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Syncs `dir`'s directory entry so a rename/unlink survives a crash.
/// Best-effort: not every filesystem supports fsync on directories.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

// ---------------------------------------------------------------------
// Segment fingerprints.
// ---------------------------------------------------------------------

/// Identity of one segment file as of sidecar-write time: its exact
/// length plus a CRC over its first and last bytes. Any event that
/// invalidates a sidecar — crash truncation, compaction replacing the
/// file, a different segment reusing the id — changes the length or
/// the tail (every block ends in its own CRC, so the final bytes are
/// effectively a digest of the whole write history).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SegFingerprint {
    pub len: u64,
    pub crc: u32,
}

/// How many tail bytes participate in the fingerprint CRC.
const FINGERPRINT_TAIL: usize = 64;

/// Fingerprints the segment file at `path` (head + tail read only —
/// never the whole file; that is the point of the sidecar).
pub(crate) fn fingerprint_file(path: &Path) -> std::io::Result<SegFingerprint> {
    use std::io::{Seek, SeekFrom};
    let mut f = File::open(path)?;
    let len = f.metadata()?.len();
    let head_len = (len as usize).min(crate::format::FILE_HEADER_LEN);
    let mut head = vec![0u8; head_len];
    f.read_exact(&mut head)?;
    let tail_len = (len as usize).min(FINGERPRINT_TAIL);
    let mut tail = vec![0u8; tail_len];
    f.seek(SeekFrom::End(-(tail_len as i64)))?;
    f.read_exact(&mut tail)?;
    head.extend_from_slice(&tail);
    Ok(SegFingerprint {
        len,
        crc: crc32(&head),
    })
}

// ---------------------------------------------------------------------
// seg-<id>.idx — block offset index.
// ---------------------------------------------------------------------

/// The persisted form of a sealed segment's in-memory block index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SegSidecar {
    pub fingerprint: SegFingerprint,
    pub events: u64,
    pub bytes: u64,
    pub entries: Vec<BlockEntry>,
}

impl SegSidecar {
    /// Serializes and atomically writes the sidecar for segment `id`.
    pub fn save(&self, dir: &Path, id: u64) -> std::io::Result<()> {
        let mut w = SidecarWriter::new(SEG_MAGIC);
        w.u64(self.fingerprint.len);
        w.u32(self.fingerprint.crc);
        w.u64(self.events);
        w.u64(self.bytes);
        w.u64(self.entries.len() as u64);
        for e in &self.entries {
            w.u32(e.node);
            w.u64(e.first_window);
            w.u64(e.last_window);
            w.u64(e.offset);
            w.u32(e.len);
        }
        write_atomic(&seg_sidecar_path(dir, id), &w.finish(), false)
    }

    /// Loads segment `id`'s sidecar. `None` when absent, damaged, or
    /// not matching `expect` (the fingerprint of the current file) —
    /// all of which mean "rebuild from the segment".
    pub fn load(dir: &Path, id: u64, expect: SegFingerprint) -> Option<Self> {
        let bytes = std::fs::read(seg_sidecar_path(dir, id)).ok()?;
        let mut r = SidecarReader::open(&bytes, SEG_MAGIC)?;
        let fingerprint = SegFingerprint {
            len: r.u64()?,
            crc: r.u32()?,
        };
        if fingerprint != expect {
            return None;
        }
        let events = r.u64()?;
        let bytes_ = r.u64()?;
        let n = r.u64()?;
        // Each entry is 32 bytes on disk; bound the allocation by what
        // the verified buffer can actually hold.
        if n.checked_mul(32)? > bytes.len() as u64 {
            return None;
        }
        let mut entries = Vec::with_capacity(n as usize);
        for _ in 0..n {
            entries.push(BlockEntry {
                node: r.u32()?,
                first_window: r.u64()?,
                last_window: r.u64()?,
                offset: r.u64()?,
                len: r.u32()?,
            });
        }
        if !r.done() {
            return None;
        }
        Some(Self {
            fingerprint,
            events,
            bytes: bytes_,
            entries,
        })
    }
}

// ---------------------------------------------------------------------
// knn.idx — persisted coarse quantizer (+ optional PQ refinement).
// ---------------------------------------------------------------------

/// Product-quantization half of the k-NN sidecar.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PqSidecar {
    /// Subquantizer count (`dim % m == 0`).
    pub m: u32,
    /// `m × 256 × (dim/m)` centroid table, subquantizer-major.
    pub codebooks: Vec<f64>,
    /// `n × m` codes, vector-major.
    pub codes: Vec<u8>,
}

/// The persisted form of a [`SignatureIndex`](crate::SignatureIndex)
/// coarse quantizer: centroids plus each stored vector's list
/// assignment (inverted lists are rebuilt from the assignments during
/// load — the vectors themselves come from one store scan).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct KnnSidecar {
    /// [`SignatureStore::fingerprint`](crate::SignatureStore::fingerprint)
    /// of the store the index was built from.
    pub fingerprint: u64,
    /// Distance code (matches `Distance::code`).
    pub distance: u8,
    pub dim: u32,
    /// `nlist × dim` centroids, list-major.
    pub centroids: Vec<f64>,
    /// Per stored vector (in store scan order): its inverted list.
    pub assign: Vec<u32>,
    pub pq: Option<PqSidecar>,
}

impl KnnSidecar {
    /// Serializes and atomically writes the k-NN sidecar.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = SidecarWriter::new(KNN_MAGIC);
        w.u64(self.fingerprint);
        w.u8(self.distance);
        w.u32(self.dim);
        let nlist = if self.dim == 0 {
            0
        } else {
            (self.centroids.len() / self.dim as usize) as u32
        };
        w.u32(nlist);
        for &c in &self.centroids {
            w.f64(c);
        }
        w.u64(self.assign.len() as u64);
        for &a in &self.assign {
            w.u32(a);
        }
        match &self.pq {
            None => w.u32(0),
            Some(pq) => {
                w.u32(pq.m);
                for &c in &pq.codebooks {
                    w.f64(c);
                }
                w.buf.extend_from_slice(&pq.codes);
            }
        }
        write_atomic(&knn_sidecar_path(dir), &w.finish(), false)
    }

    /// Loads the k-NN sidecar. `None` when absent, damaged, or built
    /// from a different store state / distance / dimension.
    pub fn load(dir: &Path, fingerprint: u64, distance: u8, dim: u32) -> Option<Self> {
        let bytes = std::fs::read(knn_sidecar_path(dir)).ok()?;
        let mut r = SidecarReader::open(&bytes, KNN_MAGIC)?;
        if r.u64()? != fingerprint || r.u8()? != distance || r.u32()? != dim || dim == 0 {
            return None;
        }
        let nlist = r.u32()?;
        let centroids = r.f64_vec((nlist as usize).checked_mul(dim as usize)?)?;
        let n = r.u64()? as usize;
        if n.checked_mul(4)? > bytes.len() {
            return None;
        }
        let mut assign = Vec::with_capacity(n);
        for _ in 0..n {
            let a = r.u32()?;
            if a >= nlist {
                return None;
            }
            assign.push(a);
        }
        let m = r.u32()?;
        let pq = if m == 0 {
            None
        } else {
            if !dim.is_multiple_of(m) {
                return None;
            }
            let dsub = (dim / m) as usize;
            let codebooks = r.f64_vec((m as usize).checked_mul(256)?.checked_mul(dsub)?)?;
            let codes = r.take(n.checked_mul(m as usize)?)?.to_vec();
            Some(PqSidecar {
                m,
                codebooks,
                codes,
            })
        };
        if !r.done() {
            return None;
        }
        Some(Self {
            fingerprint,
            distance,
            dim,
            centroids,
            assign,
            pq,
        })
    }
}

// ---------------------------------------------------------------------
// compact-<id>.intent — the compaction commit record.
// ---------------------------------------------------------------------

/// Write-ahead record of one compaction commit: fsynced before the
/// merge temporary is renamed over `seg-<output>.cws`, deleted after
/// the duplicate inputs are gone. See [`recover_compaction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CompactionIntent {
    /// Output segment id (always the smallest input id, so compaction
    /// preserves id-order = age-order for drop-oldest retention).
    pub output: u64,
    /// All input segment ids (including `output`).
    pub inputs: Vec<u64>,
}

impl CompactionIntent {
    /// Durably writes the intent record (file and directory synced).
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = SidecarWriter::new(INTENT_MAGIC);
        w.u64(self.output);
        w.u32(self.inputs.len() as u32);
        for &id in &self.inputs {
            w.u64(id);
        }
        write_atomic(&intent_path(dir, self.output), &w.finish(), true)?;
        sync_dir(dir);
        Ok(())
    }

    /// Parses an intent file's bytes; `None` when torn or damaged
    /// (a torn intent can only predate the rename, so rollback is safe).
    pub fn parse(bytes: &[u8]) -> Option<Self> {
        let mut r = SidecarReader::open(bytes, INTENT_MAGIC)?;
        let output = r.u64()?;
        let count = r.u32()? as usize;
        if count.checked_mul(8)? > bytes.len() {
            return None;
        }
        let mut inputs = Vec::with_capacity(count);
        for _ in 0..count {
            inputs.push(r.u64()?);
        }
        if !r.done() || !inputs.contains(&output) {
            return None;
        }
        Some(Self { output, inputs })
    }
}

/// What [`recover_compaction`] found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CompactionRecovery {
    /// Commits rolled forward (rename had landed; duplicate inputs removed).
    pub rolled_forward: usize,
    /// Commits rolled back (merge temporary discarded; inputs intact).
    pub rolled_back: usize,
    /// Orphaned merge temporaries and stale sidecars removed.
    pub orphans_removed: usize,
}

/// Replays or rolls back interrupted compactions in `dir`, then sweeps
/// orphaned temporaries and sidecars. Run before segments are scanned:
///
/// * valid intent + temporary present → the rename never happened;
///   **roll back** (delete the temporary; the inputs are untouched).
/// * valid intent + temporary gone → the rename landed; **roll
///   forward** (delete the non-output inputs, which now duplicate the
///   merged segment's events, and the output's stale index sidecar).
/// * torn intent → it was never fully synced, so the rename (which
///   strictly follows the sync) cannot have happened; delete it and
///   any temporary.
/// * temporary without intent → a merge died mid-write; delete it.
/// * `.idx`/`.wip` without a matching `.cws` → stale cache; delete it.
pub(crate) fn recover_compaction(dir: &Path) -> std::io::Result<CompactionRecovery> {
    let mut report = CompactionRecovery::default();
    let mut intents: Vec<PathBuf> = Vec::new();
    let mut tmps: Vec<PathBuf> = Vec::new();
    let mut cws_ids: Vec<u64> = Vec::new();
    let mut idx_files: Vec<(u64, PathBuf)> = Vec::new();
    let mut wips: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("compact-") && name.ends_with(".intent") {
            intents.push(path);
        } else if name.starts_with("compact-") && name.ends_with(".tmp") {
            tmps.push(path);
        } else if name.ends_with(".wip") {
            wips.push(path);
        } else if let Some(id) = parse_seg_name(name, ".cws") {
            cws_ids.push(id);
        } else if let Some(id) = parse_seg_name(name, ".idx") {
            idx_files.push((id, path));
        }
    }

    for intent_file in &intents {
        let bytes = std::fs::read(intent_file)?;
        match CompactionIntent::parse(&bytes) {
            Some(intent) => {
                let tmp = compact_tmp_path(dir, intent.output);
                if tmp.exists() {
                    remove_if_exists(&tmp)?;
                    report.rolled_back += 1;
                } else {
                    for &id in &intent.inputs {
                        if id != intent.output {
                            remove_if_exists(&crate::store::segment_path(dir, id))?;
                            cws_ids.retain(|&c| c != id);
                        }
                        remove_if_exists(&seg_sidecar_path(dir, id))?;
                    }
                    report.rolled_forward += 1;
                }
            }
            None => {
                // Torn intent: strictly precedes the rename, so the
                // temporary (if any) is discardable and inputs are whole.
                remove_if_exists(&compact_tmp_path_for(intent_file))?;
                report.orphans_removed += 1;
            }
        }
        remove_if_exists(intent_file)?;
    }
    for tmp in &tmps {
        if tmp.exists() {
            remove_if_exists(tmp)?;
            report.orphans_removed += 1;
        }
    }
    for wip in &wips {
        remove_if_exists(wip)?;
        report.orphans_removed += 1;
    }
    for (id, idx) in &idx_files {
        if !cws_ids.contains(id) {
            remove_if_exists(idx)?;
            report.orphans_removed += 1;
        }
    }
    if report.rolled_forward > 0 || report.rolled_back > 0 || report.orphans_removed > 0 {
        sync_dir(dir);
    }
    Ok(report)
}

/// `seg-<id><suffix>` → id.
fn parse_seg_name(name: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// The merge temporary belonging to an intent file path (by name), for
/// torn intents whose body cannot be parsed.
fn compact_tmp_path_for(intent: &Path) -> PathBuf {
    intent.with_extension("tmp")
}

/// Removes `path`, treating "already gone" as success.
pub(crate) fn remove_if_exists(path: &Path) -> std::io::Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cws-sidecar-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entries() -> Vec<BlockEntry> {
        (0..5)
            .map(|i| BlockEntry {
                node: i,
                first_window: i as u64 * 10,
                last_window: i as u64 * 10 + 9,
                offset: 32 + i as u64 * 100,
                len: 100,
            })
            .collect()
    }

    #[test]
    fn seg_sidecar_roundtrip_and_fingerprint_gate() {
        let dir = tmpdir("segidx");
        let fp = SegFingerprint {
            len: 532,
            crc: 0xDEAD,
        };
        let sc = SegSidecar {
            fingerprint: fp,
            events: 42,
            bytes: 532,
            entries: entries(),
        };
        sc.save(&dir, 3).unwrap();
        assert_eq!(SegSidecar::load(&dir, 3, fp), Some(sc.clone()));
        // Wrong fingerprint (the segment changed): sidecar is ignored.
        let other = SegFingerprint {
            len: 533,
            crc: 0xDEAD,
        };
        assert_eq!(SegSidecar::load(&dir, 3, other), None);
        // Any flipped byte: ignored, never an error.
        let path = seg_sidecar_path(&dir, 3);
        let orig = std::fs::read(&path).unwrap();
        for i in 0..orig.len() {
            let mut bad = orig.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert_eq!(SegSidecar::load(&dir, 3, fp), None, "flip at {i} accepted");
        }
        // Truncations too.
        for cut in [0, 1, 9, orig.len() - 1] {
            std::fs::write(&path, &orig[..cut]).unwrap();
            assert_eq!(SegSidecar::load(&dir, 3, fp), None, "cut at {cut} accepted");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn knn_sidecar_roundtrip_with_and_without_pq() {
        let dir = tmpdir("knnidx");
        for pq in [
            None,
            Some(PqSidecar {
                m: 2,
                codebooks: (0..2 * 256 * 2).map(|i| i as f64 * 0.5).collect(),
                codes: (0..6u8).collect(),
            }),
        ] {
            let sc = KnnSidecar {
                fingerprint: 77,
                distance: 1,
                dim: 4,
                centroids: (0..8).map(|i| i as f64).collect(),
                assign: vec![0, 1, 1],
                pq,
            };
            sc.save(&dir).unwrap();
            assert_eq!(KnnSidecar::load(&dir, 77, 1, 4), Some(sc));
            // Stale fingerprint / wrong distance / wrong dim: ignored.
            assert_eq!(KnnSidecar::load(&dir, 78, 1, 4), None);
            assert_eq!(KnnSidecar::load(&dir, 77, 0, 4), None);
            assert_eq!(KnnSidecar::load(&dir, 77, 1, 8), None);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_content_changes() {
        let dir = tmpdir("fp");
        let path = dir.join("seg-00000001.cws");
        std::fs::write(&path, vec![7u8; 500]).unwrap();
        let a = fingerprint_file(&path).unwrap();
        assert_eq!(a.len, 500);
        // Same length, different tail byte → different fingerprint.
        let mut bytes = vec![7u8; 500];
        bytes[499] = 8;
        std::fs::write(&path, &bytes).unwrap();
        let b = fingerprint_file(&path).unwrap();
        assert_ne!(a, b);
        // Different length → different fingerprint.
        std::fs::write(&path, vec![7u8; 501]).unwrap();
        assert_ne!(fingerprint_file(&path).unwrap(), a);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_rolls_back_when_tmp_survives() {
        let dir = tmpdir("rollback");
        std::fs::write(crate::store::segment_path(&dir, 1), b"seg1").unwrap();
        std::fs::write(crate::store::segment_path(&dir, 2), b"seg2").unwrap();
        CompactionIntent {
            output: 1,
            inputs: vec![1, 2],
        }
        .save(&dir)
        .unwrap();
        std::fs::write(compact_tmp_path(&dir, 1), b"partial merge").unwrap();
        let report = recover_compaction(&dir).unwrap();
        assert_eq!(report.rolled_back, 1);
        assert_eq!(report.rolled_forward, 0);
        // Inputs intact, temporary and intent gone.
        assert!(crate::store::segment_path(&dir, 1).exists());
        assert!(crate::store::segment_path(&dir, 2).exists());
        assert!(!compact_tmp_path(&dir, 1).exists());
        assert!(!intent_path(&dir, 1).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_rolls_forward_when_rename_landed() {
        let dir = tmpdir("rollfwd");
        // Post-rename state: merged seg-1 present, duplicate seg-2/3
        // still on disk, intent present, no temporary.
        std::fs::write(crate::store::segment_path(&dir, 1), b"merged").unwrap();
        std::fs::write(crate::store::segment_path(&dir, 2), b"dup").unwrap();
        std::fs::write(crate::store::segment_path(&dir, 3), b"dup").unwrap();
        std::fs::write(seg_sidecar_path(&dir, 1), b"stale idx").unwrap();
        std::fs::write(seg_sidecar_path(&dir, 2), b"stale idx").unwrap();
        CompactionIntent {
            output: 1,
            inputs: vec![1, 2, 3],
        }
        .save(&dir)
        .unwrap();
        let report = recover_compaction(&dir).unwrap();
        assert_eq!(report.rolled_forward, 1);
        assert!(crate::store::segment_path(&dir, 1).exists());
        assert!(!crate::store::segment_path(&dir, 2).exists());
        assert!(!crate::store::segment_path(&dir, 3).exists());
        // Stale sidecars of every input are gone too.
        assert!(!seg_sidecar_path(&dir, 1).exists());
        assert!(!seg_sidecar_path(&dir, 2).exists());
        assert!(!intent_path(&dir, 1).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_sweeps_orphans_and_torn_intents() {
        let dir = tmpdir("orphans");
        std::fs::write(crate::store::segment_path(&dir, 5), b"seg").unwrap();
        // Orphan tmp (no intent), torn intent, orphan idx, stray wip.
        std::fs::write(compact_tmp_path(&dir, 9), b"half a merge").unwrap();
        std::fs::write(intent_path(&dir, 7), b"torn").unwrap();
        std::fs::write(compact_tmp_path(&dir, 7), b"half a merge").unwrap();
        std::fs::write(seg_sidecar_path(&dir, 4), b"idx for missing seg").unwrap();
        std::fs::write(dir.join("knn.wip"), b"torn sidecar write").unwrap();
        let report = recover_compaction(&dir).unwrap();
        assert_eq!(report.rolled_back + report.rolled_forward, 0);
        assert!(report.orphans_removed >= 4);
        assert!(crate::store::segment_path(&dir, 5).exists());
        assert!(!compact_tmp_path(&dir, 9).exists());
        assert!(!compact_tmp_path(&dir, 7).exists());
        assert!(!intent_path(&dir, 7).exists());
        assert!(!seg_sidecar_path(&dir, 4).exists());
        assert!(!dir.join("knn.wip").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn intent_torn_at_every_byte_parses_as_none_or_original() {
        let intent = CompactionIntent {
            output: 2,
            inputs: vec![2, 3, 4],
        };
        let mut w = SidecarWriter::new(INTENT_MAGIC);
        w.u64(intent.output);
        w.u32(intent.inputs.len() as u32);
        for &id in &intent.inputs {
            w.u64(id);
        }
        let bytes = w.finish();
        assert_eq!(CompactionIntent::parse(&bytes), Some(intent));
        for cut in 0..bytes.len() {
            assert_eq!(
                CompactionIntent::parse(&bytes[..cut]),
                None,
                "torn intent at {cut} parsed"
            );
        }
    }
}
