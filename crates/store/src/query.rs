//! k-NN similarity search over stored signatures.
//!
//! The paper positions CS signatures as a compressed representation that
//! still supports downstream analytics; the most direct one is *nearest
//! historical state* lookup — "when did any node last look like this?" —
//! the entry point for root-cause analysis. [`SignatureIndex`] snapshots
//! a [`SignatureStore`] into a flat in-memory matrix and answers k-NN
//! queries two ways:
//!
//! * [`SignatureIndex::query`] — exact scan, the ground truth;
//! * [`SignatureIndex::query_indexed`] — a coarse-quantizer inverted-list
//!   index (k-means over signature space; queries scan only the
//!   `nprobe` nearest cells), sublinear in practice once the corpus
//!   outgrows a few thousand signatures. With
//!   [`SignatureIndex::with_pq`] trained, the scan inside each probed
//!   cell runs over `m`-byte product-quantization codes via an ADC
//!   (asymmetric distance computation) lookup table, and only the
//!   best ADC candidates are re-ranked with exact distances — at a
//!   million signatures the first pass touches megabytes instead of
//!   the half-gigabyte of raw `f64` rows.
//!
//! Both distances are supported by preprocessing rows once at build
//! time: [`Distance::L2`] keeps raw features, [`Distance::Pearson`]
//! z-scores each vector to unit norm so squared Euclidean distance
//! becomes an exact monotone image of `1 − r` — one scan loop serves
//! both metrics, and the coarse quantizer clusters in whichever space
//! the index was built for.
//!
//! Training is deterministic and, past 64k vectors, runs on a strided
//! sample (the final assignment pass still covers every row). Trained
//! quantizers persist in the store directory's `knn.idx` sidecar
//! ([`SignatureIndex::with_coarse_persisted`]), keyed by the store's
//! [`fingerprint`](SignatureStore::fingerprint) — a warm reopen loads
//! centroids, assignments and PQ codes instead of re-clustering.

use crate::error::{Result, StoreError};
use crate::sidecar::{KnnSidecar, PqSidecar};
use crate::store::SignatureStore;

/// Lloyd-iteration training sample cap: past this many rows, k-means
/// (coarse and PQ alike) trains on an evenly strided sample. The final
/// assignment / encoding passes still cover every row, so only the
/// centroid fitting — not the index contents — is sampled.
const TRAIN_SAMPLE_CAP: usize = 1 << 16;

/// The ADC first pass keeps `max(k × RERANK_FACTOR, RERANK_MIN)`
/// candidates for the exact re-ranking pass.
const RERANK_FACTOR: usize = 8;

/// Floor of the re-rank pool, so small `k` still re-ranks a healthy set.
const RERANK_MIN: usize = 64;

/// Similarity metric between signature feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Distance {
    /// Euclidean distance over `[re..., im...]` features.
    #[default]
    L2,
    /// `1 − Pearson(a, b)`: shape similarity, invariant to affine
    /// scaling of a signature. Pearson correlation is undefined for a
    /// constant (zero-variance) vector; by convention such a vector maps
    /// to the origin of the normalized space, reading distance `0.5` to
    /// any genuine signature and `0.0` to another constant vector.
    Pearson,
}

impl Distance {
    /// Stable on-disk tag for the `knn.idx` sidecar.
    pub(crate) fn code(self) -> u8 {
        match self {
            Distance::L2 => 0,
            Distance::Pearson => 1,
        }
    }
}

/// One k-NN result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Node whose stream emitted the matching signature.
    pub node: u32,
    /// Window index of the matching signature on that node's stream.
    pub window_index: u64,
    /// Distance to the query under the index's metric.
    pub distance: f64,
}

/// The trained coarse quantizer: centroids plus inverted lists.
#[derive(Debug)]
struct Coarse {
    nlist: usize,
    /// `nlist × dim`, in the index's preprocessed space.
    centroids: Vec<f64>,
    /// `lists[c]` holds the row ids assigned to centroid `c`.
    lists: Vec<Vec<u32>>,
}

/// Product-quantization layer: every row compressed to `m` bytes.
#[derive(Debug)]
struct Pq {
    /// Subquantizer count; divides the feature dimension.
    m: usize,
    /// `dim / m` — features per subquantizer.
    dsub: usize,
    /// `m × 256 × dsub`, subquantizer-major. When the corpus holds
    /// fewer than 256 rows the unused codewords stay at their seeded
    /// values and codes simply never reference them.
    codebooks: Vec<f64>,
    /// `n × m`, vector-major.
    codes: Vec<u8>,
}

/// Index of the nearest of `k` centroids (each `dim` wide) to `row`.
/// Ties resolve to the lowest index, so the result is a pure function
/// of the inputs.
fn nearest(row: &[f64], centroids: &[f64], k: usize, dim: usize) -> u32 {
    let mut best = (f64::INFINITY, 0u32);
    for c in 0..k {
        let d = sq_dist(row, &centroids[c * dim..(c + 1) * dim]);
        if d < best.0 {
            best = (d, c as u32);
        }
    }
    best.1
}

/// An immutable k-NN index over a snapshot of a [`SignatureStore`].
///
/// # Example
///
/// ```
/// use cwsmooth_core::cs::CsSignature;
/// use cwsmooth_data::WindowSpec;
/// use cwsmooth_store::{Distance, SignatureIndex, SignatureStore, StoreConfig};
///
/// let dir = std::env::temp_dir().join(format!("cws-knn-doc-{}", std::process::id()));
/// let spec = WindowSpec::new(30, 10).unwrap();
/// let mut store = SignatureStore::open(&dir, spec, 2, StoreConfig::default()).unwrap();
/// for w in 0..32u64 {
///     let x = w as f64 / 31.0;
///     let sig = CsSignature { re: vec![x, 1.0 - x], im: vec![0.01 * x, 0.0] };
///     store.push(0, w, &sig).unwrap();
/// }
/// store.flush().unwrap();
///
/// let index = SignatureIndex::build(&store, Distance::L2).unwrap();
/// let nearest = index.query(&[0.5, 0.5, 0.005, 0.0], 3).unwrap();
/// assert_eq!(nearest.len(), 3);
/// assert!(nearest[0].distance <= nearest[1].distance);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct SignatureIndex {
    distance: Distance,
    dim: usize,
    /// Preprocessed rows, `n × dim`.
    vecs: Vec<f64>,
    keys: Vec<(u32, u64)>,
    coarse: Option<Coarse>,
    pq: Option<Pq>,
    /// `true` when the quantizer was adopted from a `knn.idx` sidecar
    /// instead of trained in this process.
    cached: bool,
}

/// Preprocesses one vector for the chosen metric (see module docs).
fn preprocess(distance: Distance, src: &[f64], dst: &mut [f64]) {
    match distance {
        Distance::L2 => dst.copy_from_slice(src),
        Distance::Pearson => {
            let n = src.len() as f64;
            let mean = src.iter().sum::<f64>() / n;
            let var = src.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n;
            if var <= f64::EPSILON * mean.abs().max(1.0) {
                dst.fill(0.0);
            } else {
                // Unit-norm z-scores: ‖za − zb‖² = 2(1 − r).
                let inv = 1.0 / (var * n).sqrt();
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = (s - mean) * inv;
                }
            }
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Maps an internal squared distance back to the reported metric value.
fn report(distance: Distance, sq: f64) -> f64 {
    match distance {
        Distance::L2 => sq.max(0.0).sqrt(),
        Distance::Pearson => (sq / 2.0).clamp(0.0, 2.0),
    }
}

impl SignatureIndex {
    /// Snapshots every event currently readable from `store` (including
    /// the staged tail) into an index for `distance` queries.
    pub fn build(store: &SignatureStore, distance: Distance) -> Result<Self> {
        let dim = store.dim();
        let mut vecs: Vec<f64> = Vec::new();
        let mut keys: Vec<(u32, u64)> = Vec::new();
        let mut row = vec![0.0; dim];
        store.for_each(|node, window, features| {
            preprocess(distance, features, &mut row);
            vecs.extend_from_slice(&row);
            keys.push((node, window));
        })?;
        Ok(Self {
            distance,
            dim,
            vecs,
            keys,
            coarse: None,
            pq: None,
            cached: false,
        })
    }

    /// Trains the coarse quantizer: k-means with `nlist` centroids
    /// (clamped to the corpus size) for `iters` Lloyd iterations.
    /// Deterministic: initial centroids are evenly spaced rows, empty
    /// clusters are re-seeded with the point farthest from its centroid.
    /// Past 64k rows the Lloyd iterations run on an evenly strided
    /// sample — training cost stays flat in corpus size while the final
    /// assignment pass still covers every row.
    pub fn with_coarse(mut self, nlist: usize, iters: usize) -> Result<Self> {
        let n = self.keys.len();
        if nlist == 0 {
            return Err(StoreError::Invalid("nlist must be >= 1".into()));
        }
        if n == 0 {
            return Err(StoreError::Invalid(
                "cannot train a quantizer on an empty index".into(),
            ));
        }
        let nlist = nlist.min(n);
        let dim = self.dim;
        // Lloyd iterations cost O(sample × nlist × dim); past the cap,
        // extra rows barely move the centroids but keep burning CPU.
        let step = n.div_ceil(TRAIN_SAMPLE_CAP).max(1);
        let sample: Vec<u32> = (0..n).step_by(step).map(|i| i as u32).collect();
        let sn = sample.len();
        let mut centroids = vec![0.0; nlist * dim];
        for c in 0..nlist {
            let src = sample[(c * sn / nlist).min(sn - 1)] as usize;
            centroids[c * dim..(c + 1) * dim].copy_from_slice(self.row(src));
        }
        let mut assign = vec![0u32; sn];
        for _ in 0..iters.max(1) {
            // Assignment pass (over the training sample).
            for (si, a) in assign.iter_mut().enumerate() {
                *a = nearest(self.row(sample[si] as usize), &centroids, nlist, dim);
            }
            // Update pass.
            centroids.fill(0.0);
            let mut counts = vec![0u64; nlist];
            for (si, &a) in assign.iter().enumerate() {
                counts[a as usize] += 1;
                let dst = &mut centroids[a as usize * dim..(a as usize + 1) * dim];
                for (d, &v) in dst.iter_mut().zip(self.row(sample[si] as usize)) {
                    *d += v;
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for d in &mut centroids[c * dim..(c + 1) * dim] {
                        *d *= inv;
                    }
                }
            }
            // Re-seed dead centroids with the worst-fit sample points —
            // each with a *distinct* point, or several dead cells would
            // collapse onto identical centroids and one of them would
            // stay empty forever.
            let mut taken: Vec<usize> = Vec::new();
            for c in 0..nlist {
                if counts[c] == 0 {
                    let dist_of = |si: usize| {
                        let ca = assign[si] as usize;
                        sq_dist(
                            self.row(sample[si] as usize),
                            &centroids[ca * dim..(ca + 1) * dim],
                        )
                    };
                    let far = (0..sn)
                        .filter(|si| !taken.contains(si))
                        .max_by(|&a, &b| dist_of(a).total_cmp(&dist_of(b)));
                    let Some(far) = far else { break };
                    taken.push(far);
                    let row = self.row(sample[far] as usize).to_vec();
                    centroids[c * dim..(c + 1) * dim].copy_from_slice(&row);
                    // Claim the point so the final assignment (and any
                    // later dead-cell scan this pass) sees it owned here.
                    assign[far] = c as u32;
                }
            }
        }
        // Final assignment → inverted lists. Every row, not just the
        // training sample.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for i in 0..n {
            let best = nearest(self.row(i), &centroids, nlist, dim);
            lists[best as usize].push(i as u32);
        }
        self.coarse = Some(Coarse {
            nlist,
            centroids,
            lists,
        });
        Ok(self)
    }

    /// Trains `m` 8-bit product-quantization subquantizers over the
    /// preprocessed rows and encodes every row, enabling the ADC first
    /// pass in [`SignatureIndex::query_indexed`]: probed inverted lists
    /// are scanned through a per-query distance lookup table over
    /// `m`-byte codes, and only the best candidates are re-ranked with
    /// exact distances. Requires a trained coarse quantizer; `m` must
    /// divide the feature dimension.
    pub fn with_pq(mut self, m: usize, iters: usize) -> Result<Self> {
        if self.coarse.is_none() {
            return Err(StoreError::Invalid(
                "train the coarse quantizer (with_coarse) before with_pq".into(),
            ));
        }
        let n = self.keys.len();
        if m == 0 || m > self.dim || !self.dim.is_multiple_of(m) {
            return Err(StoreError::Invalid(format!(
                "pq m = {m} must divide the feature dimension {}",
                self.dim
            )));
        }
        let dsub = self.dim / m;
        let ksub = n.min(256);
        let step = n.div_ceil(TRAIN_SAMPLE_CAP).max(1);
        let sample: Vec<u32> = (0..n).step_by(step).map(|i| i as u32).collect();
        let sn = sample.len();
        let mut codebooks = vec![0.0; m * 256 * dsub];
        for j in 0..m {
            let book = &mut codebooks[j * 256 * dsub..(j + 1) * 256 * dsub];
            // Seed: evenly spaced sample sub-vectors.
            for c in 0..ksub {
                let src = sample[(c * sn / ksub).min(sn - 1)] as usize;
                book[c * dsub..(c + 1) * dsub]
                    .copy_from_slice(&self.vecs[src * self.dim + j * dsub..][..dsub]);
            }
            for _ in 0..iters.max(1) {
                let mut sums = vec![0.0; ksub * dsub];
                let mut counts = vec![0u64; ksub];
                for &si in &sample {
                    let sub = &self.vecs[si as usize * self.dim + j * dsub..][..dsub];
                    let c = nearest(sub, book, ksub, dsub) as usize;
                    counts[c] += 1;
                    for (d, &v) in sums[c * dsub..(c + 1) * dsub].iter_mut().zip(sub) {
                        *d += v;
                    }
                }
                for c in 0..ksub {
                    // Dead codewords keep their seeded value: with 256
                    // cells per subspace an unused codeword costs
                    // nothing — codes simply never reference it.
                    if counts[c] > 0 {
                        let inv = 1.0 / counts[c] as f64;
                        for (d, &s) in book[c * dsub..(c + 1) * dsub]
                            .iter_mut()
                            .zip(&sums[c * dsub..(c + 1) * dsub])
                        {
                            *d = s * inv;
                        }
                    }
                }
            }
        }
        // Encode every row against the trained codebooks.
        let mut codes = vec![0u8; n * m];
        for i in 0..n {
            let row = self.row(i);
            for j in 0..m {
                let book = &codebooks[j * 256 * dsub..(j + 1) * 256 * dsub];
                codes[i * m + j] = nearest(&row[j * dsub..(j + 1) * dsub], book, ksub, dsub) as u8;
            }
        }
        self.pq = Some(Pq {
            m,
            dsub,
            codebooks,
            codes,
        });
        Ok(self)
    }

    /// [`with_coarse`](Self::with_coarse) — plus
    /// [`with_pq`](Self::with_pq) when `pq_m` is set — backed by the
    /// store's `knn.idx` sidecar. When a sidecar matches the store's
    /// current [`fingerprint`](SignatureStore::fingerprint), the
    /// index's metric and geometry, and the requested quantizer shape,
    /// the trained quantizer is adopted from it instead of
    /// re-clustering (see [`SignatureIndex::quantizer_cached`]).
    /// Otherwise training runs as usual and the sidecar is (re)written.
    /// A stale, damaged or missing sidecar is never an error — at worst
    /// it costs one retraining.
    pub fn with_coarse_persisted(
        mut self,
        store: &SignatureStore,
        nlist: usize,
        iters: usize,
        pq_m: Option<usize>,
    ) -> Result<Self> {
        let fingerprint = store.fingerprint();
        if self.try_load_quantizer(store, fingerprint, nlist, pq_m) {
            self.cached = true;
            return Ok(self);
        }
        self = self.with_coarse(nlist, iters)?;
        if let Some(m) = pq_m {
            self = self.with_pq(m, iters)?;
        }
        self.save_quantizer(store, fingerprint);
        Ok(self)
    }

    /// Attempts to adopt the store's `knn.idx` sidecar; `true` when the
    /// coarse quantizer (and PQ, if requested) were installed from it.
    fn try_load_quantizer(
        &mut self,
        store: &SignatureStore,
        fingerprint: u64,
        nlist: usize,
        pq_m: Option<usize>,
    ) -> bool {
        let n = self.keys.len();
        if n == 0 || self.dim == 0 {
            return false;
        }
        let Some(sc) = KnnSidecar::load(
            store.dir(),
            fingerprint,
            self.distance.code(),
            self.dim as u32,
        ) else {
            return false;
        };
        let want_nlist = nlist.min(n);
        let have_nlist = sc.centroids.len() / self.dim;
        if have_nlist != want_nlist || sc.assign.len() != n {
            return false;
        }
        let pq = match pq_m {
            None => None,
            Some(m) => {
                let Some(p) = &sc.pq else { return false };
                if p.m as usize != m || m > self.dim || !self.dim.is_multiple_of(m) {
                    return false;
                }
                let dsub = self.dim / m;
                if p.codebooks.len() != m * 256 * dsub || p.codes.len() != n * m {
                    return false;
                }
                Some(Pq {
                    m,
                    dsub,
                    codebooks: p.codebooks.clone(),
                    codes: p.codes.clone(),
                })
            }
        };
        // `load` validated every assignment against the centroid count.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); have_nlist];
        for (i, &a) in sc.assign.iter().enumerate() {
            lists[a as usize].push(i as u32);
        }
        self.coarse = Some(Coarse {
            nlist: have_nlist,
            centroids: sc.centroids,
            lists,
        });
        self.pq = pq;
        true
    }

    /// Best-effort write of the trained quantizer to the store's
    /// `knn.idx` sidecar; failing to persist never fails the build.
    fn save_quantizer(&self, store: &SignatureStore, fingerprint: u64) {
        let Some(coarse) = &self.coarse else { return };
        let mut assign = vec![0u32; self.keys.len()];
        for (c, list) in coarse.lists.iter().enumerate() {
            for &i in list {
                assign[i as usize] = c as u32;
            }
        }
        let pq = self.pq.as_ref().map(|p| PqSidecar {
            m: p.m as u32,
            codebooks: p.codebooks.clone(),
            codes: p.codes.clone(),
        });
        let sc = KnnSidecar {
            fingerprint,
            distance: self.distance.code(),
            dim: self.dim as u32,
            centroids: coarse.centroids.clone(),
            assign,
            pq,
        };
        let _ = sc.save(store.dir());
    }

    fn row(&self, i: usize) -> &[f64] {
        &self.vecs[i * self.dim..(i + 1) * self.dim]
    }

    /// Number of indexed signatures.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The metric this index answers.
    pub fn distance(&self) -> Distance {
        self.distance
    }

    /// `true` once [`SignatureIndex::with_coarse`] has trained the
    /// inverted-list quantizer.
    pub fn has_coarse(&self) -> bool {
        self.coarse.is_some()
    }

    /// `true` once [`SignatureIndex::with_pq`] has trained the
    /// product-quantization layer.
    pub fn has_pq(&self) -> bool {
        self.pq.is_some()
    }

    /// `true` when the quantizer was adopted from a matching `knn.idx`
    /// sidecar by [`SignatureIndex::with_coarse_persisted`] instead of
    /// being trained in this process.
    pub fn quantizer_cached(&self) -> bool {
        self.cached
    }

    fn check_query(&self, signature: &[f64], k: usize) -> Result<()> {
        if signature.len() != self.dim {
            return Err(StoreError::Invalid(format!(
                "query has {} features, index holds {}-dimensional signatures",
                signature.len(),
                self.dim
            )));
        }
        if k == 0 {
            return Err(StoreError::Invalid("k must be >= 1".into()));
        }
        Ok(())
    }

    /// Exact k-NN: scans every indexed signature. `signature` is a flat
    /// `[re..., im...]` feature vector (see
    /// [`CsSignature::to_features`](cwsmooth_core::cs::CsSignature::to_features)).
    /// Returns up to `k` neighbors, nearest first.
    pub fn query(&self, signature: &[f64], k: usize) -> Result<Vec<Neighbor>> {
        self.check_query(signature, k)?;
        let mut q = vec![0.0; self.dim];
        preprocess(self.distance, signature, &mut q);
        let mut hits: Vec<(f64, u32)> = (0..self.keys.len())
            .map(|i| (sq_dist(&q, self.row(i)), i as u32))
            .collect();
        Ok(self.take_top(hits.as_mut_slice(), k))
    }

    /// Approximate k-NN through the coarse quantizer: ranks the
    /// centroids by distance to the query and scans only the `nprobe`
    /// nearest inverted lists. Errors if [`SignatureIndex::with_coarse`]
    /// has not been called.
    pub fn query_indexed(
        &self,
        signature: &[f64],
        k: usize,
        nprobe: usize,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(signature, k)?;
        let coarse = self.coarse.as_ref().ok_or_else(|| {
            StoreError::Invalid("no coarse quantizer trained; call with_coarse first".into())
        })?;
        if nprobe == 0 {
            return Err(StoreError::Invalid("nprobe must be >= 1".into()));
        }
        let mut q = vec![0.0; self.dim];
        preprocess(self.distance, signature, &mut q);
        let dim = self.dim;
        let mut cells: Vec<(f64, u32)> = (0..coarse.nlist)
            .map(|c| {
                (
                    sq_dist(&q, &coarse.centroids[c * dim..(c + 1) * dim]),
                    c as u32,
                )
            })
            .collect();
        let probes = nprobe.min(coarse.nlist);
        // Ties on centroid distance resolve by cell id, so the probed
        // set is a defined function of the query, not of partitioning
        // order.
        cells.select_nth_unstable_by(probes - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut hits: Vec<(f64, u32)> = Vec::new();
        if let Some(pq) = &self.pq {
            // ADC first pass: one table of squared distances from each
            // query sub-vector to every codeword, then probed lists are
            // scanned over m-byte codes — table lookups and adds only,
            // no touch of the raw rows.
            let (m, dsub) = (pq.m, pq.dsub);
            let mut table = vec![0.0; m * 256];
            for j in 0..m {
                let qs = &q[j * dsub..(j + 1) * dsub];
                for c in 0..256 {
                    table[j * 256 + c] = sq_dist(qs, &pq.codebooks[(j * 256 + c) * dsub..][..dsub]);
                }
            }
            let mut cand: Vec<(f64, u32)> = Vec::new();
            for &(_, cell) in &cells[..probes] {
                for &i in &coarse.lists[cell as usize] {
                    let code = &pq.codes[i as usize * m..(i as usize + 1) * m];
                    let d: f64 = code
                        .iter()
                        .enumerate()
                        .map(|(j, &cc)| table[j * 256 + cc as usize])
                        .sum();
                    cand.push((d, i));
                }
            }
            // Keep a pool well past k for the exact re-rank; quantization
            // error rarely pushes a true neighbor that far down. The cut
            // tie-breaks by key so which candidates survive — and thus
            // the final answer — is independent of list layout.
            let keep = (k * RERANK_FACTOR).max(RERANK_MIN).min(cand.len());
            if keep > 0 && keep < cand.len() {
                cand.select_nth_unstable_by(keep - 1, |a, b| {
                    a.0.total_cmp(&b.0)
                        .then_with(|| self.keys[a.1 as usize].cmp(&self.keys[b.1 as usize]))
                });
                cand.truncate(keep);
            }
            // Exact re-rank of the surviving pool.
            hits.extend(
                cand.iter()
                    .map(|&(_, i)| (sq_dist(&q, self.row(i as usize)), i)),
            );
        } else {
            for &(_, c) in &cells[..probes] {
                for &i in &coarse.lists[c as usize] {
                    hits.push((sq_dist(&q, self.row(i as usize)), i));
                }
            }
        }
        Ok(self.take_top(hits.as_mut_slice(), k))
    }

    /// Selects the `k` smallest hits, sorted ascending, as neighbors.
    ///
    /// Results follow a deterministic *total* order on
    /// `(distance, node, window)`: equal-distance neighbors are ranked
    /// by key, not by internal row id, and the same tie-break drives the
    /// top-k selection itself — so when a tie group straddles the k-th
    /// position, which of its members survive is pinned down too,
    /// independent of corpus layout (segment order, flush timing).
    fn take_top(&self, hits: &mut [(f64, u32)], k: usize) -> Vec<Neighbor> {
        let k = k.min(hits.len());
        if k == 0 {
            return Vec::new();
        }
        let by_key = |a: &(f64, u32), b: &(f64, u32)| {
            a.0.total_cmp(&b.0)
                .then_with(|| self.keys[a.1 as usize].cmp(&self.keys[b.1 as usize]))
        };
        if k < hits.len() {
            hits.select_nth_unstable_by(k - 1, by_key);
        }
        let top = &mut hits[..k];
        top.sort_unstable_by(by_key);
        top.iter()
            .map(|&(sq, i)| {
                let (node, window_index) = self.keys[i as usize];
                Neighbor {
                    node,
                    window_index,
                    distance: report(self.distance, sq),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use cwsmooth_core::cs::CsSignature;
    use cwsmooth_data::WindowSpec;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cwsmooth-knn-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Deterministic pseudo-random corpus with two tight clusters.
    fn seeded_store(dir: &PathBuf, n_per: usize) -> SignatureStore {
        let spec = WindowSpec::new(30, 10).unwrap();
        let mut store = SignatureStore::open(dir, spec, 2, StoreConfig::default()).unwrap();
        for w in 0..n_per as u64 {
            let t = w as f64 * 0.37;
            let a = CsSignature {
                re: vec![0.2 + 0.02 * t.sin(), 0.3 + 0.02 * t.cos()],
                im: vec![0.01 * t.sin(), -0.01 * t.cos()],
            };
            let b = CsSignature {
                re: vec![0.8 + 0.02 * (t + 1.0).sin(), 0.7 + 0.02 * (t + 1.0).cos()],
                im: vec![-0.01 * (t + 1.0).sin(), 0.01 * (t + 1.0).cos()],
            };
            store.push(0, w, &a).unwrap();
            store.push(1, w, &b).unwrap();
        }
        store.flush().unwrap();
        store
    }

    #[test]
    fn exact_query_finds_itself_and_its_cluster() {
        let dir = tmpdir("self");
        let store = seeded_store(&dir, 50);
        for distance in [Distance::L2, Distance::Pearson] {
            let index = SignatureIndex::build(&store, distance).unwrap();
            assert_eq!(index.len(), 100);
            let q = [0.2 + 0.02 * 0f64.sin(), 0.3 + 0.02 * 0f64.cos(), 0.0, -0.01];
            let hits = index.query(&q, 5).unwrap();
            assert_eq!(hits.len(), 5);
            // Entire result set comes from the matching cluster.
            assert!(hits.iter().all(|h| h.node == 0), "{distance:?}: {hits:?}");
            assert!(hits[0].distance <= hits[4].distance);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pearson_is_scale_invariant_l2_is_not() {
        let dir = tmpdir("scale");
        let store = seeded_store(&dir, 20);
        let l2 = SignatureIndex::build(&store, Distance::L2).unwrap();
        let pe = SignatureIndex::build(&store, Distance::Pearson).unwrap();
        // A stored vector, affinely rescaled.
        let base = [0.2, 0.3, 0.0, -0.01];
        let scaled: Vec<f64> = base.iter().map(|v| 10.0 * v + 3.0).collect();
        let p_hit = &pe.query(&scaled, 1).unwrap()[0];
        assert!(
            p_hit.distance < 0.05,
            "pearson sees through scaling: {p_hit:?}"
        );
        let l_hit = &l2.query(&scaled, 1).unwrap()[0];
        assert!(l_hit.distance > 1.0, "l2 does not: {l_hit:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn constant_vector_pearson_convention() {
        let dir = tmpdir("const");
        let store = seeded_store(&dir, 5);
        let pe = SignatureIndex::build(&store, Distance::Pearson).unwrap();
        // Undefined correlation reads the documented mid-scale distance.
        let flat = [0.4; 4];
        let hits = pe.query(&flat, 3).unwrap();
        for h in hits {
            assert!((h.distance - 0.5).abs() < 1e-9, "{h:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn indexed_query_matches_exact_on_clustered_data() {
        let dir = tmpdir("ivf");
        let store = seeded_store(&dir, 100);
        let index = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse(8, 10)
            .unwrap();
        assert!(index.has_coarse());
        let mut top1_hits = 0usize;
        let mut recall_sum = 0.0;
        let queries = 40usize;
        for qi in 0..queries {
            let t = qi as f64 * 0.37;
            let q = [
                0.2 + 0.02 * t.sin(),
                0.3 + 0.02 * t.cos(),
                0.01 * t.sin(),
                -0.01 * t.cos(),
            ];
            let exact = index.query(&q, 10).unwrap();
            let approx = index.query_indexed(&q, 10, 3).unwrap();
            if approx[0] == exact[0] {
                top1_hits += 1;
            }
            let exact_set: Vec<(u32, u64)> =
                exact.iter().map(|h| (h.node, h.window_index)).collect();
            let found = approx
                .iter()
                .filter(|h| exact_set.contains(&(h.node, h.window_index)))
                .count();
            recall_sum += found as f64 / exact.len() as f64;
        }
        assert_eq!(top1_hits, queries, "top-1 must always match exact scan");
        assert!(recall_sum / queries as f64 >= 0.9);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Equal-distance neighbors must come back in `(distance, node,
    /// window)` order, including *which* members of a tie group survive a
    /// truncating k — regardless of ingest order.
    #[test]
    fn duplicated_signatures_break_ties_by_node_then_window() {
        let dir = tmpdir("ties");
        let spec = WindowSpec::new(30, 10).unwrap();
        let mut store = SignatureStore::open(&dir, spec, 2, StoreConfig::default()).unwrap();
        let dup = CsSignature {
            re: vec![0.5, 0.5],
            im: vec![0.0, 0.0],
        };
        let far = CsSignature {
            re: vec![0.9, 0.1],
            im: vec![0.1, -0.1],
        };
        // The same signature lands on several (node, window) keys, pushed
        // in an order that differs from the key order; node 1 also holds
        // a distinct non-tied signature between its duplicates.
        store.push(2, 5, &dup).unwrap();
        store.push(0, 3, &dup).unwrap();
        store.push(1, 1, &dup).unwrap();
        store.push(1, 2, &far).unwrap();
        store.push(1, 7, &dup).unwrap();
        store.push(0, 9, &dup).unwrap();
        store.flush().unwrap();

        let index = SignatureIndex::build(&store, Distance::L2).unwrap();
        let q = [0.5, 0.5, 0.0, 0.0];
        let hits = index.query(&q, 6).unwrap();
        let keys: Vec<(u32, u64)> = hits.iter().map(|h| (h.node, h.window_index)).collect();
        assert_eq!(
            keys,
            vec![(0, 3), (0, 9), (1, 1), (1, 7), (2, 5), (1, 2)],
            "exact duplicates sorted by (node, window), non-tie last"
        );
        assert!(hits[..5].iter().all(|h| h.distance == 0.0));
        // A truncating k keeps the *smallest* keys of the tie group.
        let top3 = index.query(&q, 3).unwrap();
        let keys3: Vec<(u32, u64)> = top3.iter().map(|h| (h.node, h.window_index)).collect();
        assert_eq!(keys3, vec![(0, 3), (0, 9), (1, 1)]);
        // The coarse-quantized path obeys the same order.
        let index = index.with_coarse(2, 5).unwrap();
        let approx = index.query_indexed(&q, 3, 2).unwrap();
        let keys_a: Vec<(u32, u64)> = approx.iter().map(|h| (h.node, h.window_index)).collect();
        assert_eq!(keys_a, keys3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pq_query_matches_exact_on_clustered_data() {
        let dir = tmpdir("pq");
        let store = seeded_store(&dir, 100);
        let index = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse(8, 10)
            .unwrap()
            .with_pq(2, 8)
            .unwrap();
        assert!(index.has_pq());
        let mut recall_sum = 0.0;
        let queries = 40usize;
        for qi in 0..queries {
            let t = qi as f64 * 0.37;
            let q = [
                0.2 + 0.02 * t.sin(),
                0.3 + 0.02 * t.cos(),
                0.01 * t.sin(),
                -0.01 * t.cos(),
            ];
            let exact = index.query(&q, 10).unwrap();
            let approx = index.query_indexed(&q, 10, 3).unwrap();
            assert_eq!(
                approx[0], exact[0],
                "exact re-ranking must preserve the top hit"
            );
            let exact_set: Vec<(u32, u64)> =
                exact.iter().map(|h| (h.node, h.window_index)).collect();
            let found = approx
                .iter()
                .filter(|h| exact_set.contains(&(h.node, h.window_index)))
                .count();
            recall_sum += found as f64 / exact.len() as f64;
        }
        assert!(
            recall_sum / queries as f64 >= 0.9,
            "recall@10 = {}",
            recall_sum / queries as f64
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pq_validation() {
        let dir = tmpdir("pqval");
        let store = seeded_store(&dir, 10);
        let index = SignatureIndex::build(&store, Distance::L2).unwrap();
        // PQ needs the coarse quantizer first.
        assert!(index.with_pq(2, 3).is_err());
        let index = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse(4, 5)
            .unwrap();
        // m must divide dim = 4.
        assert!(index.with_pq(3, 3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persisted_quantizer_roundtrips_and_detects_staleness() {
        let dir = tmpdir("persist");
        let mut store = seeded_store(&dir, 100);

        // Cold build: trains and writes the sidecar.
        let cold = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse_persisted(&store, 8, 10, Some(2))
            .unwrap();
        assert!(!cold.quantizer_cached());
        assert!(crate::sidecar::knn_sidecar_path(store.dir()).exists());

        // Warm build: adopts the sidecar, answers bit-identically.
        let warm = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse_persisted(&store, 8, 10, Some(2))
            .unwrap();
        assert!(warm.quantizer_cached() && warm.has_coarse() && warm.has_pq());
        for qi in 0..20 {
            let t = qi as f64 * 0.41;
            let q = [0.5 + 0.3 * t.sin(), 0.5 - 0.3 * t.cos(), 0.0, 0.01 * t];
            assert_eq!(
                cold.query_indexed(&q, 10, 3).unwrap(),
                warm.query_indexed(&q, 10, 3).unwrap(),
            );
        }

        // A coarse-only request against the PQ-bearing sidecar still
        // loads — the PQ part is simply not adopted — and, being a
        // cache hit, leaves the sidecar untouched.
        let coarse_only = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse_persisted(&store, 8, 10, None)
            .unwrap();
        assert!(coarse_only.quantizer_cached() && !coarse_only.has_pq());

        // Requesting a different shape ignores the cache and rewrites
        // the sidecar in the new shape.
        let reshaped = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse_persisted(&store, 4, 10, None)
            .unwrap();
        assert!(!reshaped.quantizer_cached());
        let full = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse_persisted(&store, 8, 10, Some(2))
            .unwrap();
        assert!(!full.quantizer_cached() && full.has_pq());

        // New data moves the store fingerprint: the sidecar is stale and
        // training runs again.
        let sig = CsSignature {
            re: vec![0.42, 0.58],
            im: vec![0.0, 0.0],
        };
        store.push(3, 900, &sig).unwrap();
        store.flush().unwrap();
        let stale = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse_persisted(&store, 8, 10, Some(2))
            .unwrap();
        assert!(!stale.quantizer_cached());
        // A distance mismatch also misses the cache.
        let other = SignatureIndex::build(&store, Distance::Pearson)
            .unwrap()
            .with_coarse_persisted(&store, 8, 10, None)
            .unwrap();
        assert!(!other.quantizer_cached());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_validation_and_edge_cases() {
        let dir = tmpdir("edge");
        let store = seeded_store(&dir, 3);
        let index = SignatureIndex::build(&store, Distance::L2).unwrap();
        assert!(index.query(&[0.0; 3], 1).is_err());
        assert!(index.query(&[0.0; 4], 0).is_err());
        assert!(index.query_indexed(&[0.0; 4], 1, 1).is_err()); // no coarse yet
                                                                // k larger than the corpus truncates.
        assert_eq!(index.query(&[0.0; 4], 100).unwrap().len(), 6);
        let index = index.with_coarse(64, 5).unwrap(); // nlist clamped to n
        assert!(index.query_indexed(&[0.0; 4], 2, 0).is_err());
        let all = index.query_indexed(&[0.0; 4], 6, 64).unwrap();
        assert_eq!(all.len(), 6); // probing every cell == exact
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_index_is_usable_but_untrainable() {
        let dir = tmpdir("empty");
        let spec = WindowSpec::new(30, 10).unwrap();
        let store = SignatureStore::open(&dir, spec, 2, StoreConfig::default()).unwrap();
        let index = SignatureIndex::build(&store, Distance::L2).unwrap();
        assert!(index.is_empty());
        assert_eq!(index.query(&[0.0; 4], 3).unwrap(), vec![]);
        assert!(index.with_coarse(4, 5).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
