//! k-NN similarity search over stored signatures.
//!
//! The paper positions CS signatures as a compressed representation that
//! still supports downstream analytics; the most direct one is *nearest
//! historical state* lookup — "when did any node last look like this?" —
//! the entry point for root-cause analysis. [`SignatureIndex`] snapshots
//! a [`SignatureStore`] into a flat in-memory matrix and answers k-NN
//! queries two ways:
//!
//! * [`SignatureIndex::query`] — exact scan, the ground truth;
//! * [`SignatureIndex::query_indexed`] — a coarse-quantizer inverted-list
//!   index (k-means over signature space; queries scan only the
//!   `nprobe` nearest cells), sublinear in practice once the corpus
//!   outgrows a few thousand signatures.
//!
//! Both distances are supported by preprocessing rows once at build
//! time: [`Distance::L2`] keeps raw features, [`Distance::Pearson`]
//! z-scores each vector to unit norm so squared Euclidean distance
//! becomes an exact monotone image of `1 − r` — one scan loop serves
//! both metrics, and the coarse quantizer clusters in whichever space
//! the index was built for.

use crate::error::{Result, StoreError};
use crate::store::SignatureStore;

/// Similarity metric between signature feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Distance {
    /// Euclidean distance over `[re..., im...]` features.
    #[default]
    L2,
    /// `1 − Pearson(a, b)`: shape similarity, invariant to affine
    /// scaling of a signature. Pearson correlation is undefined for a
    /// constant (zero-variance) vector; by convention such a vector maps
    /// to the origin of the normalized space, reading distance `0.5` to
    /// any genuine signature and `0.0` to another constant vector.
    Pearson,
}

/// One k-NN result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Node whose stream emitted the matching signature.
    pub node: u32,
    /// Window index of the matching signature on that node's stream.
    pub window_index: u64,
    /// Distance to the query under the index's metric.
    pub distance: f64,
}

/// The trained coarse quantizer: centroids plus inverted lists.
#[derive(Debug)]
struct Coarse {
    nlist: usize,
    /// `nlist × dim`, in the index's preprocessed space.
    centroids: Vec<f64>,
    /// `lists[c]` holds the row ids assigned to centroid `c`.
    lists: Vec<Vec<u32>>,
}

/// An immutable k-NN index over a snapshot of a [`SignatureStore`].
///
/// # Example
///
/// ```
/// use cwsmooth_core::cs::CsSignature;
/// use cwsmooth_data::WindowSpec;
/// use cwsmooth_store::{Distance, SignatureIndex, SignatureStore, StoreConfig};
///
/// let dir = std::env::temp_dir().join(format!("cws-knn-doc-{}", std::process::id()));
/// let spec = WindowSpec::new(30, 10).unwrap();
/// let mut store = SignatureStore::open(&dir, spec, 2, StoreConfig::default()).unwrap();
/// for w in 0..32u64 {
///     let x = w as f64 / 31.0;
///     let sig = CsSignature { re: vec![x, 1.0 - x], im: vec![0.01 * x, 0.0] };
///     store.push(0, w, &sig).unwrap();
/// }
/// store.flush().unwrap();
///
/// let index = SignatureIndex::build(&store, Distance::L2).unwrap();
/// let nearest = index.query(&[0.5, 0.5, 0.005, 0.0], 3).unwrap();
/// assert_eq!(nearest.len(), 3);
/// assert!(nearest[0].distance <= nearest[1].distance);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct SignatureIndex {
    distance: Distance,
    dim: usize,
    /// Preprocessed rows, `n × dim`.
    vecs: Vec<f64>,
    keys: Vec<(u32, u64)>,
    coarse: Option<Coarse>,
}

/// Preprocesses one vector for the chosen metric (see module docs).
fn preprocess(distance: Distance, src: &[f64], dst: &mut [f64]) {
    match distance {
        Distance::L2 => dst.copy_from_slice(src),
        Distance::Pearson => {
            let n = src.len() as f64;
            let mean = src.iter().sum::<f64>() / n;
            let var = src.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n;
            if var <= f64::EPSILON * mean.abs().max(1.0) {
                dst.fill(0.0);
            } else {
                // Unit-norm z-scores: ‖za − zb‖² = 2(1 − r).
                let inv = 1.0 / (var * n).sqrt();
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = (s - mean) * inv;
                }
            }
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Maps an internal squared distance back to the reported metric value.
fn report(distance: Distance, sq: f64) -> f64 {
    match distance {
        Distance::L2 => sq.max(0.0).sqrt(),
        Distance::Pearson => (sq / 2.0).clamp(0.0, 2.0),
    }
}

impl SignatureIndex {
    /// Snapshots every event currently readable from `store` (including
    /// the staged tail) into an index for `distance` queries.
    pub fn build(store: &SignatureStore, distance: Distance) -> Result<Self> {
        let dim = store.dim();
        let mut vecs: Vec<f64> = Vec::new();
        let mut keys: Vec<(u32, u64)> = Vec::new();
        let mut row = vec![0.0; dim];
        store.for_each(|node, window, features| {
            preprocess(distance, features, &mut row);
            vecs.extend_from_slice(&row);
            keys.push((node, window));
        })?;
        Ok(Self {
            distance,
            dim,
            vecs,
            keys,
            coarse: None,
        })
    }

    /// Trains the coarse quantizer: k-means with `nlist` centroids
    /// (clamped to the corpus size) for `iters` Lloyd iterations.
    /// Deterministic: initial centroids are evenly spaced rows, empty
    /// clusters are re-seeded with the point farthest from its centroid.
    pub fn with_coarse(mut self, nlist: usize, iters: usize) -> Result<Self> {
        let n = self.keys.len();
        if nlist == 0 {
            return Err(StoreError::Invalid("nlist must be >= 1".into()));
        }
        if n == 0 {
            return Err(StoreError::Invalid(
                "cannot train a quantizer on an empty index".into(),
            ));
        }
        let nlist = nlist.min(n);
        let dim = self.dim;
        let mut centroids = vec![0.0; nlist * dim];
        for c in 0..nlist {
            let src = c * n / nlist;
            centroids[c * dim..(c + 1) * dim].copy_from_slice(self.row(src));
        }
        let mut assign = vec![0u32; n];
        for _ in 0..iters.max(1) {
            // Assignment pass.
            for (i, a) in assign.iter_mut().enumerate() {
                let row = self.row(i);
                let mut best = (f64::INFINITY, 0u32);
                for c in 0..nlist {
                    let d = sq_dist(row, &centroids[c * dim..(c + 1) * dim]);
                    if d < best.0 {
                        best = (d, c as u32);
                    }
                }
                *a = best.1;
            }
            // Update pass.
            centroids.fill(0.0);
            let mut counts = vec![0u64; nlist];
            for (i, &a) in assign.iter().enumerate() {
                counts[a as usize] += 1;
                let dst = &mut centroids[a as usize * dim..(a as usize + 1) * dim];
                for (d, &v) in dst.iter_mut().zip(self.row(i)) {
                    *d += v;
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for d in &mut centroids[c * dim..(c + 1) * dim] {
                        *d *= inv;
                    }
                }
            }
            // Re-seed dead centroids with the worst-fit points — each
            // with a *distinct* point, or several dead cells would
            // collapse onto identical centroids and one of them would
            // stay empty forever.
            let mut taken: Vec<usize> = Vec::new();
            for c in 0..nlist {
                if counts[c] == 0 {
                    let far = (0..n).filter(|i| !taken.contains(i)).max_by(|&a, &b| {
                        let ca = assign[a] as usize;
                        let cb = assign[b] as usize;
                        sq_dist(self.row(a), &centroids[ca * dim..(ca + 1) * dim])
                            .total_cmp(&sq_dist(self.row(b), &centroids[cb * dim..(cb + 1) * dim]))
                    });
                    let Some(far) = far else { break };
                    taken.push(far);
                    let row = self.row(far).to_vec();
                    centroids[c * dim..(c + 1) * dim].copy_from_slice(&row);
                    // Claim the point so the final assignment (and any
                    // later dead-cell scan this pass) sees it owned here.
                    assign[far] = c as u32;
                }
            }
        }
        // Final assignment → inverted lists.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for i in 0..n {
            let row = self.row(i);
            let mut best = (f64::INFINITY, 0usize);
            for c in 0..nlist {
                let d = sq_dist(row, &centroids[c * dim..(c + 1) * dim]);
                if d < best.0 {
                    best = (d, c);
                }
            }
            lists[best.1].push(i as u32);
        }
        self.coarse = Some(Coarse {
            nlist,
            centroids,
            lists,
        });
        Ok(self)
    }

    fn row(&self, i: usize) -> &[f64] {
        &self.vecs[i * self.dim..(i + 1) * self.dim]
    }

    /// Number of indexed signatures.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The metric this index answers.
    pub fn distance(&self) -> Distance {
        self.distance
    }

    /// `true` once [`SignatureIndex::with_coarse`] has trained the
    /// inverted-list quantizer.
    pub fn has_coarse(&self) -> bool {
        self.coarse.is_some()
    }

    fn check_query(&self, signature: &[f64], k: usize) -> Result<()> {
        if signature.len() != self.dim {
            return Err(StoreError::Invalid(format!(
                "query has {} features, index holds {}-dimensional signatures",
                signature.len(),
                self.dim
            )));
        }
        if k == 0 {
            return Err(StoreError::Invalid("k must be >= 1".into()));
        }
        Ok(())
    }

    /// Exact k-NN: scans every indexed signature. `signature` is a flat
    /// `[re..., im...]` feature vector (see
    /// [`CsSignature::to_features`](cwsmooth_core::cs::CsSignature::to_features)).
    /// Returns up to `k` neighbors, nearest first.
    pub fn query(&self, signature: &[f64], k: usize) -> Result<Vec<Neighbor>> {
        self.check_query(signature, k)?;
        let mut q = vec![0.0; self.dim];
        preprocess(self.distance, signature, &mut q);
        let mut hits: Vec<(f64, u32)> = (0..self.keys.len())
            .map(|i| (sq_dist(&q, self.row(i)), i as u32))
            .collect();
        Ok(self.take_top(hits.as_mut_slice(), k))
    }

    /// Approximate k-NN through the coarse quantizer: ranks the
    /// centroids by distance to the query and scans only the `nprobe`
    /// nearest inverted lists. Errors if [`SignatureIndex::with_coarse`]
    /// has not been called.
    pub fn query_indexed(
        &self,
        signature: &[f64],
        k: usize,
        nprobe: usize,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(signature, k)?;
        let coarse = self.coarse.as_ref().ok_or_else(|| {
            StoreError::Invalid("no coarse quantizer trained; call with_coarse first".into())
        })?;
        if nprobe == 0 {
            return Err(StoreError::Invalid("nprobe must be >= 1".into()));
        }
        let mut q = vec![0.0; self.dim];
        preprocess(self.distance, signature, &mut q);
        let dim = self.dim;
        let mut cells: Vec<(f64, u32)> = (0..coarse.nlist)
            .map(|c| {
                (
                    sq_dist(&q, &coarse.centroids[c * dim..(c + 1) * dim]),
                    c as u32,
                )
            })
            .collect();
        let probes = nprobe.min(coarse.nlist);
        // Ties on centroid distance resolve by cell id, so the probed
        // set is a defined function of the query, not of partitioning
        // order.
        cells.select_nth_unstable_by(probes - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut hits: Vec<(f64, u32)> = Vec::new();
        for &(_, c) in &cells[..probes] {
            for &i in &coarse.lists[c as usize] {
                hits.push((sq_dist(&q, self.row(i as usize)), i));
            }
        }
        Ok(self.take_top(hits.as_mut_slice(), k))
    }

    /// Selects the `k` smallest hits, sorted ascending, as neighbors.
    ///
    /// Results follow a deterministic *total* order on
    /// `(distance, node, window)`: equal-distance neighbors are ranked
    /// by key, not by internal row id, and the same tie-break drives the
    /// top-k selection itself — so when a tie group straddles the k-th
    /// position, which of its members survive is pinned down too,
    /// independent of corpus layout (segment order, flush timing).
    fn take_top(&self, hits: &mut [(f64, u32)], k: usize) -> Vec<Neighbor> {
        let k = k.min(hits.len());
        if k == 0 {
            return Vec::new();
        }
        let by_key = |a: &(f64, u32), b: &(f64, u32)| {
            a.0.total_cmp(&b.0)
                .then_with(|| self.keys[a.1 as usize].cmp(&self.keys[b.1 as usize]))
        };
        if k < hits.len() {
            hits.select_nth_unstable_by(k - 1, by_key);
        }
        let top = &mut hits[..k];
        top.sort_unstable_by(by_key);
        top.iter()
            .map(|&(sq, i)| {
                let (node, window_index) = self.keys[i as usize];
                Neighbor {
                    node,
                    window_index,
                    distance: report(self.distance, sq),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use cwsmooth_core::cs::CsSignature;
    use cwsmooth_data::WindowSpec;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cwsmooth-knn-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Deterministic pseudo-random corpus with two tight clusters.
    fn seeded_store(dir: &PathBuf, n_per: usize) -> SignatureStore {
        let spec = WindowSpec::new(30, 10).unwrap();
        let mut store = SignatureStore::open(dir, spec, 2, StoreConfig::default()).unwrap();
        for w in 0..n_per as u64 {
            let t = w as f64 * 0.37;
            let a = CsSignature {
                re: vec![0.2 + 0.02 * t.sin(), 0.3 + 0.02 * t.cos()],
                im: vec![0.01 * t.sin(), -0.01 * t.cos()],
            };
            let b = CsSignature {
                re: vec![0.8 + 0.02 * (t + 1.0).sin(), 0.7 + 0.02 * (t + 1.0).cos()],
                im: vec![-0.01 * (t + 1.0).sin(), 0.01 * (t + 1.0).cos()],
            };
            store.push(0, w, &a).unwrap();
            store.push(1, w, &b).unwrap();
        }
        store.flush().unwrap();
        store
    }

    #[test]
    fn exact_query_finds_itself_and_its_cluster() {
        let dir = tmpdir("self");
        let store = seeded_store(&dir, 50);
        for distance in [Distance::L2, Distance::Pearson] {
            let index = SignatureIndex::build(&store, distance).unwrap();
            assert_eq!(index.len(), 100);
            let q = [0.2 + 0.02 * 0f64.sin(), 0.3 + 0.02 * 0f64.cos(), 0.0, -0.01];
            let hits = index.query(&q, 5).unwrap();
            assert_eq!(hits.len(), 5);
            // Entire result set comes from the matching cluster.
            assert!(hits.iter().all(|h| h.node == 0), "{distance:?}: {hits:?}");
            assert!(hits[0].distance <= hits[4].distance);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pearson_is_scale_invariant_l2_is_not() {
        let dir = tmpdir("scale");
        let store = seeded_store(&dir, 20);
        let l2 = SignatureIndex::build(&store, Distance::L2).unwrap();
        let pe = SignatureIndex::build(&store, Distance::Pearson).unwrap();
        // A stored vector, affinely rescaled.
        let base = [0.2, 0.3, 0.0, -0.01];
        let scaled: Vec<f64> = base.iter().map(|v| 10.0 * v + 3.0).collect();
        let p_hit = &pe.query(&scaled, 1).unwrap()[0];
        assert!(
            p_hit.distance < 0.05,
            "pearson sees through scaling: {p_hit:?}"
        );
        let l_hit = &l2.query(&scaled, 1).unwrap()[0];
        assert!(l_hit.distance > 1.0, "l2 does not: {l_hit:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn constant_vector_pearson_convention() {
        let dir = tmpdir("const");
        let store = seeded_store(&dir, 5);
        let pe = SignatureIndex::build(&store, Distance::Pearson).unwrap();
        // Undefined correlation reads the documented mid-scale distance.
        let flat = [0.4; 4];
        let hits = pe.query(&flat, 3).unwrap();
        for h in hits {
            assert!((h.distance - 0.5).abs() < 1e-9, "{h:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn indexed_query_matches_exact_on_clustered_data() {
        let dir = tmpdir("ivf");
        let store = seeded_store(&dir, 100);
        let index = SignatureIndex::build(&store, Distance::L2)
            .unwrap()
            .with_coarse(8, 10)
            .unwrap();
        assert!(index.has_coarse());
        let mut top1_hits = 0usize;
        let mut recall_sum = 0.0;
        let queries = 40usize;
        for qi in 0..queries {
            let t = qi as f64 * 0.37;
            let q = [
                0.2 + 0.02 * t.sin(),
                0.3 + 0.02 * t.cos(),
                0.01 * t.sin(),
                -0.01 * t.cos(),
            ];
            let exact = index.query(&q, 10).unwrap();
            let approx = index.query_indexed(&q, 10, 3).unwrap();
            if approx[0] == exact[0] {
                top1_hits += 1;
            }
            let exact_set: Vec<(u32, u64)> =
                exact.iter().map(|h| (h.node, h.window_index)).collect();
            let found = approx
                .iter()
                .filter(|h| exact_set.contains(&(h.node, h.window_index)))
                .count();
            recall_sum += found as f64 / exact.len() as f64;
        }
        assert_eq!(top1_hits, queries, "top-1 must always match exact scan");
        assert!(recall_sum / queries as f64 >= 0.9);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Equal-distance neighbors must come back in `(distance, node,
    /// window)` order, including *which* members of a tie group survive a
    /// truncating k — regardless of ingest order.
    #[test]
    fn duplicated_signatures_break_ties_by_node_then_window() {
        let dir = tmpdir("ties");
        let spec = WindowSpec::new(30, 10).unwrap();
        let mut store = SignatureStore::open(&dir, spec, 2, StoreConfig::default()).unwrap();
        let dup = CsSignature {
            re: vec![0.5, 0.5],
            im: vec![0.0, 0.0],
        };
        let far = CsSignature {
            re: vec![0.9, 0.1],
            im: vec![0.1, -0.1],
        };
        // The same signature lands on several (node, window) keys, pushed
        // in an order that differs from the key order; node 1 also holds
        // a distinct non-tied signature between its duplicates.
        store.push(2, 5, &dup).unwrap();
        store.push(0, 3, &dup).unwrap();
        store.push(1, 1, &dup).unwrap();
        store.push(1, 2, &far).unwrap();
        store.push(1, 7, &dup).unwrap();
        store.push(0, 9, &dup).unwrap();
        store.flush().unwrap();

        let index = SignatureIndex::build(&store, Distance::L2).unwrap();
        let q = [0.5, 0.5, 0.0, 0.0];
        let hits = index.query(&q, 6).unwrap();
        let keys: Vec<(u32, u64)> = hits.iter().map(|h| (h.node, h.window_index)).collect();
        assert_eq!(
            keys,
            vec![(0, 3), (0, 9), (1, 1), (1, 7), (2, 5), (1, 2)],
            "exact duplicates sorted by (node, window), non-tie last"
        );
        assert!(hits[..5].iter().all(|h| h.distance == 0.0));
        // A truncating k keeps the *smallest* keys of the tie group.
        let top3 = index.query(&q, 3).unwrap();
        let keys3: Vec<(u32, u64)> = top3.iter().map(|h| (h.node, h.window_index)).collect();
        assert_eq!(keys3, vec![(0, 3), (0, 9), (1, 1)]);
        // The coarse-quantized path obeys the same order.
        let index = index.with_coarse(2, 5).unwrap();
        let approx = index.query_indexed(&q, 3, 2).unwrap();
        let keys_a: Vec<(u32, u64)> = approx.iter().map(|h| (h.node, h.window_index)).collect();
        assert_eq!(keys_a, keys3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_validation_and_edge_cases() {
        let dir = tmpdir("edge");
        let store = seeded_store(&dir, 3);
        let index = SignatureIndex::build(&store, Distance::L2).unwrap();
        assert!(index.query(&[0.0; 3], 1).is_err());
        assert!(index.query(&[0.0; 4], 0).is_err());
        assert!(index.query_indexed(&[0.0; 4], 1, 1).is_err()); // no coarse yet
                                                                // k larger than the corpus truncates.
        assert_eq!(index.query(&[0.0; 4], 100).unwrap().len(), 6);
        let index = index.with_coarse(64, 5).unwrap(); // nlist clamped to n
        assert!(index.query_indexed(&[0.0; 4], 2, 0).is_err());
        let all = index.query_indexed(&[0.0; 4], 6, 64).unwrap();
        assert_eq!(all.len(), 6); // probing every cell == exact
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_index_is_usable_but_untrainable() {
        let dir = tmpdir("empty");
        let spec = WindowSpec::new(30, 10).unwrap();
        let store = SignatureStore::open(&dir, spec, 2, StoreConfig::default()).unwrap();
        let index = SignatureIndex::build(&store, Distance::L2).unwrap();
        assert!(index.is_empty());
        assert_eq!(index.query(&[0.0; 4], 3).unwrap(), vec![]);
        assert!(index.with_coarse(4, 5).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
