//! Read-only memory-mapped views of sealed segment files.
//!
//! Queries over sealed segments used to re-open and re-read the file
//! per call; at a million signatures that is the dominant cost. A
//! [`SegmentView`] maps the file once and hands out `&[u8]` straight
//! into the page cache — zero-copy reads with no per-query I/O.
//!
//! No external crates: on Unix targets `std` already links the platform
//! libc, so the two syscall wrappers needed (`mmap`, `munmap`) are
//! declared here directly. Everywhere else — or when the mapping fails,
//! or when `CWS_STORE_NO_MMAP=1` forces it — the view transparently
//! falls back to reading the whole file into a heap buffer. Callers
//! cannot tell the difference: both paths expose the same `&[u8]`.
//!
//! Safety model: mappings are `PROT_READ` + `MAP_PRIVATE`, so the view
//! is immutable and unaffected by other *writers'* in-memory state. The
//! store only maps **sealed** segments, which are never modified in
//! place (compaction replaces them via atomic rename, and the old inode
//! stays alive under the mapping until unmapped), so the bytes behind
//! the slice are stable for the view's lifetime.

use std::fs::File;
use std::io::Read;
use std::path::Path;

/// `CWS_STORE_NO_MMAP=1` disables mapping globally (heap fallback) —
/// an escape hatch for filesystems where mmap misbehaves, and the lever
/// the tests use to pin both paths byte-identical.
pub const NO_MMAP_ENV: &str = "CWS_STORE_NO_MMAP";

#[cfg(unix)]
mod sys {
    //! Minimal raw bindings for the two calls used. Signatures match
    //! POSIX; `std` links libc on every Unix target, so these resolve
    //! without adding a dependency.
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        /// POSIX `mmap(2)`.
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        /// POSIX `munmap(2)`.
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

enum Backing {
    /// File bytes read into memory — portable fallback.
    Heap(Vec<u8>),
    /// A live `mmap` region (unix only). Unmapped on drop.
    #[cfg(unix)]
    Map {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
}

/// An immutable byte view of one sealed segment file.
pub struct SegmentView {
    backing: Backing,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE over a sealed file the
// store never modifies in place, so the region is plain immutable
// memory — sharing the pointer across threads is no different from
// sharing a `&[u8]` into a leaked buffer. The heap variant is a Vec.
unsafe impl Send for SegmentView {}
// SAFETY: as above — all access is through `&self` returning `&[u8]`
// into immutable pages; there is no interior mutability.
unsafe impl Sync for SegmentView {}

impl SegmentView {
    /// Opens `path` as a read-only view: mmap where available, heap
    /// bytes otherwise. Mapping failure is not an error — it degrades
    /// to the heap path.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let allow_mmap = std::env::var(NO_MMAP_ENV).map_or(true, |v| v != "1");
        Self::open_with(path, allow_mmap)
    }

    /// [`SegmentView::open`] with the mmap/heap decision explicit —
    /// `allow_mmap: false` always takes the heap path (what the env
    /// switch forces, without the global state).
    pub fn open_with(path: &Path, allow_mmap: bool) -> std::io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "segment larger than the address space",
            ));
        }
        let want_mmap = allow_mmap && len > 0;
        #[cfg(unix)]
        if want_mmap {
            if let Some(view) = Self::try_map(&file, len as usize) {
                return Ok(view);
            }
        }
        let _ = want_mmap; // non-unix: only the heap path exists
        let mut bytes = Vec::with_capacity(len as usize);
        file.read_to_end(&mut bytes)?;
        Ok(Self {
            backing: Backing::Heap(bytes),
        })
    }

    #[cfg(unix)]
    fn try_map(file: &File, len: usize) -> Option<Self> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is a valid open file for the duration of the call;
        // len > 0 (checked by the caller); PROT_READ + MAP_PRIVATE asks
        // for an immutable copy-on-write view, which cannot alias any
        // Rust-visible mutable state. MAP_FAILED (-1) is checked below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return None;
        }
        Some(Self {
            backing: Backing::Map { ptr, len },
        })
    }

    /// The file's bytes. Borrowing from the view keeps the mapping (or
    /// buffer) alive.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            Backing::Heap(v) => v,
            #[cfg(unix)]
            Backing::Map { ptr, len } => {
                // SAFETY: ptr/len delimit a live PROT_READ mapping owned
                // by self (unmapped only in Drop), and the underlying
                // sealed file is never written in place, so the region
                // is valid, initialized, immutable memory for &self's
                // lifetime.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
        }
    }

    /// Whether this view is an actual mapping (false: heap fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            Backing::Heap(_) => false,
            #[cfg(unix)]
            Backing::Map { .. } => true,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Heap(v) => v.len(),
            #[cfg(unix)]
            Backing::Map { len, .. } => *len,
        }
    }

    /// True when the underlying file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for SegmentView {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Map { ptr, len } = self.backing {
            // SAFETY: ptr/len came from a successful mmap in try_map
            // and are unmapped exactly once, here. No slice borrowed
            // from the view can outlive self.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

impl std::fmt::Debug for SegmentView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentView")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("cws-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn mapped_and_heap_views_agree() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let path = tmp("agree", &data);
        let view = SegmentView::open(&path).unwrap();
        assert_eq!(view.bytes(), &data[..]);
        #[cfg(unix)]
        assert!(view.is_mapped());
        // Forced heap path sees the same bytes.
        let heap = SegmentView::open_with(&path, false).unwrap();
        assert!(!heap.is_mapped());
        assert_eq!(heap.bytes(), view.bytes());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_is_a_valid_empty_view() {
        let path = tmp("empty", &[]);
        let view = SegmentView::open(&path).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn view_is_send_and_sync() {
        fn takes<T: Send + Sync>() {}
        takes::<SegmentView>();
    }
}
