//! Public `.cws` block codec for transports and sidecar files.
//!
//! The segment file format lives in the private `format` module; this
//! module re-packages its header and block primitives behind a
//! [`BlockCodec`] handle so other crates (notably `cwsmooth-net`, which
//! frames blocks over sockets, and its spill queue) can encode and decode
//! individual `.cws` blocks without going through a
//! [`SignatureStore`](crate::SignatureStore). The byte layout is exactly
//! the on-disk one —
//! a stream of codec-encoded blocks prefixed by [`BlockCodec::header_bytes`]
//! is a valid `.cws` segment file.
//!
//! Inputs that do not come from a file still need a location for error
//! reports; decoding errors here carry the synthetic path `<codec>`.

use crate::error::{Result, StoreError};
use crate::format::{self, Encoding, FileHeader};
use cwsmooth_data::WindowSpec;
use std::path::Path;

/// Length in bytes of the serialized geometry header
/// ([`BlockCodec::header_bytes`]).
pub const HEADER_LEN: usize = format::FILE_HEADER_LEN;

/// Synthetic path used in `Corrupt` errors for non-file inputs.
const CODEC_PATH: &str = "<codec>";

/// Stream geometry (encoding mode, signature length, window spec) plus
/// the block encode/decode entry points that depend on it.
///
/// Two codecs are equal exactly when their byte streams are
/// interchangeable, which is what a transport handshake needs to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCodec {
    header: FileHeader,
}

impl BlockCodec {
    /// Creates a codec for signatures of `l` complex components encoded
    /// as `mode`, produced by windows of geometry `spec`.
    pub fn new(mode: Encoding, l: usize, spec: WindowSpec) -> Result<Self> {
        if l == 0 || l > format::MAX_L as usize {
            return Err(StoreError::Invalid(format!(
                "signature block count {l} outside 1..={}",
                format::MAX_L
            )));
        }
        if spec.wl == 0
            || spec.ws == 0
            || spec.wl > u32::MAX as usize
            || spec.ws > u32::MAX as usize
        {
            return Err(StoreError::Invalid(format!(
                "window spec {}x{} does not fit the header",
                spec.wl, spec.ws
            )));
        }
        Ok(Self {
            header: FileHeader::current(mode, l as u32, spec.wl as u32, spec.ws as u32),
        })
    }

    /// Value encoding mode.
    pub fn mode(&self) -> Encoding {
        self.header.mode
    }

    /// Signature block count `l` (signatures hold `2l` values).
    pub fn l(&self) -> usize {
        self.header.l as usize
    }

    /// Values per signature (`2l`).
    pub fn dim(&self) -> usize {
        2 * self.header.l as usize
    }

    /// Window geometry the signatures were computed over.
    pub fn spec(&self) -> WindowSpec {
        WindowSpec {
            wl: self.header.wl as usize,
            ws: self.header.ws as usize,
        }
    }

    /// Serializes the versioned geometry header — magic, version, mode,
    /// `l`, window spec, CRC — exactly as written at the start of every
    /// `.cws` segment file. Always [`HEADER_LEN`] bytes.
    pub fn header_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN);
        self.header.write_to(&mut out);
        out
    }

    /// Parses and validates a geometry header produced by
    /// [`BlockCodec::header_bytes`] (equivalently: a `.cws` file header).
    /// Errors carry the synthetic path `<codec>`.
    pub fn parse_header(bytes: &[u8]) -> Result<Self> {
        let header = FileHeader::parse(bytes, Path::new(CODEC_PATH))?;
        Ok(Self { header })
    }

    /// Encodes one block — `node`'s signatures over the strictly
    /// increasing `windows`, values event-major `[re..., im...]` with
    /// `windows.len() * 2l` entries — and appends it to `out`. The bytes
    /// are exactly what a store with this geometry would write.
    pub fn encode_block(
        &self,
        out: &mut Vec<u8>,
        node: u32,
        windows: &[u64],
        values: &[f64],
    ) -> Result<()> {
        format::encode_block(out, &self.header, node, windows, values)
    }

    /// Decodes a single block occupying exactly `bytes` (as produced by
    /// [`BlockCodec::encode_block`]), appending its window axis to
    /// `windows` and its values to `values` (`count * 2l` entries).
    /// Returns the block's node id. Any damage — truncation, bit flips,
    /// implausible field values, trailing bytes — surfaces
    /// [`StoreError::Corrupt`], never a panic.
    pub fn decode_block(
        &self,
        bytes: &[u8],
        windows: &mut Vec<u64>,
        values: &mut Vec<f64>,
    ) -> Result<u32> {
        let path = Path::new(CODEC_PATH);
        let block = format::parse_block(bytes, 0, &self.header)
            .map_err(|e| e.into_store_error(path))?
            .ok_or_else(|| StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: 0,
                message: "empty block buffer".into(),
            })?;
        if block.end as usize != bytes.len() {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: block.end,
                message: format!(
                    "{} trailing bytes after block end",
                    bytes.len() as u64 - block.end
                ),
            });
        }
        format::decode_block(&block, &self.header, windows, values);
        Ok(block.node)
    }

    /// Decodes the block starting at byte `at` of a multi-block stream
    /// (a headerless `.cws` body). Returns `Ok(None)` at a clean end of
    /// stream (`at == bytes.len()`); otherwise appends the block like
    /// [`BlockCodec::decode_block`] and returns its node id plus the
    /// offset of the next block. Damage anywhere — including truncation
    /// mid-block — is [`StoreError::Corrupt`].
    pub fn decode_block_at(
        &self,
        bytes: &[u8],
        at: usize,
        windows: &mut Vec<u64>,
        values: &mut Vec<f64>,
    ) -> Result<Option<(u32, usize)>> {
        let path = Path::new(CODEC_PATH);
        let Some(block) = format::parse_block(bytes, at as u64, &self.header)
            .map_err(|e| e.into_store_error(path))?
        else {
            return Ok(None);
        };
        format::decode_block(&block, &self.header, windows, values);
        Ok(Some((block.node, block.end as usize)))
    }
}

/// The store's CRC-32 (IEEE) over `bytes` — shared so wire framing uses
/// the same checksum as the on-disk format.
pub fn crc32(bytes: &[u8]) -> u32 {
    crate::crc::crc32(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec(mode: Encoding, l: usize) -> BlockCodec {
        BlockCodec::new(mode, l, WindowSpec { wl: 30, ws: 10 }).unwrap()
    }

    #[test]
    fn header_roundtrip_preserves_geometry() {
        for mode in [Encoding::Exact, Encoding::Quant8, Encoding::Quant16] {
            let c = codec(mode, 5);
            let bytes = c.header_bytes();
            assert_eq!(bytes.len(), HEADER_LEN);
            let back = BlockCodec::parse_header(&bytes).unwrap();
            assert_eq!(back, c);
            assert_eq!(back.mode(), mode);
            assert_eq!(back.l(), 5);
            assert_eq!(back.dim(), 10);
            assert_eq!(back.spec(), WindowSpec { wl: 30, ws: 10 });
        }
    }

    #[test]
    fn block_roundtrip_is_exact() {
        let c = codec(Encoding::Exact, 3);
        let windows = [7u64, 8, 12];
        let values: Vec<f64> = (0..18).map(|i| (i as f64 * 0.31).cos()).collect();
        let mut bytes = Vec::new();
        c.encode_block(&mut bytes, 42, &windows, &values).unwrap();
        let (mut w, mut v) = (Vec::new(), Vec::new());
        let node = c.decode_block(&bytes, &mut w, &mut v).unwrap();
        assert_eq!(node, 42);
        assert_eq!(w, windows);
        assert!(v
            .iter()
            .zip(&values)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let c = codec(Encoding::Exact, 1);
        let mut bytes = Vec::new();
        c.encode_block(&mut bytes, 0, &[1], &[0.5, -0.5]).unwrap();
        bytes.push(0);
        let (mut w, mut v) = (Vec::new(), Vec::new());
        assert!(matches!(
            c.decode_block(&bytes, &mut w, &mut v),
            Err(StoreError::Corrupt { .. })
        ));
        // Empty input is corruption too, not a silent no-op.
        assert!(c.decode_block(&[], &mut w, &mut v).is_err());
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        assert!(BlockCodec::new(Encoding::Exact, 0, WindowSpec { wl: 30, ws: 10 }).is_err());
        assert!(BlockCodec::new(
            Encoding::Exact,
            (format::MAX_L + 1) as usize,
            WindowSpec { wl: 30, ws: 10 }
        )
        .is_err());
    }
}
