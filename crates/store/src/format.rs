//! The `cws` segment file format: append-only, versioned, columnar.
//!
//! A segment file is a 32-byte header followed by any number of *blocks*.
//! Each block holds the signatures one node emitted over a contiguous run
//! of windows — the columnar unit queries seek to. All integers are
//! little-endian; every header and block is CRC-32-guarded so damaged or
//! truncated files surface [`StoreError::Corrupt`] instead of garbage
//! data (or a panic).
//!
//! ```text
//! file   := header block*
//! header := magic[8]="CWSMSIG\x01" version:u16 mode:u8 _:u8
//!           l:u32 wl:u32 ws:u32 _:u32 crc:u32          (32 bytes)
//!
//! v2 block := "CWSB" node:u32 first_window:u64 count:u32
//!           delta_bits:u8                              (21 bytes)
//!           [re_min re_max im_min im_max : f64]        (quant modes only)
//!           deltas[ceil((count-1)*delta_bits/8)]       (bitpacked)
//!           values[count * 2l * sizeof(mode)]          (event-major, re then im)
//!           crc:u32                                    (over block start..values end)
//!
//! v1 block := "CWSB" node:u32 first_window:u64 count:u32
//!           delta_bits:u8 _:[u8;3] payload_len:u32     (28 bytes)
//!           ... same scales/deltas/values/crc as v2
//! ```
//!
//! Window indexes are stored as `first_window` plus bitpacked
//! `delta − 1` values (windows are strictly increasing; on a gapless
//! stream every delta is 1, so `delta_bits = 0` and the axis costs zero
//! bytes). Quantized modes store each value as `u8`/`u16` against the
//! block's per-component min/max scale.
//!
//! Version history: v1 blocks carried 3 padding bytes and a redundant
//! `payload_len` field (fully determined by `count`, `delta_bits` and
//! the file's encoding mode) — 7 dead bytes per block that existed only
//! as a cross-check the CRC already provides. v2 drops them; the reader
//! keeps accepting v1 segments, and the writer always emits the current
//! version.

use crate::crc::crc32;
use crate::error::{Result, StoreError};
use std::path::Path;

/// File magic: "CWSMSIG" + format generation byte.
pub const FILE_MAGIC: [u8; 8] = *b"CWSMSIG\x01";
/// Current format version (what new segments are written as).
pub const FORMAT_VERSION: u16 = 2;
/// Oldest format version the reader still accepts.
pub const MIN_FORMAT_VERSION: u16 = 1;
/// Block magic ("CWSB" on disk).
pub const BLOCK_MAGIC: u32 = u32::from_le_bytes(*b"CWSB");
/// Size of the file header in bytes (identical in every version).
pub const FILE_HEADER_LEN: usize = 32;
/// Size of the fixed v1 block header in bytes (before optional scales).
pub const BLOCK_HEADER_V1_LEN: usize = 28;
/// Size of the fixed v2 block header in bytes: v1 minus the 3 padding
/// bytes and the redundant `payload_len` cross-check field.
pub const BLOCK_HEADER_V2_LEN: usize = 21;

/// Fixed block header length for a format version.
pub(crate) fn block_header_len(version: u16) -> usize {
    if version >= 2 {
        BLOCK_HEADER_V2_LEN
    } else {
        BLOCK_HEADER_V1_LEN
    }
}
/// Largest accepted signature block count `l`. A sanity bound: header
/// CRCs catch accidental damage but are recomputable, so field values
/// must also be plausibility-checked before they size any arithmetic.
pub(crate) const MAX_L: u32 = 1 << 20;
/// Largest accepted per-block event count (blocks are staged in memory
/// before writing; nothing legitimate approaches this).
pub(crate) const MAX_BLOCK_COUNT: u32 = 1 << 24;

/// How signature values are encoded on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Encoding {
    /// `f64` values: lossless, bit-identical round-trips.
    #[default]
    Exact,
    /// `u8` against a per-block min/max scale (~8x smaller than exact).
    Quant8,
    /// `u16` against a per-block min/max scale (~4x smaller than exact).
    Quant16,
}

impl Encoding {
    /// On-disk mode byte.
    pub(crate) fn code(self) -> u8 {
        match self {
            Encoding::Exact => 0,
            Encoding::Quant8 => 1,
            Encoding::Quant16 => 2,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Encoding::Exact),
            1 => Some(Encoding::Quant8),
            2 => Some(Encoding::Quant16),
            _ => None,
        }
    }

    /// Bytes per stored signature value.
    pub fn bytes_per_value(self) -> usize {
        match self {
            Encoding::Exact => 8,
            Encoding::Quant8 => 1,
            Encoding::Quant16 => 2,
        }
    }

    fn qmax(self) -> f64 {
        match self {
            Encoding::Exact => 0.0,
            Encoding::Quant8 => u8::MAX as f64,
            Encoding::Quant16 => u16::MAX as f64,
        }
    }

    fn scales_len(self) -> usize {
        if self == Encoding::Exact {
            0
        } else {
            32
        }
    }
}

/// Parsed segment file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FileHeader {
    /// Format version the file's blocks are laid out as.
    pub version: u16,
    pub mode: Encoding,
    pub l: u32,
    pub wl: u32,
    pub ws: u32,
}

impl FileHeader {
    /// A header for newly written data: current format version.
    pub fn current(mode: Encoding, l: u32, wl: u32, ws: u32) -> Self {
        Self {
            version: FORMAT_VERSION,
            mode,
            l,
            wl,
            ws,
        }
    }

    /// Serializes the header (including its CRC) into `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&FILE_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(self.mode.code());
        out.push(0);
        out.extend_from_slice(&self.l.to_le_bytes());
        out.extend_from_slice(&self.wl.to_le_bytes());
        out.extend_from_slice(&self.ws.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Parses and validates a header from the start of `bytes`.
    pub fn parse(bytes: &[u8], path: &Path) -> Result<Self> {
        let corrupt = |offset: u64, message: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            offset,
            message,
        };
        if bytes.len() < FILE_HEADER_LEN {
            return Err(corrupt(
                bytes.len() as u64,
                format!(
                    "file header truncated ({} of {FILE_HEADER_LEN} bytes)",
                    bytes.len()
                ),
            ));
        }
        if bytes[..8] != FILE_MAGIC {
            return Err(corrupt(0, "bad file magic".into()));
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(corrupt(8, format!("unsupported format version {version}")));
        }
        let stored_crc = read_u32(bytes, 28);
        let actual = crc32(&bytes[..28]);
        if stored_crc != actual {
            return Err(corrupt(
                28,
                format!("header CRC mismatch (stored {stored_crc:08x}, computed {actual:08x})"),
            ));
        }
        let mode = Encoding::from_code(bytes[10])
            .ok_or_else(|| corrupt(10, format!("unknown encoding mode {}", bytes[10])))?;
        let l = read_u32(bytes, 12);
        if l == 0 || l > MAX_L {
            return Err(corrupt(
                12,
                format!("signature block count {l} outside 1..={MAX_L}"),
            ));
        }
        let wl = read_u32(bytes, 16);
        let ws = read_u32(bytes, 20);
        if wl == 0 || ws == 0 {
            return Err(corrupt(16, "zero-length window spec".into()));
        }
        Ok(Self {
            version,
            mode,
            l,
            wl,
            ws,
        })
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    // lint:allow(no-panic-paths): statically infallible — a 4-byte
    // slice always converts to [u8; 4] (bounds are checked upstream).
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    // lint:allow(no-panic-paths): statically infallible — an 8-byte
    // slice always converts to [u8; 8] (bounds are checked upstream).
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

fn read_f64(bytes: &[u8], at: usize) -> f64 {
    // lint:allow(no-panic-paths): statically infallible — an 8-byte
    // slice always converts to [u8; 8] (bounds are checked upstream).
    f64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Bytes the bitpacked delta section occupies.
fn delta_section_len(count: u32, delta_bits: u8) -> usize {
    ((count as usize - 1) * delta_bits as usize).div_ceil(8)
}

/// Smallest bit width that can hold `x`.
fn bits_for(x: u64) -> u8 {
    (64 - x.leading_zeros()) as u8
}

/// Appends `(count-1)` `delta − 1` values to `out`, LSB-first.
fn pack_deltas(out: &mut Vec<u8>, windows: &[u64], bits: u8) {
    if bits == 0 {
        return;
    }
    let mut acc: u64 = 0;
    let mut filled: u32 = 0;
    for pair in windows.windows(2) {
        let v = pair[1] - pair[0] - 1;
        acc |= v << filled;
        filled += bits as u32;
        while filled >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            filled -= 8;
        }
    }
    if filled > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

/// Reads `(count-1)` bitpacked `delta − 1` values and reconstructs the
/// absolute window indexes into `out` (which already holds `first`).
fn unpack_deltas(deltas: &[u8], count: u32, bits: u8, first: u64, out: &mut Vec<u64>) {
    let mut prev = first;
    if bits == 0 {
        for _ in 1..count {
            prev += 1;
            out.push(prev);
        }
        return;
    }
    let mask: u64 = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut acc: u64 = 0;
    let mut filled: u32 = 0;
    let mut at = 0usize;
    for _ in 1..count {
        while filled < bits as u32 {
            acc |= (deltas[at] as u64) << filled;
            at += 1;
            filled += 8;
        }
        let v = acc & mask;
        acc >>= bits;
        filled -= bits as u32;
        prev += v + 1;
        out.push(prev);
    }
}

/// Per-component min/max over an event-major `count × 2l` value buffer.
fn component_ranges(values: &[f64], l: usize) -> [f64; 4] {
    let dim = 2 * l;
    let mut r = [
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ];
    for event in values.chunks_exact(dim) {
        for &v in &event[..l] {
            r[0] = r[0].min(v);
            r[1] = r[1].max(v);
        }
        for &v in &event[l..] {
            r[2] = r[2].min(v);
            r[3] = r[3].max(v);
        }
    }
    r
}

/// Replaces `values` (event-major `count × 2l`) with what they would
/// decode to after a quantized round trip under `mode`: exactly the
/// encode arithmetic (`component_ranges`, then round-and-clamp) followed
/// by the decode arithmetic (`min + q * step`), so a staged buffer read
/// through this matches bit for bit what [`decode_block`] will produce
/// once the same buffer is flushed as one block. No-op for
/// [`Encoding::Exact`]. Errors on non-finite values, mirroring
/// [`encode_block`].
pub(crate) fn requantize(values: &mut [f64], l: usize, mode: Encoding) -> Result<()> {
    if mode == Encoding::Exact || values.is_empty() {
        return Ok(());
    }
    let ranges = component_ranges(values, l);
    if !ranges.iter().all(|v| v.is_finite()) {
        return Err(StoreError::Invalid(
            "signature values must be finite to quantize".into(),
        ));
    }
    let qmax = mode.qmax();
    let scale = |min: f64, max: f64| if max > min { qmax / (max - min) } else { 0.0 };
    let (re_s, im_s) = (scale(ranges[0], ranges[1]), scale(ranges[2], ranges[3]));
    let re_step = (ranges[1] - ranges[0]) / qmax;
    let im_step = (ranges[3] - ranges[2]) / qmax;
    for event in values.chunks_exact_mut(2 * l) {
        let (re, im) = event.split_at_mut(l);
        for v in re {
            let q = ((*v - ranges[0]) * re_s).round().clamp(0.0, qmax);
            *v = ranges[0] + q * re_step;
        }
        for v in im {
            let q = ((*v - ranges[2]) * im_s).round().clamp(0.0, qmax);
            *v = ranges[2] + q * im_step;
        }
    }
    Ok(())
}

/// Encodes one block (header, optional scales, payload, CRC) in the
/// layout of `header.version` and appends it to `out`. `windows` must be
/// strictly increasing and `values` hold `windows.len() * 2l` finite
/// values in event-major `[re..., im...]` order. Performs no allocation
/// beyond growing `out`.
pub(crate) fn encode_block(
    out: &mut Vec<u8>,
    header: &FileHeader,
    node: u32,
    windows: &[u64],
    values: &[f64],
) -> Result<()> {
    let mode = header.mode;
    let l = header.l as usize;
    let count = windows.len();
    let dim = 2 * l;
    if count == 0 {
        return Err(StoreError::Invalid("cannot encode an empty block".into()));
    }
    if values.len() != count * dim {
        return Err(StoreError::Invalid(format!(
            "{} values for {count} events of dim {dim}",
            values.len()
        )));
    }
    let mut max_gap: u64 = 0;
    for pair in windows.windows(2) {
        if pair[1] <= pair[0] {
            return Err(StoreError::Invalid(format!(
                "window indexes must be strictly increasing ({} then {})",
                pair[0], pair[1]
            )));
        }
        max_gap = max_gap.max(pair[1] - pair[0] - 1);
    }
    let delta_bits = bits_for(max_gap);
    if delta_bits > 32 {
        return Err(StoreError::Invalid(format!(
            "window jump of {max_gap} exceeds the 32-bit delta budget"
        )));
    }
    let start = out.len();
    out.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
    out.extend_from_slice(&node.to_le_bytes());
    out.extend_from_slice(&windows[0].to_le_bytes());
    out.extend_from_slice(&(count as u32).to_le_bytes());
    out.push(delta_bits);
    if header.version < 2 {
        // v1 carried 3 pad bytes + a payload length the other fields
        // fully determine; v2 dropped both (see module docs).
        let payload_len =
            delta_section_len(count as u32, delta_bits) + count * dim * mode.bytes_per_value();
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    }

    let ranges = if mode == Encoding::Exact {
        [0.0; 4]
    } else {
        let ranges = component_ranges(values, l);
        if !ranges.iter().all(|v| v.is_finite()) {
            return Err(StoreError::Invalid(
                "signature values must be finite to quantize".into(),
            ));
        }
        for v in ranges {
            out.extend_from_slice(&v.to_le_bytes());
        }
        ranges
    };

    pack_deltas(out, windows, delta_bits);
    match mode {
        Encoding::Exact => {
            for &v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Encoding::Quant8 | Encoding::Quant16 => {
            let qmax = mode.qmax();
            let scale = |min: f64, max: f64| if max > min { qmax / (max - min) } else { 0.0 };
            let (re_s, im_s) = (scale(ranges[0], ranges[1]), scale(ranges[2], ranges[3]));
            for event in values.chunks_exact(dim) {
                for (half, (min, s)) in [
                    (&event[..l], (ranges[0], re_s)),
                    (&event[l..], (ranges[2], im_s)),
                ] {
                    for &v in half {
                        let q = ((v - min) * s).round().clamp(0.0, qmax) as u32;
                        match mode {
                            Encoding::Quant8 => out.push(q as u8),
                            _ => out.extend_from_slice(&(q as u16).to_le_bytes()),
                        }
                    }
                }
            }
        }
    }
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(())
}

/// A parsed block, payload still encoded (borrowed from the file image).
#[derive(Debug)]
pub(crate) struct BlockRef<'a> {
    pub node: u32,
    pub first_window: u64,
    pub count: u32,
    pub last_window_upper_bound: u64,
    delta_bits: u8,
    scales: [f64; 4],
    payload: &'a [u8],
    /// Offset just past this block's CRC (start of the next block).
    pub end: u64,
}

/// Why a block could not be parsed.
#[derive(Debug)]
pub(crate) struct BlockError {
    /// `true` when the file simply ended mid-block — the signature of a
    /// crash during an append, recoverable by truncating to the last
    /// complete block. CRC mismatches and impossible field values are
    /// *not* truncation and are never auto-recovered.
    pub truncated: bool,
    pub offset: u64,
    pub message: String,
}

impl BlockError {
    /// Attaches the file path to produce the store-level corrupt-block
    /// error.
    pub fn into_store_error(self, path: &Path) -> StoreError {
        StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: self.offset,
            message: self.message,
        }
    }
}

/// Parses the block starting at `offset`, verifying its CRC. Returns
/// `Ok(None)` at clean EOF.
pub(crate) fn parse_block<'a>(
    bytes: &'a [u8],
    offset: u64,
    header: &FileHeader,
) -> std::result::Result<Option<BlockRef<'a>>, BlockError> {
    parse_block_impl(bytes, offset, header, true)
}

/// [`parse_block`] without the CRC pass — for blocks whose CRC an
/// earlier read already validated (the store's first-touch validation
/// bitmap). All structural bounds checks still run; only the checksum
/// recomputation is skipped.
pub(crate) fn parse_block_trusted<'a>(
    bytes: &'a [u8],
    offset: u64,
    header: &FileHeader,
) -> std::result::Result<Option<BlockRef<'a>>, BlockError> {
    parse_block_impl(bytes, offset, header, false)
}

fn parse_block_impl<'a>(
    bytes: &'a [u8],
    offset: u64,
    header: &FileHeader,
    verify_crc: bool,
) -> std::result::Result<Option<BlockRef<'a>>, BlockError> {
    let at = offset as usize;
    if at == bytes.len() {
        return Ok(None);
    }
    let err = |truncated: bool, message: String| BlockError {
        truncated,
        offset,
        message,
    };
    if at > bytes.len() {
        // Offsets can come from a persisted sidecar; one pointing past
        // the file is damage, handled like any other truncation.
        return Err(err(
            true,
            format!("block offset {at} beyond file end {}", bytes.len()),
        ));
    }
    let header_len = block_header_len(header.version);
    let avail = bytes.len() - at;
    if avail < header_len {
        return Err(err(
            true,
            format!("block header truncated ({avail} of {header_len} bytes)"),
        ));
    }
    let b = &bytes[at..];
    let magic = read_u32(b, 0);
    if magic != BLOCK_MAGIC {
        return Err(err(false, format!("bad block magic {magic:08x}")));
    }
    let node = read_u32(b, 4);
    let first_window = read_u64(b, 8);
    let count = read_u32(b, 16);
    let delta_bits = b[20];
    if count == 0 || count > MAX_BLOCK_COUNT {
        return Err(err(
            false,
            format!("block event count {count} outside 1..={MAX_BLOCK_COUNT}"),
        ));
    }
    if delta_bits > 32 {
        return Err(err(
            false,
            format!("delta width {delta_bits} exceeds 32 bits"),
        ));
    }
    let mode = header.mode;
    let dim = 2 * header.l as usize;
    // With `l <= MAX_L` (header validation) and `count <= MAX_BLOCK_COUNT`
    // this product tops out near 2^48 — no overflow on 64-bit targets.
    let expect_payload =
        delta_section_len(count, delta_bits) + count as usize * dim * mode.bytes_per_value();
    if header.version < 2 {
        // v1 stored the payload length explicitly; cross-check it.
        let payload_len = read_u32(b, 24) as usize;
        if payload_len != expect_payload {
            return Err(err(
                false,
                format!("payload length {payload_len} != expected {expect_payload}"),
            ));
        }
    }
    let total = header_len + mode.scales_len() + expect_payload + 4;
    if avail < total {
        return Err(err(
            true,
            format!("block truncated ({avail} of {total} bytes)"),
        ));
    }
    let mut scales = [0.0f64; 4];
    if mode != Encoding::Exact {
        for (i, s) in scales.iter_mut().enumerate() {
            *s = read_f64(b, header_len + 8 * i);
        }
        if !scales.iter().all(|v| v.is_finite()) || scales[1] < scales[0] || scales[3] < scales[2] {
            return Err(err(
                false,
                format!("invalid quantization scales {scales:?}"),
            ));
        }
    }
    if verify_crc {
        let stored_crc = read_u32(b, total - 4);
        let actual = crc32(&b[..total - 4]);
        if stored_crc != actual {
            return Err(err(
                false,
                format!("block CRC mismatch (stored {stored_crc:08x}, computed {actual:08x})"),
            ));
        }
    }
    // Every delta is at least 1 and at most 2^delta_bits, so this bounds
    // the block's last window without decoding the payload.
    let span = (count as u64 - 1).saturating_mul(1u64 << delta_bits.min(32));
    Ok(Some(BlockRef {
        node,
        first_window,
        count,
        last_window_upper_bound: first_window.saturating_add(span),
        delta_bits,
        scales,
        payload: &b[header_len + mode.scales_len()..total - 4],
        end: offset + total as u64,
    }))
}

/// Re-frames a parsed block into `out` under `out_header`'s version —
/// the byte-preserving transcode the compactor uses for quantized
/// blocks: scales and payload (delta axis + quantized values) are
/// copied verbatim, so decoded values stay bit-identical; only the
/// fixed header layout (and hence the CRC) changes. `out_header` must
/// share the source block's mode and `l`.
pub(crate) fn reframe_block(out: &mut Vec<u8>, out_header: &FileHeader, block: &BlockRef<'_>) {
    let start = out.len();
    out.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
    out.extend_from_slice(&block.node.to_le_bytes());
    out.extend_from_slice(&block.first_window.to_le_bytes());
    out.extend_from_slice(&block.count.to_le_bytes());
    out.push(block.delta_bits);
    if out_header.version < 2 {
        let payload_len = block.payload.len() as u32;
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&payload_len.to_le_bytes());
    }
    if out_header.mode != Encoding::Exact {
        for s in block.scales {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }
    out.extend_from_slice(block.payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Decodes a parsed block's window axis and values into `windows` /
/// `values` (appended; `values` gains `count * 2l` entries).
pub(crate) fn decode_block(
    block: &BlockRef<'_>,
    header: &FileHeader,
    windows: &mut Vec<u64>,
    values: &mut Vec<f64>,
) {
    let dim = 2 * header.l as usize;
    let count = block.count;
    windows.push(block.first_window);
    let delta_len = delta_section_len(count, block.delta_bits);
    unpack_deltas(
        &block.payload[..delta_len],
        count,
        block.delta_bits,
        block.first_window,
        windows,
    );
    let raw = &block.payload[delta_len..];
    match header.mode {
        Encoding::Exact => {
            for chunk in raw.chunks_exact(8) {
                // lint:allow(no-panic-paths): statically infallible —
                // chunks_exact(8) yields exactly 8-byte slices.
                values.push(f64::from_le_bytes(chunk.try_into().unwrap()));
            }
        }
        mode @ (Encoding::Quant8 | Encoding::Quant16) => {
            let qmax = mode.qmax();
            let [re_min, re_max, im_min, im_max] = block.scales;
            let re_step = (re_max - re_min) / qmax;
            let im_step = (im_max - im_min) / qmax;
            let l = header.l as usize;
            let decode_at = |i: usize| -> f64 {
                match mode {
                    Encoding::Quant8 => raw[i] as f64,
                    _ => u16::from_le_bytes([raw[2 * i], raw[2 * i + 1]]) as f64,
                }
            };
            for e in 0..count as usize {
                for j in 0..dim {
                    let q = decode_at(e * dim + j);
                    values.push(if j < l {
                        re_min + q * re_step
                    } else {
                        im_min + q * im_step
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn header(mode: Encoding, l: u32) -> FileHeader {
        FileHeader::current(mode, l, 30, 10)
    }

    fn header_v1(mode: Encoding, l: u32) -> FileHeader {
        FileHeader {
            version: 1,
            ..header(mode, l)
        }
    }

    fn roundtrip_with(h: &FileHeader, windows: &[u64], values: &[f64]) -> (Vec<u64>, Vec<f64>) {
        let mut bytes = Vec::new();
        encode_block(&mut bytes, h, 7, windows, values).unwrap();
        let block = parse_block(&bytes, 0, h).unwrap().unwrap();
        assert_eq!(block.node, 7);
        assert_eq!(block.count as usize, windows.len());
        assert_eq!(block.end as usize, bytes.len());
        let (mut w, mut v) = (Vec::new(), Vec::new());
        decode_block(&block, h, &mut w, &mut v);
        (w, v)
    }

    fn roundtrip(
        mode: Encoding,
        l: usize,
        windows: &[u64],
        values: &[f64],
    ) -> (Vec<u64>, Vec<f64>) {
        roundtrip_with(&header(mode, l as u32), windows, values)
    }

    #[test]
    fn exact_roundtrip_is_bit_identical() {
        let windows = [4u64, 5, 6, 9, 107];
        let values: Vec<f64> = (0..windows.len() * 6)
            .map(|i| (i as f64 * 0.37).sin() * 1e3 + 0.1)
            .collect();
        let (w, v) = roundtrip(Encoding::Exact, 3, &windows, &values);
        assert_eq!(w, windows);
        // Bitwise equality, not approximate.
        assert!(v
            .iter()
            .zip(&values)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn gapless_windows_cost_zero_delta_bytes() {
        let windows: Vec<u64> = (10..200).collect();
        let values = vec![0.5; windows.len() * 2];
        let h = header(Encoding::Quant8, 1);
        let mut gapless = Vec::new();
        encode_block(&mut gapless, &h, 0, &windows, &values).unwrap();
        // One jump forces a nonzero delta width on every event.
        let mut jumped: Vec<u64> = windows.clone();
        *jumped.last_mut().unwrap() += 9;
        let mut with_gap = Vec::new();
        encode_block(&mut with_gap, &h, 0, &jumped, &values).unwrap();
        assert!(gapless.len() < with_gap.len());
        let block = parse_block(&with_gap, 0, &h).unwrap().unwrap();
        let (mut w, mut v) = (Vec::new(), Vec::new());
        decode_block(&block, &h, &mut w, &mut v);
        assert_eq!(w, jumped);
    }

    #[test]
    fn quantized_roundtrip_stays_within_step() {
        for mode in [Encoding::Quant8, Encoding::Quant16] {
            let windows: Vec<u64> = (0..64).map(|i| i * 3 + 1).collect();
            let l = 4usize;
            let values: Vec<f64> = (0..windows.len() * 2 * l)
                .map(|i| ((i as f64 / 7.0).sin() + 1.0) / 2.0)
                .collect();
            let (w, v) = roundtrip(mode, l, &windows, &values);
            assert_eq!(w, windows);
            let step = 1.0 / mode.qmax(); // values span <= 1.0 here
            for (a, b) in v.iter().zip(&values) {
                assert!((a - b).abs() <= step, "{a} vs {b} (step {step})");
            }
        }
    }

    #[test]
    fn constant_values_quantize_exactly() {
        let windows = [0u64, 1, 2];
        let values = vec![0.75; 3 * 2];
        let (_, v) = roundtrip(Encoding::Quant8, 1, &windows, &values);
        assert!(v.iter().all(|&x| x == 0.75));
    }

    #[test]
    fn encode_rejects_bad_input() {
        let mut out = Vec::new();
        let he = header(Encoding::Exact, 2);
        let hq = header(Encoding::Quant8, 1);
        assert!(encode_block(&mut out, &he, 0, &[], &[]).is_err());
        assert!(encode_block(&mut out, &he, 0, &[1], &[0.0; 3]).is_err());
        assert!(encode_block(&mut out, &he, 0, &[5, 5], &[0.0; 8]).is_err());
        assert!(encode_block(&mut out, &he, 0, &[5, 3], &[0.0; 8]).is_err());
        assert!(encode_block(&mut out, &hq, 0, &[1], &[f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let windows = [3u64, 4, 8];
        let values: Vec<f64> = (0..12).map(|i| i as f64 / 11.0).collect();
        for h in [
            header(Encoding::Quant16, 2),
            header_v1(Encoding::Quant16, 2),
        ] {
            let mut bytes = Vec::new();
            encode_block(&mut bytes, &h, 1, &windows, &values).unwrap();
            for i in 0..bytes.len() {
                bytes[i] ^= 0xA5;
                let r = parse_block(&bytes, 0, &h);
                assert!(r.is_err(), "v{} flip at byte {i} went unnoticed", h.version);
                bytes[i] ^= 0xA5;
            }
            // Untouched bytes still parse.
            assert!(parse_block(&bytes, 0, &h).unwrap().is_some());
        }
    }

    #[test]
    fn truncation_is_flagged_as_truncated() {
        let windows: Vec<u64> = (0..32).collect();
        let values = vec![0.25; 32 * 4];
        let h = header(Encoding::Exact, 2);
        let mut bytes = Vec::new();
        encode_block(&mut bytes, &h, 0, &windows, &values).unwrap();
        for cut in [
            1usize,
            BLOCK_HEADER_V2_LEN - 1,
            BLOCK_HEADER_V2_LEN + 5,
            bytes.len() - 1,
        ] {
            let err = parse_block(&bytes[..cut], 0, &h).unwrap_err();
            assert!(err.truncated, "cut at {cut} not reported as truncation");
        }
        // A clean EOF is not an error.
        assert!(parse_block(&bytes[..0], 0, &h).unwrap().is_none());
    }

    #[test]
    fn absurd_header_and_block_fields_are_rejected() {
        let path = PathBuf::from("crafted.cws");
        // Header claiming a preposterous block count: the CRC is
        // recomputable by an attacker/filesystem accident, so the field
        // itself must be bounded.
        let mut bytes = Vec::new();
        FileHeader::current(Encoding::Exact, 4, 30, 10).write_to(&mut bytes);
        bytes[12..16].copy_from_slice(&(MAX_L + 1).to_le_bytes());
        let crc = crate::crc::crc32(&bytes[..28]);
        bytes[28..32].copy_from_slice(&crc.to_le_bytes());
        assert!(FileHeader::parse(&bytes, &path).is_err());

        // A future version the reader does not understand must be
        // rejected up front, not misparsed.
        let mut future = Vec::new();
        FileHeader {
            version: FORMAT_VERSION + 1,
            ..FileHeader::current(Encoding::Exact, 4, 30, 10)
        }
        .write_to(&mut future);
        assert!(FileHeader::parse(&future, &path).is_err());

        // Block claiming a preposterous event count, CRC fixed up: must
        // error (not overflow or allocate terabytes).
        let h = header(Encoding::Exact, 2);
        let mut block = Vec::new();
        encode_block(&mut block, &h, 0, &[1, 2], &[0.0; 8]).unwrap();
        block[16..20].copy_from_slice(&(MAX_BLOCK_COUNT + 1).to_le_bytes());
        let end = block.len() - 4;
        let crc = crate::crc::crc32(&block[..end]);
        block[end..].copy_from_slice(&crc.to_le_bytes());
        let err = parse_block(&block, 0, &h).unwrap_err();
        assert!(
            !err.truncated,
            "bounds violation is corruption, not truncation"
        );
    }

    #[test]
    fn file_header_roundtrip_and_validation() {
        let path = PathBuf::from("test.cws");
        let h = FileHeader::current(Encoding::Quant8, 4, 30, 10);
        let mut bytes = Vec::new();
        h.write_to(&mut bytes);
        assert_eq!(bytes.len(), FILE_HEADER_LEN);
        assert_eq!(FileHeader::parse(&bytes, &path).unwrap(), h);
        // Truncated, corrupted, wrong-magic inputs all error.
        assert!(FileHeader::parse(&bytes[..10], &path).is_err());
        let mut bad = bytes.clone();
        bad[12] ^= 1;
        assert!(FileHeader::parse(&bad, &path).is_err());
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(FileHeader::parse(&wrong, &path).is_err());
    }

    #[test]
    fn v1_blocks_still_parse_and_v2_drops_seven_bytes() {
        let windows = [4u64, 5, 6, 9, 107];
        let values: Vec<f64> = (0..windows.len() * 6)
            .map(|i| (i as f64 * 0.37).sin() * 1e3 + 0.1)
            .collect();
        for mode in [Encoding::Exact, Encoding::Quant8, Encoding::Quant16] {
            let (h1, h2) = (header_v1(mode, 3), header(mode, 3));
            let (mut b1, mut b2) = (Vec::new(), Vec::new());
            encode_block(&mut b1, &h1, 7, &windows, &values).unwrap();
            encode_block(&mut b2, &h2, 7, &windows, &values).unwrap();
            assert_eq!(
                b1.len(),
                b2.len() + (BLOCK_HEADER_V1_LEN - BLOCK_HEADER_V2_LEN)
            );
            // Both layouts decode to the same windows and values.
            let (w1, v1) = roundtrip_with(&h1, &windows, &values);
            let (w2, v2) = roundtrip_with(&h2, &windows, &values);
            assert_eq!(w1, w2);
            assert!(v1.iter().zip(&v2).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn reframe_preserves_decoded_bits_across_versions() {
        let windows = [3u64, 4, 9, 10, 42];
        let values: Vec<f64> = (0..windows.len() * 4)
            .map(|i| ((i as f64 / 5.0).cos() + 1.1) * 3.0)
            .collect();
        for mode in [Encoding::Exact, Encoding::Quant8, Encoding::Quant16] {
            let (h1, h2) = (header_v1(mode, 2), header(mode, 2));
            let mut old = Vec::new();
            encode_block(&mut old, &h1, 9, &windows, &values).unwrap();
            let src = parse_block(&old, 0, &h1).unwrap().unwrap();
            let mut new = Vec::new();
            reframe_block(&mut new, &h2, &src);
            let dst = parse_block(&new, 0, &h2).unwrap().unwrap();
            let (mut w1, mut v1) = (Vec::new(), Vec::new());
            decode_block(&src, &h1, &mut w1, &mut v1);
            let (mut w2, mut v2) = (Vec::new(), Vec::new());
            decode_block(&dst, &h2, &mut w2, &mut v2);
            assert_eq!(w1, w2);
            assert!(v1.iter().zip(&v2).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn trusted_parse_skips_crc_but_keeps_structural_checks() {
        let h = header(Encoding::Exact, 1);
        let mut bytes = Vec::new();
        encode_block(&mut bytes, &h, 3, &[1, 2, 5], &[0.5; 6]).unwrap();
        // Corrupt only the CRC: the trusting parse does not notice (the
        // store only uses it after a verifying first touch), the
        // verifying parse does.
        let end = bytes.len();
        bytes[end - 1] ^= 0xFF;
        assert!(parse_block(&bytes, 0, &h).is_err());
        assert!(parse_block_trusted(&bytes, 0, &h).unwrap().is_some());
        // Structural damage is still rejected without the CRC pass.
        bytes[16..20].copy_from_slice(&(MAX_BLOCK_COUNT + 1).to_le_bytes());
        assert!(parse_block_trusted(&bytes, 0, &h).is_err());
    }
}
