//! Background segment compaction.
//!
//! Small sealed segments accumulate whenever the store seals on flush
//! boundaries, recovers a crashed directory, or rolls segments faster
//! than they fill. Every extra segment is another file to open, map and
//! probe on the query path. A [`Compactor`] merges a consecutive run of
//! small sealed segments into one large segment, re-sorting the merged
//! blocks by a Morton/space-filling-curve key over quantized signature
//! prefixes ([`crate::morton`]) so blocks that are close in feature
//! space become close on disk — similarity scans touch mostly
//! sequential pages.
//!
//! Blocks are *re-framed*, never re-encoded: each block's scales and
//! payload bytes are copied verbatim into the output (under the current
//! format version), so decoded values — and therefore every query
//! result — are bit-identical before and after compaction. The k-NN
//! total order `(distance, node, window)` is independent of block
//! order, which is what makes reordering safe (pinned by the
//! compaction-parity property tests).
//!
//! ## Threading: the transport idioms
//!
//! The CPU- and I/O-heavy merge runs on a dedicated worker thread
//! behind a bounded work queue (`sync_channel(1)` each way — one job
//! in flight, no unbounded buffering), mirroring the transport layer's
//! queue discipline. Errors follow first-error-wins: the first failure
//! (worker or commit side) latches and every later [`Compactor::poll`]
//! reports it. The worker only ever *reads* sealed input segments and
//! *writes* a private temporary; all store state, the commit rename
//! and retention stay on the store's thread, so there is no shared
//! mutable state to race on.
//!
//! ## Crash safety: write-new-then-atomic-rename
//!
//! ```text
//!  worker:  merge inputs -> compact-<id>.tmp   (fsync)
//!  commit:  write compact-<id>.intent          (fsync file + dir)
//!           rename tmp -> seg-<id>.cws         (atomic replace of the
//!                                               oldest input; id-order
//!                                               stays age-order for
//!                                               drop-oldest retention)
//!           delete other inputs + stale .idx sidecars
//!           write fresh seg-<id>.idx, delete intent
//! ```
//!
//! A kill at any byte of this sequence is repaired by
//! `recover_compaction` at the next open: temporary still present →
//! roll back (inputs untouched, temporary discarded); temporary gone →
//! the rename landed, roll forward (duplicate inputs deleted). Either
//! way every acked event is readable from exactly one place.

use crate::error::{Result, StoreError};
use crate::format::{self, FileHeader, FILE_HEADER_LEN};
use crate::mmap::SegmentView;
use crate::morton::MortonBounds;
use crate::sidecar;
use crate::store::{BlockEntry, SignatureStore};
use cwsmooth_obs::{Observe, Snapshot};
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::thread::JoinHandle;

/// Compaction policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct CompactorConfig {
    /// Fewest consecutive small segments worth merging (≥ 2).
    pub min_inputs: usize,
    /// Most segments merged per run (bounds merge memory and latency).
    pub max_inputs: usize,
    /// A sealed segment with fewer events than this is "small" (a merge
    /// candidate). `None` uses the store's `segment_events` — segments
    /// that filled completely are already as large as the writer makes
    /// them.
    pub small_events: Option<u64>,
    /// Re-sort merged blocks by Morton locality key. Disabling keeps
    /// input order (age-major) — useful to isolate layout effects in
    /// benchmarks; query results are identical either way.
    pub morton: bool,
}

impl Default for CompactorConfig {
    fn default() -> Self {
        Self {
            min_inputs: 2,
            max_inputs: 8,
            small_events: None,
            morton: true,
        }
    }
}

/// Lifetime compaction counters (see [`Compactor::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Merges committed.
    pub runs: u64,
    /// Input segments consumed across all runs.
    pub segments_in: u64,
    /// Events carried through compaction.
    pub events: u64,
    /// Bytes read from input segments.
    pub bytes_in: u64,
    /// Bytes written to merged segments.
    pub bytes_out: u64,
    /// Wall-clock nanoseconds spent merging on the worker thread.
    pub merge_nanos: u64,
    /// Finished merges discarded because the inputs changed underneath
    /// (e.g. retention evicted one) — never an error, just wasted work.
    pub skipped: u64,
}

/// A merge assignment for the worker thread.
struct MergeJob {
    inputs: Vec<(u64, PathBuf)>,
    header: FileHeader,
    tmp: PathBuf,
    morton: bool,
}

/// What the worker hands back: a fully written, fsynced temporary plus
/// the in-memory index of its contents, ready to commit.
pub(crate) struct MergeOutput {
    pub output: u64,
    pub inputs: Vec<u64>,
    pub tmp: PathBuf,
    pub header: FileHeader,
    pub events: u64,
    pub bytes: u64,
    pub entries: Vec<BlockEntry>,
    pub bytes_in: u64,
    pub nanos: u64,
}

/// Background compactor handle. Owns the worker thread; drive it by
/// calling [`Compactor::poll`] from the thread that owns the store
/// (commits mutate store state, so they happen on the caller's side —
/// the worker only reads sealed files and writes a private temporary).
///
/// Compaction is opt-in: a store without a compactor behaves exactly
/// as before, and the allocation-free ingest path is untouched either
/// way.
#[derive(Debug)]
pub struct Compactor {
    cfg: CompactorConfig,
    jobs: Option<SyncSender<MergeJob>>,
    results: Receiver<Result<MergeOutput>>,
    worker: Option<JoinHandle<()>>,
    /// Ids of the in-flight job's inputs + its temporary path.
    in_flight: Option<(Vec<u64>, PathBuf)>,
    stats: CompactionStats,
    /// First-error-wins latch: once set, every poll reports it.
    failed: Option<String>,
}

impl std::fmt::Debug for MergeJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeJob")
            .field("inputs", &self.inputs.len())
            .field("tmp", &self.tmp)
            .finish()
    }
}

impl Compactor {
    /// Spawns the worker thread (idle until the first job).
    pub fn new(cfg: CompactorConfig) -> Result<Self> {
        if cfg.min_inputs < 2 || cfg.max_inputs < cfg.min_inputs {
            return Err(StoreError::Invalid(format!(
                "compactor needs 2 <= min_inputs <= max_inputs, got {} ..= {}",
                cfg.min_inputs, cfg.max_inputs
            )));
        }
        // Bounded both ways: one queued job, one queued result. The
        // store thread never blocks on the worker (poll uses try_recv);
        // the worker blocks on a full result slot, which is exactly the
        // backpressure wanted — no second merge until the first lands.
        let (job_tx, job_rx) = sync_channel::<MergeJob>(1);
        let (res_tx, res_rx) = sync_channel::<Result<MergeOutput>>(1);
        let worker = std::thread::Builder::new()
            .name("cws-compact".into())
            .spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let result = merge(&job);
                    if res_tx.send(result).is_err() {
                        break; // handle dropped; nobody is listening
                    }
                }
            })?;
        Ok(Self {
            cfg,
            jobs: Some(job_tx),
            results: res_rx,
            worker: Some(worker),
            in_flight: None,
            stats: CompactionStats::default(),
            failed: None,
        })
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CompactionStats {
        self.stats
    }

    /// `true` while a merge is running on the worker thread.
    pub fn in_flight(&self) -> bool {
        self.in_flight.is_some()
    }

    /// One scheduling step: commit a finished merge if one is ready
    /// (non-blocking), then submit a new job if the store has a
    /// candidate run of small segments. Returns `true` when a merge was
    /// committed this call. Call periodically from the ingest thread —
    /// e.g. after seals or flushes; each call is cheap when there is
    /// nothing to do.
    pub fn poll(&mut self, store: &mut SignatureStore) -> Result<bool> {
        if let Some(msg) = &self.failed {
            return Err(StoreError::Invalid(format!(
                "compactor failed earlier (first error wins): {msg}"
            )));
        }
        let mut committed = false;
        match self.results.try_recv() {
            Ok(result) => committed = self.finish(store, result)?,
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => {
                return Err(self.latch("compaction worker thread exited unexpectedly"));
            }
        }
        if self.in_flight.is_none() {
            self.submit(store);
        }
        Ok(committed)
    }

    /// Runs compaction to quiescence: submits and commits merges until
    /// the store has no candidate run left. Blocks on the worker —
    /// meant for tests, benchmarks and shutdown paths, not the ingest
    /// hot path. Returns the number of merges committed.
    pub fn run_until_idle(&mut self, store: &mut SignatureStore) -> Result<usize> {
        let mut commits = 0usize;
        loop {
            if let Some(msg) = &self.failed {
                return Err(StoreError::Invalid(format!(
                    "compactor failed earlier (first error wins): {msg}"
                )));
            }
            if self.in_flight.is_none() {
                self.submit(store);
                if self.in_flight.is_none() {
                    break; // nothing left to merge
                }
            }
            let result = match self.results.recv() {
                Ok(r) => r,
                Err(_) => return Err(self.latch("compaction worker thread exited unexpectedly")),
            };
            if self.finish(store, result)? {
                commits += 1;
            }
        }
        Ok(commits)
    }

    /// Stops the worker and joins it. Dropping the compactor does the
    /// same implicitly; this form surfaces a worker panic as an error.
    pub fn shutdown(mut self) -> Result<()> {
        self.jobs = None; // disconnect: the worker's recv() ends its loop
        if let Some(handle) = self.worker.take() {
            if handle.join().is_err() {
                return Err(StoreError::Invalid(
                    "compaction worker panicked during shutdown".into(),
                ));
            }
        }
        Ok(())
    }

    fn latch(&mut self, msg: &str) -> StoreError {
        if self.failed.is_none() {
            self.failed = Some(msg.to_string());
        }
        StoreError::Invalid(msg.to_string())
    }

    /// Picks a candidate run and hands it to the worker. Never blocks:
    /// submission only happens when no job is in flight, so the
    /// one-slot job queue always has room.
    fn submit(&mut self, store: &mut SignatureStore) {
        let Some((inputs, header)) = store.compaction_candidates(
            self.cfg.min_inputs,
            self.cfg.max_inputs,
            self.cfg.small_events,
        ) else {
            return;
        };
        let ids: Vec<u64> = inputs.iter().map(|&(id, _)| id).collect();
        let tmp = sidecar::compact_tmp_path(store.dir(), ids[0]);
        store.mark_compacting(&ids);
        let job = MergeJob {
            inputs,
            header,
            tmp: tmp.clone(),
            morton: self.cfg.morton,
        };
        match self.jobs.as_ref().map(|tx| tx.try_send(job)) {
            Some(Ok(())) => self.in_flight = Some((ids, tmp)),
            _ => {
                // Queue full (impossible with one in flight) or worker
                // gone — undo the reservation; poll will surface the
                // disconnect on its next try_recv.
                store.clear_compacting();
            }
        }
    }

    /// Commits (or discards) a finished merge.
    fn finish(&mut self, store: &mut SignatureStore, result: Result<MergeOutput>) -> Result<bool> {
        let Some((_, tmp)) = self.in_flight.take() else {
            // A result with no job tracked — drop any stray temporary.
            if let Ok(out) = &result {
                let _ = std::fs::remove_file(&out.tmp);
            }
            return Ok(false);
        };
        store.clear_compacting();
        let out = match result {
            Ok(out) => out,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                let msg = format!("merge failed: {e}");
                self.failed = Some(msg.clone());
                return Err(e);
            }
        };
        match store.apply_compaction(&out) {
            Ok(true) => {
                self.stats.runs += 1;
                self.stats.segments_in += out.inputs.len() as u64;
                self.stats.events += out.events;
                self.stats.bytes_in += out.bytes_in;
                self.stats.bytes_out += out.bytes;
                self.stats.merge_nanos += out.nanos;
                Ok(true)
            }
            Ok(false) => {
                // Inputs changed underneath (retention, reopen): the
                // pre-merge segments stay the source of truth.
                self.stats.skipped += 1;
                let _ = std::fs::remove_file(&out.tmp);
                Ok(false)
            }
            Err(e) => {
                let _ = std::fs::remove_file(&out.tmp);
                self.failed = Some(format!("commit failed: {e}"));
                Err(e)
            }
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.jobs = None;
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

/// Snapshot under `stage="compact"`: lifetime merge counters plus an
/// in-flight gauge.
impl Observe for Compactor {
    fn observe(&self, out: &mut Snapshot) {
        let labels = &[("stage", "compact")];
        out.gauge(
            "cws_compact_in_flight",
            labels,
            if self.in_flight.is_some() { 1.0 } else { 0.0 },
        );
        out.counter("cws_compact_runs_total", labels, self.stats.runs);
        out.counter(
            "cws_compact_segments_in_total",
            labels,
            self.stats.segments_in,
        );
        out.counter("cws_compact_events_total", labels, self.stats.events);
        out.counter("cws_compact_bytes_in_total", labels, self.stats.bytes_in);
        out.counter("cws_compact_bytes_out_total", labels, self.stats.bytes_out);
        out.counter("cws_compact_skipped_total", labels, self.stats.skipped);
    }
}

/// One merged block during planning: where it lives and its sort key.
struct PlannedBlock {
    input: usize,
    offset: u64,
    key: u64,
}

/// The worker-side merge: reads the inputs (zero-copy via
/// [`SegmentView`], CRC-verifying every block — compaction doubles as
/// a scrub), plans the Morton order, re-frames every block into the
/// output temporary and fsyncs it. No store state is touched.
fn merge(job: &MergeJob) -> Result<MergeOutput> {
    let started = std::time::Instant::now();
    let mut views: Vec<(SegmentView, FileHeader)> = Vec::with_capacity(job.inputs.len());
    let mut bytes_in = 0u64;
    for (_, path) in &job.inputs {
        let view = SegmentView::open(path)?;
        let header = FileHeader::parse(view.bytes(), path)?;
        if header.mode != job.header.mode || header.l != job.header.l {
            return Err(StoreError::Mismatch(format!(
                "segment {} geometry drifted during compaction",
                path.display()
            )));
        }
        bytes_in += view.len() as u64;
        views.push((view, header));
    }

    // Pass 1: walk every block, verify its CRC, and capture the first
    // event's features — the block's representative point for the
    // locality key.
    let dim = 2 * job.header.l as usize;
    let mut blocks: Vec<PlannedBlock> = Vec::new();
    let mut reps: Vec<f64> = Vec::new(); // blocks.len() × dim
    let mut win_scratch: Vec<u64> = Vec::new();
    let mut val_scratch: Vec<f64> = Vec::new();
    for (i, (view, header)) in views.iter().enumerate() {
        let path = &job.inputs[i].1;
        let mut offset = FILE_HEADER_LEN as u64;
        loop {
            match format::parse_block(view.bytes(), offset, header) {
                Ok(None) => break,
                Ok(Some(block)) => {
                    win_scratch.clear();
                    val_scratch.clear();
                    format::decode_block(&block, header, &mut win_scratch, &mut val_scratch);
                    reps.extend_from_slice(&val_scratch[..dim]);
                    blocks.push(PlannedBlock {
                        input: i,
                        offset,
                        key: 0,
                    });
                    offset = block.end;
                }
                Err(e) => return Err(e.into_store_error(path)),
            }
        }
    }

    // Plan: Morton keys over the representative points, quantized
    // against their global component ranges.
    if job.morton && !blocks.is_empty() {
        let mut bounds = MortonBounds::new(dim);
        for rep in reps.chunks_exact(dim) {
            bounds.observe(rep);
        }
        for (b, rep) in blocks.iter_mut().zip(reps.chunks_exact(dim)) {
            b.key = bounds.key(rep);
        }
        // Stable order: ties keep input/age order, so the plan is a
        // pure function of the input bytes.
        blocks.sort_by_key(|b| (b.key, b.input, b.offset));
    }

    // Pass 2: re-frame every block into the output image in planned
    // order. Payload bytes are copied verbatim; only framing (and CRC)
    // is rewritten, so decoded values are bit-identical.
    let mut out = Vec::with_capacity(bytes_in as usize);
    job.header.write_to(&mut out);
    let mut entries: Vec<BlockEntry> = Vec::with_capacity(blocks.len());
    let mut events = 0u64;
    for planned in &blocks {
        let (view, header) = &views[planned.input];
        let path = &job.inputs[planned.input].1;
        let block = format::parse_block_trusted(view.bytes(), planned.offset, header)
            .map_err(|e| e.into_store_error(path))?
            .ok_or_else(|| StoreError::Corrupt {
                path: path.clone(),
                offset: planned.offset,
                message: "planned block vanished during merge".into(),
            })?;
        let start = out.len() as u64;
        format::reframe_block(&mut out, &job.header, &block);
        entries.push(BlockEntry {
            node: block.node,
            first_window: block.first_window,
            last_window: block.last_window_upper_bound,
            offset: start,
            len: (out.len() as u64 - start) as u32,
        });
        events += block.count as u64;
    }

    // Durable temporary: all bytes on stable storage before the commit
    // protocol (intent + rename) may begin.
    let mut file = std::fs::File::create(&job.tmp)?;
    std::io::Write::write_all(&mut file, &out)?;
    file.sync_all()?;
    drop(file);

    Ok(MergeOutput {
        output: job.inputs[0].0,
        inputs: job.inputs.iter().map(|&(id, _)| id).collect(),
        tmp: job.tmp.clone(),
        header: job.header,
        events,
        bytes: out.len() as u64,
        entries,
        bytes_in,
        nanos: started.elapsed().as_nanos() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sidecar::CompactionIntent;
    use crate::store::StoreConfig;
    use cwsmooth_core::cs::CsSignature;
    use cwsmooth_data::WindowSpec;
    use std::path::Path;

    const L: usize = 2;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cwsmooth-compact-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn spec() -> WindowSpec {
        WindowSpec::new(30, 10).unwrap()
    }

    fn cfg() -> StoreConfig {
        StoreConfig::default()
            .with_block_events(4)
            .with_segment_events(8)
    }

    /// Three sealed segments of eight events each.
    fn seeded(dir: &Path) -> SignatureStore {
        let mut store = SignatureStore::open(dir, spec(), L, cfg()).unwrap();
        for w in 0..8u64 {
            for n in 0..3u32 {
                let x = (w as f64 * 0.13 + n as f64).sin();
                let sig = CsSignature {
                    re: vec![x, 0.5 * x],
                    im: vec![0.1 * x, -x],
                };
                store.push(n, w, &sig).unwrap();
            }
        }
        store.flush().unwrap();
        store
    }

    fn collect(store: &SignatureStore) -> Vec<(u32, u64, Vec<f64>)> {
        let mut out = Vec::new();
        store
            .for_each(|n, w, v| out.push((n, w, v.to_vec())))
            .unwrap();
        out.sort_by_key(|e| (e.0, e.1));
        out
    }

    /// Satellite: the kill-during-compaction crash loop. Every byte
    /// boundary of the merge temporary — with and without a committed
    /// intent — plus every torn-intent prefix and the post-rename
    /// states must recover to a store where each acked event is
    /// readable from exactly one place.
    #[test]
    fn kill_during_compaction_at_every_byte_boundary_recovers() {
        let dir = tmpdir("crash-loop");
        let store = seeded(&dir);
        let expected = collect(&store);
        assert_eq!(expected.len(), 24);

        // Produce the merge artifacts exactly as the worker would,
        // without committing anything.
        let (inputs, header) = store
            .compaction_candidates(2, 8, Some(u64::MAX))
            .expect("three small sealed segments must be candidates");
        let ids: Vec<u64> = inputs.iter().map(|&(id, _)| id).collect();
        assert!(ids.len() >= 2);
        let tmp = sidecar::compact_tmp_path(store.dir(), ids[0]);
        let job = MergeJob {
            inputs: inputs.clone(),
            header,
            tmp: tmp.clone(),
            morton: true,
        };
        let out = merge(&job).unwrap();
        let merged = std::fs::read(&tmp).unwrap();
        std::fs::remove_file(&tmp).unwrap();
        let intent = CompactionIntent {
            output: out.output,
            inputs: out.inputs.clone(),
        };
        let intent_file = sidecar::intent_path(&dir, out.output);
        drop(store);

        // Killed mid-temporary, before the intent existed: the orphan
        // is swept and the inputs stay authoritative.
        for cut in 0..=merged.len() {
            std::fs::write(&tmp, &merged[..cut]).unwrap();
            let store = SignatureStore::open(&dir, spec(), L, cfg()).unwrap();
            assert!(!tmp.exists(), "cut {cut}: temporary must be swept");
            assert!(store.recovery().orphans_removed >= 1, "cut {cut}");
            assert_eq!(collect(&store), expected, "cut {cut}");
        }

        // Killed after the intent was durably written but before the
        // rename: roll back, whatever state the temporary is in.
        for cut in 0..=merged.len() {
            std::fs::write(&tmp, &merged[..cut]).unwrap();
            intent.save(&dir).unwrap();
            let store = SignatureStore::open(&dir, spec(), L, cfg()).unwrap();
            assert!(!tmp.exists() && !intent_file.exists(), "cut {cut}");
            assert_eq!(store.recovery().compactions_rolled_back, 1, "cut {cut}");
            assert_eq!(collect(&store), expected, "cut {cut}");
        }

        // Killed mid-intent-write: a torn intent cannot postdate a
        // rename, so intent and temporary are both discarded.
        intent.save(&dir).unwrap();
        let intent_bytes = std::fs::read(&intent_file).unwrap();
        std::fs::remove_file(&intent_file).unwrap();
        for cut in 0..intent_bytes.len() {
            std::fs::write(&tmp, &merged).unwrap();
            std::fs::write(&intent_file, &intent_bytes[..cut]).unwrap();
            let store = SignatureStore::open(&dir, spec(), L, cfg()).unwrap();
            assert!(!tmp.exists() && !intent_file.exists(), "cut {cut}");
            assert_eq!(collect(&store), expected, "cut {cut}");
        }

        // Killed after the rename: intent present, temporary gone. The
        // recovery rolls forward — duplicate inputs are deleted and the
        // merged segment is the single source of truth.
        std::fs::write(&tmp, &merged).unwrap();
        intent.save(&dir).unwrap();
        std::fs::rename(&tmp, crate::store::segment_path(&dir, out.output)).unwrap();
        let store = SignatureStore::open(&dir, spec(), L, cfg()).unwrap();
        assert!(!intent_file.exists());
        assert_eq!(store.recovery().compactions_rolled_forward, 1);
        for &id in &ids[1..] {
            assert!(
                !crate::store::segment_path(&dir, id).exists(),
                "input {id} must be gone after roll-forward"
            );
        }
        assert_eq!(collect(&store), expected);

        // A reopened post-roll-forward store is just a normal store.
        drop(store);
        let store = SignatureStore::open(&dir, spec(), L, cfg()).unwrap();
        assert_eq!(store.recovery().compactions_rolled_forward, 0);
        assert_eq!(collect(&store), expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_validation_and_error_latching() {
        let bad = CompactorConfig {
            min_inputs: 1,
            ..CompactorConfig::default()
        };
        assert!(Compactor::new(bad).is_err());
        let bad = CompactorConfig {
            min_inputs: 4,
            max_inputs: 2,
            ..CompactorConfig::default()
        };
        assert!(Compactor::new(bad).is_err());

        // A merge over a corrupted input fails, latches, and every
        // later poll reports the first error.
        let dir = tmpdir("latch");
        let mut store = seeded(&dir);
        let (inputs, _) = store.compaction_candidates(2, 8, Some(u64::MAX)).unwrap();
        // Flip one payload byte in the middle of the first input.
        let victim = inputs[0].1.clone();
        let mut bytes = std::fs::read(&victim).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0xff;
        std::fs::write(&victim, &bytes).unwrap();

        let mut compactor = Compactor::new(CompactorConfig {
            small_events: Some(u64::MAX),
            ..CompactorConfig::default()
        })
        .unwrap();
        let err = compactor.run_until_idle(&mut store).unwrap_err();
        assert!(format!("{err}").contains("corrupt"), "{err}");
        let again = compactor.poll(&mut store).unwrap_err();
        assert!(
            format!("{again}").contains("first error wins"),
            "latched: {again}"
        );
        // No temporary or intent litter after a failed merge.
        let litter = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.extension()
                    .is_some_and(|e| e == "tmp" || e == "intent" || e == "wip")
            })
            .count();
        assert_eq!(litter, 0);
        drop(compactor);
        std::fs::remove_dir_all(&dir).ok();
    }
}
