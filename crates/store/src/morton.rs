//! Z-order (Morton) locality keys over quantized signature prefixes.
//!
//! Compaction re-sorts a merged segment's blocks so that blocks whose
//! signatures are close in feature space land close on disk — a
//! space-filling-curve layout that turns similarity scans into mostly
//! sequential reads. The key is built from the first few signature
//! components (the coarse "prefix" of the vector): each component is
//! quantized against a global per-component range, and the quantized
//! bits are interleaved so that Hamming-adjacent keys are
//! Euclid-adjacent prefixes.
//!
//! The curve only has to *correlate* with similarity, not preserve it
//! exactly: block order never affects query results (the k-NN total
//! order is `(distance, node, window)`, independent of storage order —
//! pinned by the compaction parity tests), so any key here is correct;
//! better keys just read fewer pages.

/// How many leading signature components participate in the key. 64
/// key bits divide evenly among at most this many components.
pub const MORTON_MAX_COMPONENTS: usize = 8;

/// Per-component `[min, max]` ranges the quantizer maps against.
#[derive(Debug, Clone)]
pub struct MortonBounds {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MortonBounds {
    /// Starts an empty bound set over the first `min(dim, 8)`
    /// components of a `dim`-dimensional signature.
    pub fn new(dim: usize) -> Self {
        let comps = dim.clamp(1, MORTON_MAX_COMPONENTS);
        Self {
            mins: vec![f64::INFINITY; comps],
            maxs: vec![f64::NEG_INFINITY; comps],
        }
    }

    /// Widens the bounds to cover `vector` (only its tracked prefix).
    /// Non-finite components are ignored — they quantize to 0 later.
    pub fn observe(&mut self, vector: &[f64]) {
        for (i, &v) in vector.iter().take(self.mins.len()).enumerate() {
            if v.is_finite() {
                self.mins[i] = self.mins[i].min(v);
                self.maxs[i] = self.maxs[i].max(v);
            }
        }
    }

    /// Number of components participating in keys from these bounds.
    pub fn components(&self) -> usize {
        self.mins.len()
    }

    /// The Morton key for `vector` under these bounds: each tracked
    /// component quantized to `64 / components` bits, bit-interleaved
    /// LSB-first so the high key bits hold every component's high bit.
    pub fn key(&self, vector: &[f64]) -> u64 {
        let comps = self.mins.len();
        let bits = (64 / comps) as u32;
        let top = (1u64 << bits) - 1;
        let mut key = 0u64;
        for (i, (&min, &max)) in self.mins.iter().zip(&self.maxs).enumerate() {
            let v = vector.get(i).copied().unwrap_or(min);
            let q = if max <= min || !v.is_finite() {
                // Degenerate range (constant component, or no finite
                // observations) — every vector quantizes the same.
                0
            } else {
                let t = ((v - min) / (max - min)).clamp(0.0, 1.0);
                ((t * top as f64).round() as u64).min(top)
            };
            // Interleave: component i's bit b lands at key bit
            // b*comps + i, so sorting by key cycles through components
            // from their most significant bits downward.
            for b in 0..bits {
                key |= ((q >> b) & 1) << (b as usize * comps + i);
            }
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds(dim: usize, lo: f64, hi: f64) -> MortonBounds {
        let mut b = MortonBounds::new(dim);
        b.observe(&vec![lo; dim]);
        b.observe(&vec![hi; dim]);
        b
    }

    #[test]
    fn nearby_vectors_get_nearby_keys() {
        let b = bounds(4, 0.0, 1.0);
        let base = b.key(&[0.5, 0.5, 0.5, 0.5]);
        let near = b.key(&[0.501, 0.5, 0.5, 0.5]);
        let far = b.key(&[0.99, 0.01, 0.99, 0.01]);
        assert!(base.abs_diff(near) < base.abs_diff(far));
    }

    #[test]
    fn keys_are_monotone_along_one_axis() {
        let b = bounds(2, 0.0, 1.0);
        let mut prev = 0u64;
        for i in 0..100 {
            let k = b.key(&[i as f64 / 99.0, 0.0]);
            assert!(k >= prev, "key regressed at step {i}");
            prev = k;
        }
    }

    #[test]
    fn degenerate_ranges_and_nan_do_not_panic() {
        let mut b = MortonBounds::new(3);
        // No observations at all: every key is 0.
        assert_eq!(b.key(&[1.0, 2.0, 3.0]), 0);
        b.observe(&[f64::NAN, 5.0, 5.0]);
        b.observe(&[f64::NAN, 5.0, 9.0]);
        // Constant + NaN components quantize to 0; the varying one works.
        let lo = b.key(&[0.0, 5.0, 5.0]);
        let hi = b.key(&[0.0, 5.0, 9.0]);
        assert!(hi > lo);
        // Short and long vectors are tolerated.
        let _ = b.key(&[1.0]);
        let _ = b.key(&[1.0; 16]);
    }

    #[test]
    fn wide_dimensions_cap_at_eight_components() {
        let b = bounds(32, 0.0, 1.0);
        assert_eq!(b.components(), MORTON_MAX_COMPONENTS);
        // Components beyond the cap do not affect the key.
        let mut v1 = vec![0.25; 32];
        let mut v2 = vec![0.25; 32];
        v1[20] = 0.9;
        v2[20] = 0.1;
        assert_eq!(b.key(&v1), b.key(&v2));
    }
}
