//! Persistent compressed signature store and k-NN similarity queries.
//!
//! The paper's thesis is that CS signatures are a ~100x-compressed,
//! information-preserving representation of HPC telemetry that downstream
//! analytics can run on directly. This crate supplies the missing
//! substrate for that claim at fleet scale: instead of `FleetEvent`s
//! evaporating out of transient `Vec`s, a [`SignatureStore`] persists
//! them into an append-only, versioned, columnar on-disk format — exact
//! `f64` or `u8`/`u16` quantized, CRC-guarded, window axis delta+bitpack
//! encoded — and a [`SignatureIndex`] answers *nearest historical state*
//! queries (exact or via a coarse-quantizer inverted-list index) and
//! feeds random-forest training straight from disk.
//!
//! Three layers:
//!
//! * the internal `format` module — the `.cws` segment file format; see
//!   the table in the repository README. Damaged or truncated files
//!   surface [`StoreError::Corrupt`], never a panic.
//! * [`SignatureStore`] — ingest (a
//!   [`FleetSink`](cwsmooth_core::fleet::FleetSink), allocation-free in
//!   steady state), segment roll-over, retention, reopen-from-disk crash
//!   recovery, indexed range scans.
//! * [`SignatureIndex`] — exact and coarse-quantized k-NN under
//!   [`Distance::L2`] or [`Distance::Pearson`], plus
//!   [`SignatureStore::extract_training_set`] /
//!   [`SignatureStore::train_classifier`] for the ODA model loop.
//!
//! # End to end
//!
//! ```
//! use cwsmooth_core::cs::{CsMethod, CsTrainer};
//! use cwsmooth_core::fleet::FleetEngine;
//! use cwsmooth_data::WindowSpec;
//! use cwsmooth_linalg::Matrix;
//! use cwsmooth_store::{Distance, Encoding, SignatureIndex, SignatureStore, StoreConfig};
//!
//! // One tiny "fleet": 3 nodes sharing a trained model.
//! let history = Matrix::from_fn(4, 64, |r, c| ((c + r) as f64 / 5.0).sin() + r as f64);
//! let method = CsMethod::new(CsTrainer::default().train(&history).unwrap(), 2).unwrap();
//! let spec = WindowSpec::new(8, 4).unwrap();
//! let mut engine = FleetEngine::homogeneous(method, 3, spec).unwrap();
//!
//! let dir = std::env::temp_dir().join(format!("cws-lib-doc-{}", std::process::id()));
//! let cfg = StoreConfig::default().with_encoding(Encoding::Quant16);
//! let mut store = SignatureStore::open(&dir, spec, 2, cfg).unwrap();
//!
//! // Stream frames; completed windows land in the store, not a Vec.
//! let mut frame = engine.frame();
//! for t in 0..40usize {
//!     frame.clear();
//!     for node in 0..3 {
//!         let col: Vec<f64> = (0..4).map(|r| ((t + r) as f64 / 5.0).sin() + r as f64).collect();
//!         frame.set(node, &col).unwrap();
//!     }
//!     engine.ingest_frame_sink(&frame, &mut store).unwrap();
//! }
//! store.flush().unwrap();
//! assert_eq!(store.stats().events, engine.stats().events);
//!
//! // Similarity query: the nearest historical states to a live signature.
//! let index = SignatureIndex::build(&store, Distance::L2).unwrap();
//! let probe = index.query(&vec![0.5; 4], 3).unwrap();
//! assert_eq!(probe.len(), 3);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

mod crc;
mod format;

pub mod codec;
pub mod compact;
pub mod error;
pub mod mmap;
pub mod morton;
pub mod query;
pub mod sidecar;
pub mod store;

pub use codec::BlockCodec;
pub use compact::{CompactionStats, Compactor, CompactorConfig};
pub use error::{Result, StoreError};
pub use format::Encoding;
pub use mmap::SegmentView;
pub use query::{Distance, Neighbor, SignatureIndex};
pub use store::{RecoveryReport, SegmentStat, SignatureStore, StoreConfig, StoreStats};
