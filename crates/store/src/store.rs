//! The persistent signature store: durable, compressed, queryable.
//!
//! A [`SignatureStore`] owns a directory of append-only segment files
//! (`seg-<id>.cws`, the internal `format` module) plus an in-memory write path:
//! per-node staging buffers that batch each node's signatures into
//! columnar blocks. The ingest hot path ([`SignatureStore::push`], also
//! reachable through the [`FleetSink`] impl) is allocation-free in steady
//! state — buffers, the encode scratch and the block index are reused or
//! pre-reserved, so the allocator is touched only while capacities warm
//! up or when a segment rolls over.
//!
//! ```text
//!  FleetEngine ──ingest_frame_sink──► SignatureStore
//!                                       │ per-node staging (block_events)
//!                                       ▼
//!                        seg-00000001.cws  [node blocks ...]   sealed
//!                        seg-00000002.cws  [node blocks ...]   sealed
//!                        seg-00000003.cws  [node blocks ...]   active
//!                                       ▲
//!               BlockEntry index: (node, window range) → file offset
//! ```
//!
//! Durability model: [`SignatureStore::flush`] pushes all staged events
//! into the active file; a process kill between flushes loses only the
//! staged tail. [`SignatureStore::open`] recovers a directory written by
//! a killed process — a cleanly truncated final segment is cut back to
//! its last complete block (reported in [`RecoveryReport`]), while CRC
//! corruption anywhere surfaces [`StoreError::Corrupt`].

use crate::error::{Result, StoreError};
use crate::format::{self, BlockRef, Encoding, FileHeader, FILE_HEADER_LEN};
use crate::mmap::SegmentView;
use crate::sidecar::{self, SegSidecar};
use cwsmooth_core::cs::CsSignature;
use cwsmooth_core::error::CoreError;
use cwsmooth_core::fleet::{FleetEvent, FleetSink};
use cwsmooth_data::WindowSpec;
use cwsmooth_linalg::Matrix;
use cwsmooth_ml::forest::{ForestConfig, RandomForestClassifier};
use cwsmooth_obs::{Observe, Snapshot};
use std::fs::File;
use std::io::{Read as _, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Write-path configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Value encoding for newly written segments (existing segments keep
    /// the encoding recorded in their header).
    pub encoding: Encoding,
    /// Events a node stages before its block is written out.
    pub block_events: usize,
    /// Events after which the active segment is sealed and a new one
    /// started.
    pub segment_events: u64,
    /// Retention: maximum number of sealed segments kept on disk
    /// (oldest-first eviction; `0` disables retention).
    pub max_segments: usize,
    /// Highest accepted node id + 1. Node ids index a dense staging
    /// table, so this bounds the table a stray id can force the store
    /// to allocate; pushes beyond it are rejected with
    /// [`StoreError::Invalid`] instead of aborting on an absurd
    /// allocation. Raise it for fleets above a million nodes.
    pub max_nodes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            encoding: Encoding::Exact,
            block_events: 256,
            segment_events: 65_536,
            max_segments: 0,
            max_nodes: 1 << 20,
        }
    }
}

impl StoreConfig {
    /// Builder-style encoding override.
    pub fn with_encoding(mut self, encoding: Encoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Builder-style block capacity override.
    pub fn with_block_events(mut self, block_events: usize) -> Self {
        self.block_events = block_events;
        self
    }

    /// Builder-style segment capacity override.
    pub fn with_segment_events(mut self, segment_events: u64) -> Self {
        self.segment_events = segment_events;
        self
    }

    /// Builder-style retention override.
    pub fn with_max_segments(mut self, max_segments: usize) -> Self {
        self.max_segments = max_segments;
        self
    }

    /// Builder-style node-id bound override.
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }
}

/// Lifetime ingest counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Events accepted (staged or written).
    pub events: u64,
    /// Columnar blocks written to disk.
    pub blocks: u64,
    /// Bytes appended to segment files.
    pub bytes_written: u64,
    /// Segments sealed.
    pub segments_sealed: u64,
    /// Segments evicted by retention.
    pub segments_dropped: u64,
    /// Events lost to retention eviction.
    pub events_dropped: u64,
}

/// What [`SignatureStore::open`] found and repaired on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files recovered.
    pub segments: usize,
    /// Events recovered across all segments.
    pub events: u64,
    /// Bytes cut from a cleanly truncated final segment (crash tail).
    pub bytes_truncated: u64,
    /// Useless segment files removed at open: headerless crash leftovers
    /// and header-only segments a previous process never wrote to.
    pub segments_removed: usize,
    /// Interrupted compactions whose rename had landed: the duplicate
    /// input segments were removed at open.
    pub compactions_rolled_forward: usize,
    /// Interrupted compactions whose rename had not happened: the merge
    /// temporary was discarded, inputs untouched.
    pub compactions_rolled_back: usize,
    /// Orphaned merge temporaries and stale sidecar files swept at open.
    pub orphans_removed: usize,
    /// Segments whose block index was loaded from a `seg-<id>.idx`
    /// sidecar instead of a full file parse.
    pub sidecars_used: usize,
}

/// One block's index entry: where a (node, window-range) run lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlockEntry {
    pub(crate) node: u32,
    pub(crate) first_window: u64,
    /// Upper bound on the block's last window (exact when written by this
    /// process, a parse-time bound after recovery).
    pub(crate) last_window: u64,
    pub(crate) offset: u64,
    /// Byte length of the whole block (header through CRC) — lets reads
    /// seek straight to a block without scanning the file.
    pub(crate) len: u32,
}

/// A segment and its block index.
#[derive(Debug)]
struct SegmentState {
    id: u64,
    path: PathBuf,
    header: FileHeader,
    events: u64,
    bytes: u64,
    entries: Vec<BlockEntry>,
    /// Zero-copy view of the file — present for sealed segments only
    /// (the active segment is still being appended through its `File`).
    view: Option<SegmentView>,
    /// One bit per entry: set once that block's CRC has been verified.
    /// `None` means every block was already verified (the segment was
    /// fully parsed at open, or written/merged by this process). Blocks
    /// indexed from a sidecar skip the open-time CRC pass and validate
    /// lazily on first touch instead.
    validated: Option<Box<[AtomicU64]>>,
}

/// A fresh all-zero validation bitmap for `n` blocks.
fn validation_bitmap(n: usize) -> Box<[AtomicU64]> {
    (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect()
}

impl SegmentState {
    /// Whether block `i`'s CRC has already been verified.
    fn is_validated(&self, i: usize) -> bool {
        match &self.validated {
            None => true,
            // Relaxed: the bitmap is a monotonic cache — a racing reader
            // that misses a freshly set bit merely re-verifies one CRC;
            // no other memory is published through these bits.
            Some(bits) => (bits[i / 64].load(Ordering::Relaxed) >> (i % 64)) & 1 == 1,
        }
    }

    /// Records that block `i`'s CRC held.
    fn mark_validated(&self, i: usize) {
        if let Some(bits) = &self.validated {
            // Relaxed: see `is_validated` — the bit is advisory.
            bits[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
        }
    }
}

/// Public per-segment summary (see [`SignatureStore::segments`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentStat {
    /// Monotonic segment id (file `seg-<id>.cws`).
    pub id: u64,
    /// Events stored in the segment.
    pub events: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// `false` for the segment currently being appended to.
    pub sealed: bool,
}

/// Per-node staging buffer (reused across blocks and segments).
#[derive(Debug, Default)]
struct NodeBuf {
    windows: Vec<u64>,
    values: Vec<f64>,
    /// Most recent window accepted for this node (monotonicity guard).
    last_window: Option<u64>,
}

/// Durable, compressed store for fleet signature events. See the module
/// docs for the write path and durability model.
///
/// # Example
///
/// ```
/// use cwsmooth_store::{Encoding, SignatureStore, StoreConfig};
/// use cwsmooth_core::cs::CsSignature;
/// use cwsmooth_data::WindowSpec;
///
/// let dir = std::env::temp_dir().join(format!("cws-doc-{}", std::process::id()));
/// let spec = WindowSpec::new(30, 10).unwrap();
/// let cfg = StoreConfig::default().with_encoding(Encoding::Quant16);
/// let mut store = SignatureStore::open(&dir, spec, 2, cfg).unwrap();
///
/// let sig = CsSignature { re: vec![0.5, 0.25], im: vec![0.0, -0.125] };
/// store.push(3, 0, &sig).unwrap();
/// store.flush().unwrap();
/// assert_eq!(store.stats().events, 1);
///
/// // Reopen from disk: the event is still there.
/// drop(store);
/// let store = SignatureStore::open(&dir, spec, 2, cfg).unwrap();
/// assert_eq!(store.recovery().events, 1);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct SignatureStore {
    dir: PathBuf,
    cfg: StoreConfig,
    l: usize,
    dim: usize,
    spec: WindowSpec,
    sealed: Vec<SegmentState>,
    active: SegmentState,
    active_file: File,
    node_bufs: Vec<NodeBuf>,
    staged_events: u64,
    next_id: u64,
    scratch: Vec<u8>,
    stats: StoreStats,
    recovery: RecoveryReport,
    /// Set when a failed append could not be rolled back: the file and
    /// the in-memory index may disagree, so further writes are refused.
    poisoned: bool,
    /// Ids of sealed segments an in-flight compaction is reading.
    /// Retention defers evicting them until the merge settles.
    compacting: Vec<u64>,
}

pub(crate) fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.cws"))
}

fn segment_id(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let id = name.strip_prefix("seg-")?.strip_suffix(".cws")?;
    id.parse().ok()
}

impl SignatureStore {
    /// Opens (or creates) a store rooted at `dir` for signatures of `l`
    /// blocks produced under `spec`. Existing segments are validated
    /// (geometry must match, CRCs must hold) and indexed; a cleanly
    /// truncated final segment — the signature of a killed writer — is
    /// cut back to its last complete block. A fresh active segment is
    /// started after the highest recovered id.
    pub fn open(
        dir: impl AsRef<Path>,
        spec: WindowSpec,
        l: usize,
        cfg: StoreConfig,
    ) -> Result<Self> {
        if l == 0 {
            return Err(StoreError::Invalid(
                "signature block count l must be >= 1".into(),
            ));
        }
        if l as u64 > format::MAX_L as u64 {
            return Err(StoreError::Invalid(format!(
                "signature block count {l} exceeds the format bound {}",
                format::MAX_L
            )));
        }
        if cfg.block_events == 0 || cfg.segment_events == 0 {
            return Err(StoreError::Invalid(
                "block_events and segment_events must be >= 1".into(),
            ));
        }
        if cfg.block_events as u64 > format::MAX_BLOCK_COUNT as u64 {
            return Err(StoreError::Invalid(format!(
                "block_events {} exceeds the format bound {}",
                cfg.block_events,
                format::MAX_BLOCK_COUNT
            )));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        // Settle any compaction the previous process died inside of —
        // after this, every segment file is whole and appears exactly
        // once, so the scan below never sees duplicated events.
        let compactions = sidecar::recover_compaction(&dir)?;

        let mut ids: Vec<u64> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| segment_id(&e.path()))
            .collect();
        ids.sort_unstable();

        let mut sealed = Vec::new();
        let mut recovery = RecoveryReport {
            compactions_rolled_forward: compactions.rolled_forward,
            compactions_rolled_back: compactions.rolled_back,
            orphans_removed: compactions.orphans_removed,
            ..RecoveryReport::default()
        };
        for (i, &id) in ids.iter().enumerate() {
            let last = i + 1 == ids.len();
            let path = segment_path(&dir, id);
            let (state, cut, sidecar_used) = Self::recover_segment(&dir, &path, id, spec, l, last)?;
            recovery.bytes_truncated += cut;
            recovery.sidecars_used += usize::from(sidecar_used);
            match state {
                Some(state) if state.events > 0 => {
                    recovery.segments += 1;
                    recovery.events += state.events;
                    sealed.push(state);
                }
                Some(state) => {
                    // Header-only segment (e.g. an active file the previous
                    // process never wrote to): holding on to it would let
                    // empty files pile up across open/close cycles and eat
                    // into the retention budget — remove it instead.
                    std::fs::remove_file(&state.path)?;
                    recovery.segments_removed += 1;
                }
                None => {
                    // Headerless crash leftover, already removed.
                    recovery.segments_removed += 1;
                }
            }
        }

        let next_id = ids.last().map_or(1, |&id| id + 1);
        let (active, active_file) = Self::start_segment(&dir, next_id, spec, l, &cfg)?;
        let mut store = Self {
            dir,
            cfg,
            l,
            dim: 2 * l,
            spec,
            sealed,
            active,
            active_file,
            node_bufs: Vec::new(),
            staged_events: 0,
            next_id: next_id + 1,
            scratch: Vec::new(),
            stats: StoreStats::default(),
            recovery,
            poisoned: false,
            compacting: Vec::new(),
        };
        // The configured retention budget holds from the first moment,
        // not only after the next seal — evict excess recovered segments.
        // The recovery report keeps what was *found*; the eviction shows
        // up in `stats().events_dropped` (and hence in `events()`).
        store.enforce_retention()?;
        Ok(store)
    }

    /// Rejects a segment whose geometry does not match the store's.
    fn check_geometry(header: &FileHeader, path: &Path, spec: WindowSpec, l: usize) -> Result<()> {
        if header.l as usize != l || header.wl as usize != spec.wl || header.ws as usize != spec.ws
        {
            return Err(StoreError::Mismatch(format!(
                "segment {} holds l={} wl={} ws={}, store expects l={l} wl={} ws={}",
                path.display(),
                header.l,
                header.wl,
                header.ws,
                spec.wl,
                spec.ws
            )));
        }
        Ok(())
    }

    /// Validates one existing segment, returning its state (or `None`
    /// when the file carried no complete header and was removed — a
    /// crash before the header landed), the bytes cut from a truncated
    /// crash tail, and whether the index came from a sidecar.
    fn recover_segment(
        dir: &Path,
        path: &Path,
        id: u64,
        spec: WindowSpec,
        l: usize,
        last: bool,
    ) -> Result<(Option<SegmentState>, u64, bool)> {
        // Fast path: a sidecar whose fingerprint matches the file proves
        // its index describes exactly these bytes — skip the full parse
        // and CRC pass; block CRCs verify lazily on first touch instead.
        if let Ok(fp) = sidecar::fingerprint_file(path) {
            if fp.len >= FILE_HEADER_LEN as u64 {
                if let Some(state) = Self::open_from_sidecar(dir, path, id, spec, l, fp)? {
                    return Ok((Some(state), 0, true));
                }
            }
        }
        let bytes = std::fs::read(path)?;
        if bytes.len() < FILE_HEADER_LEN && last {
            let cut = bytes.len() as u64;
            std::fs::remove_file(path)?;
            return Ok((None, cut, false));
        }
        let header = FileHeader::parse(&bytes, path)?;
        Self::check_geometry(&header, path, spec, l)?;
        let mut entries = Vec::new();
        let mut events = 0u64;
        let mut offset = FILE_HEADER_LEN as u64;
        let mut truncated = 0u64;
        loop {
            match format::parse_block(&bytes, offset, &header) {
                Ok(None) => break,
                Ok(Some(block)) => {
                    entries.push(BlockEntry {
                        node: block.node,
                        first_window: block.first_window,
                        last_window: block.last_window_upper_bound,
                        offset,
                        len: (block.end - offset) as u32,
                    });
                    events += block.count as u64;
                    offset = block.end;
                }
                Err(e) if e.truncated && last => {
                    // Crash tail: cut the file back to its last complete
                    // block and keep everything before it.
                    truncated = bytes.len() as u64 - offset;
                    let f = std::fs::OpenOptions::new().write(true).open(path)?;
                    f.set_len(offset)?;
                    break;
                }
                Err(e) => return Err(e.into_store_error(path)),
            }
        }
        let mut view = None;
        if events > 0 {
            // Persist the freshly built index so the next open takes the
            // sidecar fast path (best-effort: it is only a cache), and
            // map the now-known-good file for zero-copy reads. Opened
            // after the truncation repair above — mapping first and
            // shrinking the file under the map would fault.
            if let Ok(fp) = sidecar::fingerprint_file(path) {
                let _ = SegSidecar {
                    fingerprint: fp,
                    events,
                    bytes: offset,
                    entries: entries.clone(),
                }
                .save(dir, id);
            }
            view = Some(SegmentView::open(path)?);
        }
        Ok((
            Some(SegmentState {
                id,
                path: path.to_path_buf(),
                header,
                events,
                bytes: offset,
                entries,
                view,
                // The loop above CRC-verified every block.
                validated: None,
            }),
            truncated,
            false,
        ))
    }

    /// The sidecar fast path of [`SignatureStore::recover_segment`]:
    /// `Some(state)` when a fingerprint-matching sidecar fully describes
    /// the file. Geometry mismatches are still hard errors; anything
    /// wrong with the sidecar itself falls back to the full parse.
    fn open_from_sidecar(
        dir: &Path,
        path: &Path,
        id: u64,
        spec: WindowSpec,
        l: usize,
        fp: sidecar::SegFingerprint,
    ) -> Result<Option<SegmentState>> {
        let Some(sc) = SegSidecar::load(dir, id, fp) else {
            return Ok(None);
        };
        if sc.events == 0 || sc.bytes != fp.len {
            return Ok(None);
        }
        // Offsets must stay inside the file the fingerprint measured;
        // a sidecar failing this is damage, so fall back to the scan.
        let bounded = sc.entries.iter().all(|e| {
            e.offset >= FILE_HEADER_LEN as u64
                && e.offset
                    .checked_add(e.len as u64)
                    .is_some_and(|end| end <= sc.bytes)
        });
        if !bounded {
            return Ok(None);
        }
        let view = SegmentView::open(path)?;
        let header = FileHeader::parse(view.bytes(), path)?;
        Self::check_geometry(&header, path, spec, l)?;
        let n = sc.entries.len();
        Ok(Some(SegmentState {
            id,
            path: path.to_path_buf(),
            header,
            events: sc.events,
            bytes: sc.bytes,
            entries: sc.entries,
            view: Some(view),
            validated: Some(validation_bitmap(n)),
        }))
    }

    fn start_segment(
        dir: &Path,
        id: u64,
        spec: WindowSpec,
        l: usize,
        cfg: &StoreConfig,
    ) -> Result<(SegmentState, File)> {
        let path = segment_path(dir, id);
        let header = FileHeader::current(cfg.encoding, l as u32, spec.wl as u32, spec.ws as u32);
        let mut bytes = Vec::with_capacity(FILE_HEADER_LEN);
        header.write_to(&mut bytes);
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.write_all(&bytes)?;
        // Pre-reserve the block index so steady-state flushes don't grow it.
        let expect_blocks =
            (cfg.segment_events / cfg.block_events.max(1) as u64).min(1 << 20) as usize + 64;
        let entries = Vec::with_capacity(expect_blocks);
        Ok((
            SegmentState {
                id,
                path,
                header,
                events: 0,
                bytes: FILE_HEADER_LEN as u64,
                entries,
                view: None,
                validated: None,
            },
            file,
        ))
    }

    /// Signature block count `l` this store accepts.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Feature dimension of stored events (`2l`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The window geometry recorded in every segment header.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lifetime ingest counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// What [`SignatureStore::open`] found on disk.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Events staged in memory, not yet written to the active segment.
    pub fn staged_events(&self) -> u64 {
        self.staged_events
    }

    /// Total events readable from this store (recovered + ingested −
    /// evicted).
    pub fn events(&self) -> u64 {
        self.recovery.events + self.stats.events - self.stats.events_dropped
    }

    /// Bytes currently on disk across all segments.
    pub fn bytes_on_disk(&self) -> u64 {
        self.sealed.iter().map(|s| s.bytes).sum::<u64>() + self.active.bytes
    }

    /// Per-segment summaries, oldest first (active segment last).
    pub fn segments(&self) -> Vec<SegmentStat> {
        let mut out: Vec<SegmentStat> = self
            .sealed
            .iter()
            .map(|s| SegmentStat {
                id: s.id,
                events: s.events,
                bytes: s.bytes,
                sealed: true,
            })
            .collect();
        out.push(SegmentStat {
            id: self.active.id,
            events: self.active.events + self.staged_events,
            bytes: self.active.bytes,
            sealed: false,
        });
        out
    }

    /// Appends one signature event. `window_index` must be strictly
    /// greater than the node's previous event (streams are time-ordered);
    /// the guard spans segment rolls but not process restarts — a
    /// reopened store accepts any starting index per node.
    /// Allocation-free in steady state.
    pub fn push(&mut self, node: u32, window_index: u64, signature: &CsSignature) -> Result<()> {
        if signature.re.len() != self.l || signature.im.len() != self.l {
            return Err(StoreError::Invalid(format!(
                "signature has {} re / {} im blocks, store expects {}",
                signature.re.len(),
                signature.im.len(),
                self.l
            )));
        }
        if signature
            .re
            .iter()
            .chain(&signature.im)
            .any(|v| !v.is_finite())
        {
            return Err(StoreError::Invalid(format!(
                "node {node} window {window_index}: non-finite signature value"
            )));
        }
        let idx = node as usize;
        if idx >= self.cfg.max_nodes {
            return Err(StoreError::Invalid(format!(
                "node id {node} exceeds the configured bound of {} \
                 (StoreConfig::with_max_nodes raises it)",
                self.cfg.max_nodes
            )));
        }
        if idx >= self.node_bufs.len() {
            self.node_bufs.resize_with(idx + 1, NodeBuf::default);
        }
        let buf = &mut self.node_bufs[idx];
        if let Some(last) = buf.last_window {
            if window_index <= last {
                return Err(StoreError::Invalid(format!(
                    "node {node}: window {window_index} after {last} breaks monotonicity"
                )));
            }
        }
        buf.last_window = Some(window_index);
        buf.windows.push(window_index);
        buf.values.extend_from_slice(&signature.re);
        buf.values.extend_from_slice(&signature.im);
        self.staged_events += 1;
        self.stats.events += 1;
        if buf.windows.len() >= self.cfg.block_events {
            self.flush_node(idx)?;
        }
        if self.active.events >= self.cfg.segment_events {
            self.seal()?;
        }
        Ok(())
    }

    /// Writes node `idx`'s staged events out as one block.
    fn flush_node(&mut self, idx: usize) -> Result<()> {
        if self.poisoned {
            return Err(StoreError::Invalid(
                "store poisoned: a failed append could not be rolled back; \
                 reopen the store to recover"
                    .into(),
            ));
        }
        let buf = &mut self.node_bufs[idx];
        if buf.windows.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        format::encode_block(
            &mut self.scratch,
            &self.active.header,
            idx as u32,
            &buf.windows,
            &buf.values,
        )?;
        if let Err(e) = self.active_file.write_all(&self.scratch) {
            // A partial append leaves garbage between the last indexed
            // block and wherever the cursor stopped. Roll the file back
            // to the known-good boundary so a later retry (the events
            // are still staged) appends cleanly; if even that fails,
            // poison the store rather than desync file and index.
            let rolled = self.active_file.set_len(self.active.bytes).is_ok()
                && self
                    .active_file
                    .seek(SeekFrom::Start(self.active.bytes))
                    .is_ok();
            self.poisoned = !rolled;
            return Err(e.into());
        }
        self.active.entries.push(BlockEntry {
            node: idx as u32,
            first_window: buf.windows[0],
            // lint:allow(no-panic-paths): non-empty by the early return
            // at the top of flush_node.
            last_window: *buf.windows.last().unwrap(),
            offset: self.active.bytes,
            len: self.scratch.len() as u32,
        });
        let count = buf.windows.len() as u64;
        self.active.events += count;
        self.active.bytes += self.scratch.len() as u64;
        self.staged_events -= count;
        self.stats.blocks += 1;
        self.stats.bytes_written += self.scratch.len() as u64;
        buf.windows.clear();
        buf.values.clear();
        Ok(())
    }

    /// Writes every staged event to the active segment (possibly as
    /// partial blocks). After `flush`, a process kill loses nothing.
    pub fn flush(&mut self) -> Result<()> {
        for idx in 0..self.node_bufs.len() {
            self.flush_node(idx)?;
        }
        self.active_file.flush()?;
        Ok(())
    }

    /// Flushes, seals the active segment, enforces retention and starts a
    /// new active segment. Per-node window monotonicity persists across
    /// the roll — duplicate or regressing window indexes stay rejected.
    /// A no-op when the active segment holds no events (sealing nothing
    /// would leave header-only files eating into the retention budget).
    pub fn seal(&mut self) -> Result<()> {
        self.flush()?;
        if self.active.events == 0 {
            return Ok(());
        }
        let id = self.next_id;
        self.next_id += 1;
        let (mut next, next_file) =
            Self::start_segment(&self.dir, id, self.spec, self.l, &self.cfg)?;
        std::mem::swap(&mut self.active, &mut next);
        self.active_file = next_file;
        self.stats.segments_sealed += 1;
        // The segment is immutable from here on: map it for zero-copy
        // reads and persist its block index so the next open can skip
        // re-parsing it (the sidecar is only a cache — best-effort).
        if let Ok(fp) = sidecar::fingerprint_file(&next.path) {
            let _ = SegSidecar {
                fingerprint: fp,
                events: next.events,
                bytes: next.bytes,
                entries: next.entries.clone(),
            }
            .save(&self.dir, next.id);
        }
        next.view = Some(SegmentView::open(&next.path)?);
        self.sealed.push(next);
        self.enforce_retention()
    }

    fn enforce_retention(&mut self) -> Result<()> {
        if self.cfg.max_segments == 0 {
            return Ok(());
        }
        while self.sealed.len() > self.cfg.max_segments {
            // An in-flight merge is reading the oldest segments; deleting
            // one mid-merge would fail the merge for nothing. Defer —
            // the commit (or abort) re-runs retention.
            if self.compacting.contains(&self.sealed[0].id) {
                break;
            }
            let oldest = self.sealed.remove(0);
            std::fs::remove_file(&oldest.path)?;
            sidecar::remove_if_exists(&sidecar::seg_sidecar_path(&self.dir, oldest.id))?;
            self.stats.segments_dropped += 1;
            self.stats.events_dropped += oldest.events;
        }
        Ok(())
    }

    /// Visits every stored event as `(node, window_index, features)`,
    /// where `features` is the `[re..., im...]` vector of length
    /// [`SignatureStore::dim`]. Events arrive segment by segment, block
    /// by block (grouped per node, time-ordered within a block), then
    /// the staged (not yet flushed) tail. Staged events pass through
    /// the segment encoding's quantizer on read, so a quantized store
    /// reports the same values before and after the flush.
    pub fn for_each<F>(&self, f: F) -> Result<()>
    where
        F: FnMut(u32, u64, &[f64]),
    {
        self.for_each_in(None, 0..u64::MAX, f)
    }

    /// [`SignatureStore::for_each`] restricted to one node (or all when
    /// `None`) and a window-index range. Uses the in-memory block index
    /// to skip non-matching blocks without decoding them.
    pub fn for_each_in<F>(&self, node: Option<u32>, windows: Range<u64>, mut f: F) -> Result<()>
    where
        F: FnMut(u32, u64, &[f64]),
    {
        let mut win_scratch: Vec<u64> = Vec::new();
        let mut val_scratch: Vec<f64> = Vec::new();
        let mut block_buf: Vec<u8> = Vec::new();
        let mut head_buf = [0u8; FILE_HEADER_LEN];
        for seg in self.sealed.iter().chain(std::iter::once(&self.active)) {
            if seg.events == 0 {
                continue;
            }
            if !seg.entries.iter().any(|e| entry_matches(e, node, &windows)) {
                continue;
            }
            // Sealed segments are mapped: decode straight out of the page
            // cache, no per-query open/seek/read. A block indexed from a
            // sidecar gets its CRC verified on first touch (then the
            // validation bitmap lets later reads skip the checksum).
            if let Some(view) = &seg.view {
                let bytes = view.bytes();
                for (bi, entry) in seg.entries.iter().enumerate() {
                    if !entry_matches(entry, node, &windows) {
                        continue;
                    }
                    let trusted = seg.is_validated(bi);
                    let parsed = if trusted {
                        format::parse_block_trusted(bytes, entry.offset, &seg.header)
                    } else {
                        format::parse_block(bytes, entry.offset, &seg.header)
                    };
                    let block = parsed
                        .map_err(|e| e.into_store_error(&seg.path))?
                        .ok_or_else(|| StoreError::Corrupt {
                            path: seg.path.clone(),
                            offset: entry.offset,
                            message: "indexed block vanished".into(),
                        })?;
                    if !trusted {
                        seg.mark_validated(bi);
                    }
                    emit_block(
                        &block,
                        &seg.header,
                        &windows,
                        &mut win_scratch,
                        &mut val_scratch,
                        &mut f,
                    );
                }
                continue;
            }
            // Unmapped (the active segment): seek-read only the matched
            // blocks — the point of the block index is that a point query
            // on a big segment does not pay whole-file I/O.
            let mut file = File::open(&seg.path)?;
            file.read_exact(&mut head_buf)
                .map_err(|e| StoreError::Corrupt {
                    path: seg.path.clone(),
                    offset: 0,
                    message: format!("segment header unreadable: {e}"),
                })?;
            // Guard against external modification since the index was built.
            let header = FileHeader::parse(&head_buf, &seg.path)?;
            if header != seg.header {
                return Err(StoreError::Mismatch(format!(
                    "segment {} changed on disk since it was indexed",
                    seg.path.display()
                )));
            }
            for entry in &seg.entries {
                if !entry_matches(entry, node, &windows) {
                    continue;
                }
                file.seek(SeekFrom::Start(entry.offset))?;
                block_buf.resize(entry.len as usize, 0);
                file.read_exact(&mut block_buf)
                    .map_err(|e| StoreError::Corrupt {
                        path: seg.path.clone(),
                        offset: entry.offset,
                        message: format!("indexed block unreadable: {e}"),
                    })?;
                let block = format::parse_block(&block_buf, 0, &header)
                    .map_err(|e| {
                        // Re-anchor the error at the block's true offset.
                        format::BlockError {
                            offset: entry.offset + e.offset,
                            ..e
                        }
                        .into_store_error(&seg.path)
                    })?
                    .ok_or_else(|| StoreError::Corrupt {
                        path: seg.path.clone(),
                        offset: entry.offset,
                        message: "indexed block vanished".into(),
                    })?;
                emit_block(
                    &block,
                    &header,
                    &windows,
                    &mut win_scratch,
                    &mut val_scratch,
                    &mut f,
                );
            }
        }
        // Staged tail, pushed through the segment encoding's quantizer
        // on read: what a reader sees now is bit-identical to what it
        // will see after the flush that turns the whole staged buffer
        // into one block.
        let mode = self.active.header.mode;
        for (idx, buf) in self.node_bufs.iter().enumerate() {
            if node.is_some_and(|n| n as usize != idx) {
                continue;
            }
            if !buf.windows.iter().any(|w| windows.contains(w)) {
                continue;
            }
            let values: &[f64] = if mode == Encoding::Exact {
                &buf.values
            } else {
                val_scratch.clear();
                val_scratch.extend_from_slice(&buf.values);
                format::requantize(&mut val_scratch, self.l, mode)?;
                &val_scratch
            };
            for (i, &w) in buf.windows.iter().enumerate() {
                if windows.contains(&w) {
                    f(idx as u32, w, &values[i * self.dim..(i + 1) * self.dim]);
                }
            }
        }
        Ok(())
    }

    /// A cheap digest of the store's readable state: FNV-1a over every
    /// segment's `(id, events, bytes)` plus the staged-event count.
    /// Anything that changes what a scan would return — ingest, seal,
    /// retention, compaction, reopen after a crash — changes it. Used
    /// by the k-NN sidecar to detect staleness.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for seg in self.sealed.iter().chain(std::iter::once(&self.active)) {
            mix(&mut h, seg.id);
            mix(&mut h, seg.events);
            mix(&mut h, seg.bytes);
        }
        mix(&mut h, self.staged_events);
        h
    }

    /// The oldest consecutive run of small sealed segments worth
    /// merging, plus the header the merged output should carry. `None`
    /// when nothing qualifies or a merge is already in flight. Segments
    /// in a run share an encoding mode (blocks are re-framed, never
    /// re-encoded, so modes cannot mix inside one output file).
    pub(crate) fn compaction_candidates(
        &self,
        min_inputs: usize,
        max_inputs: usize,
        small_events: Option<u64>,
    ) -> Option<(Vec<(u64, PathBuf)>, FileHeader)> {
        if !self.compacting.is_empty() {
            return None;
        }
        let threshold = small_events.unwrap_or(self.cfg.segment_events);
        let (mut start, mut len) = (0usize, 0usize);
        for (i, seg) in self.sealed.iter().enumerate() {
            let small = seg.events > 0 && seg.events < threshold;
            if !small {
                if len >= min_inputs {
                    break;
                }
                len = 0;
                continue;
            }
            if len > 0 && seg.header.mode != self.sealed[start].header.mode {
                if len >= min_inputs {
                    break;
                }
                start = i;
                len = 1;
            } else {
                if len == 0 {
                    start = i;
                }
                len += 1;
            }
            if len == max_inputs {
                break;
            }
        }
        if len < min_inputs {
            return None;
        }
        let run = &self.sealed[start..start + len];
        let header = FileHeader::current(
            run[0].header.mode,
            self.l as u32,
            self.spec.wl as u32,
            self.spec.ws as u32,
        );
        Some((run.iter().map(|s| (s.id, s.path.clone())).collect(), header))
    }

    /// Reserves `ids` for an in-flight merge (retention will not evict
    /// them until [`SignatureStore::clear_compacting`]).
    pub(crate) fn mark_compacting(&mut self, ids: &[u64]) {
        self.compacting = ids.to_vec();
    }

    /// Releases the compaction reservation.
    pub(crate) fn clear_compacting(&mut self) {
        self.compacting.clear();
    }

    /// Commits a finished merge: intent record (fsynced), atomic rename
    /// of the temporary over the oldest input, removal of the now
    /// duplicate inputs, fresh sidecar, index splice. Returns `false`
    /// (discarding nothing but the temporary's claim — the caller
    /// deletes it) when the inputs are no longer exactly the sealed
    /// segments that were merged, in which case the store is unchanged.
    pub(crate) fn apply_compaction(&mut self, out: &crate::compact::MergeOutput) -> Result<bool> {
        let Some(first) = self.sealed.iter().position(|s| s.id == out.output) else {
            return Ok(false);
        };
        let span = first..first + out.inputs.len();
        if span.end > self.sealed.len()
            || !self.sealed[span.clone()]
                .iter()
                .zip(&out.inputs)
                .all(|(s, &id)| s.id == id)
        {
            return Ok(false);
        }
        // Intent first, fully synced: after this line a crash at any
        // point is repaired by `recover_compaction` at the next open.
        sidecar::CompactionIntent {
            output: out.output,
            inputs: out.inputs.clone(),
        }
        .save(&self.dir)?;
        let out_path = segment_path(&self.dir, out.output);
        std::fs::rename(&out.tmp, &out_path)?;
        for &id in &out.inputs {
            if id != out.output {
                sidecar::remove_if_exists(&segment_path(&self.dir, id))?;
            }
            sidecar::remove_if_exists(&sidecar::seg_sidecar_path(&self.dir, id))?;
        }
        sidecar::sync_dir(&self.dir);
        let view = SegmentView::open(&out_path)?;
        if let Ok(fp) = sidecar::fingerprint_file(&out_path) {
            let _ = SegSidecar {
                fingerprint: fp,
                events: out.events,
                bytes: out.bytes,
                entries: out.entries.clone(),
            }
            .save(&self.dir, out.output);
        }
        sidecar::remove_if_exists(&sidecar::intent_path(&self.dir, out.output))?;
        let state = SegmentState {
            id: out.output,
            path: out_path,
            header: out.header,
            events: out.events,
            bytes: out.bytes,
            entries: out.entries.clone(),
            view: Some(view),
            // The merge CRC-verified every input block it re-framed.
            validated: None,
        };
        self.sealed.splice(span, std::iter::once(state));
        // Retention deferred while the inputs were reserved; settle now.
        self.enforce_retention()?;
        Ok(true)
    }

    /// Builds a labelled training set by running `label` over every
    /// stored event; events mapped to `None` are skipped. Returns a
    /// row-per-sample feature matrix and the class vector — exactly the
    /// shape [`RandomForestClassifier::fit`] consumes.
    pub fn extract_training_set<F>(&self, mut label: F) -> Result<(Matrix, Vec<usize>)>
    where
        F: FnMut(u32, u64, &[f64]) -> Option<usize>,
    {
        let mut flat: Vec<f64> = Vec::new();
        let mut y: Vec<usize> = Vec::new();
        self.for_each(|node, window, features| {
            if let Some(class) = label(node, window, features) {
                flat.extend_from_slice(features);
                y.push(class);
            }
        })?;
        if y.is_empty() {
            return Err(StoreError::Invalid(
                "no stored event was labelled; nothing to train on".into(),
            ));
        }
        let x = Matrix::from_vec(y.len(), self.dim, flat)
            .map_err(|e| StoreError::Invalid(e.to_string()))?;
        Ok((x, y))
    }

    /// Trains a random forest classifier straight from the store: the
    /// paper's fault-classification workload running on persisted
    /// signatures instead of a transient feature matrix.
    pub fn train_classifier<F>(
        &self,
        config: ForestConfig,
        label: F,
    ) -> Result<RandomForestClassifier>
    where
        F: FnMut(u32, u64, &[f64]) -> Option<usize>,
    {
        let (x, y) = self.extract_training_set(label)?;
        let mut rf = RandomForestClassifier::with_config(config);
        rf.fit(&x, &y)
            .map_err(|e| StoreError::Invalid(format!("forest training failed: {e}")))?;
        Ok(rf)
    }
}

fn entry_matches(e: &BlockEntry, node: Option<u32>, windows: &Range<u64>) -> bool {
    node.is_none_or(|n| n == e.node)
        && e.first_window < windows.end
        && e.last_window >= windows.start
}

fn emit_block<F>(
    block: &BlockRef<'_>,
    header: &FileHeader,
    range: &Range<u64>,
    win_scratch: &mut Vec<u64>,
    val_scratch: &mut Vec<f64>,
    f: &mut F,
) where
    F: FnMut(u32, u64, &[f64]),
{
    win_scratch.clear();
    val_scratch.clear();
    format::decode_block(block, header, win_scratch, val_scratch);
    let dim = 2 * header.l as usize;
    for (i, &w) in win_scratch.iter().enumerate() {
        if range.contains(&w) {
            f(block.node, w, &val_scratch[i * dim..(i + 1) * dim]);
        }
    }
}

impl FleetSink for SignatureStore {
    fn on_event(&mut self, event: &FleetEvent) -> cwsmooth_core::error::Result<()> {
        self.push(
            event.node as u32,
            event.window_index as u64,
            &event.signature,
        )
        .map_err(|e| CoreError::Persist(format!("signature store rejected event: {e}")))
    }
}

/// Snapshot of the store's state under `stage="store"`: segment and
/// byte gauges, lifetime counters, and `cws_store_compression_ratio` —
/// raw event bytes (`events × dim × 8`, what an uncompressed f64 dump
/// would take) over bytes currently on disk. The ratio is `0` until the
/// first flush puts bytes on disk.
impl Observe for SignatureStore {
    fn observe(&self, out: &mut Snapshot) {
        let labels = &[("stage", "store")];
        // Sealed segments plus the always-present active one.
        let segments = self.sealed.len() as u64 + 1;
        let events = self.events();
        let disk = self.bytes_on_disk();
        let raw = events.saturating_mul(self.dim as u64).saturating_mul(8);
        let ratio = if disk == 0 {
            0.0
        } else {
            raw as f64 / disk as f64
        };
        out.gauge("cws_store_segments", labels, segments as f64);
        out.gauge("cws_store_events", labels, events as f64);
        out.gauge("cws_store_bytes_on_disk", labels, disk as f64);
        out.gauge("cws_store_staged_events", labels, self.staged_events as f64);
        out.gauge("cws_store_compression_ratio", labels, ratio);
        out.counter("cws_store_events_total", labels, self.stats.events);
        out.counter("cws_store_blocks_total", labels, self.stats.blocks);
        out.counter(
            "cws_store_bytes_written_total",
            labels,
            self.stats.bytes_written,
        );
        out.counter(
            "cws_store_segments_sealed_total",
            labels,
            self.stats.segments_sealed,
        );
        out.counter(
            "cws_store_events_dropped_total",
            labels,
            self.stats.events_dropped,
        );
    }
}

impl Drop for SignatureStore {
    /// Best-effort flush of the staged tail; errors are ignored (call
    /// [`SignatureStore::flush`] explicitly when durability matters).
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cwsmooth-sigstore-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sig(l: usize, seedv: f64) -> CsSignature {
        CsSignature {
            re: (0..l)
                .map(|i| ((seedv + i as f64) * 0.7).sin() * 0.5 + 0.5)
                .collect(),
            im: (0..l)
                .map(|i| ((seedv - i as f64) * 0.3).cos() * 0.01)
                .collect(),
        }
    }

    fn spec() -> WindowSpec {
        WindowSpec::new(30, 10).unwrap()
    }

    fn collect(store: &SignatureStore) -> Vec<(u32, u64, Vec<f64>)> {
        let mut out = Vec::new();
        store
            .for_each(|n, w, v| out.push((n, w, v.to_vec())))
            .unwrap();
        out.sort_by_key(|&(n, w, _)| (n, w));
        out
    }

    #[test]
    fn store_is_send() {
        // The off-thread transport (`cwsmooth_core::transport::QueueSink`)
        // moves the store onto a consumer thread; this pins the `Send`
        // bound so a future `Rc`/raw-pointer field can't silently take
        // that ability away.
        fn assert_send<T: Send>() {}
        assert_send::<SignatureStore>();
    }

    #[test]
    fn observe_reports_segments_bytes_and_compression() {
        use cwsmooth_obs::Value;

        let dir = tmpdir("observe");
        let mut store = SignatureStore::open(&dir, spec(), 2, StoreConfig::default()).unwrap();
        for w in 0..8u64 {
            store.push(0, w, &sig(2, w as f64)).unwrap();
        }
        store.flush().unwrap();
        let mut snap = Snapshot::new();
        store.observe(&mut snap);
        let value = |name: &str| {
            snap.samples()
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.value.clone())
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(value("cws_store_segments"), Value::Gauge(1.0));
        assert_eq!(value("cws_store_events"), Value::Gauge(8.0));
        assert_eq!(value("cws_store_events_total"), Value::Counter(8));
        assert_eq!(value("cws_store_staged_events"), Value::Gauge(0.0));
        let Value::Gauge(disk) = value("cws_store_bytes_on_disk") else {
            panic!("bytes_on_disk must be a gauge");
        };
        assert!(disk > 0.0);
        let Value::Gauge(ratio) = value("cws_store_compression_ratio") else {
            panic!("compression_ratio must be a gauge");
        };
        // raw = 8 events × 4 dims × 8 bytes over whatever landed on disk.
        assert!((ratio - 8.0 * 4.0 * 8.0 / disk).abs() < 1e-12, "{ratio}");
        for s in snap.samples() {
            assert_eq!(s.labels, vec![("stage".to_string(), "store".to_string())]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exact_roundtrip_through_disk_is_bitwise() {
        let dir = tmpdir("exact");
        let cfg = StoreConfig::default().with_block_events(8);
        let mut store = SignatureStore::open(&dir, spec(), 3, cfg).unwrap();
        let mut expect = Vec::new();
        for node in 0..4u32 {
            for w in 0..21u64 {
                let s = sig(3, node as f64 * 13.0 + w as f64);
                store.push(node, w, &s).unwrap();
                let mut v = s.re.clone();
                v.extend_from_slice(&s.im);
                expect.push((node, w, v));
            }
        }
        store.flush().unwrap();
        assert_eq!(store.staged_events(), 0);
        assert_eq!(store.events(), 84);
        let live = collect(&store);
        drop(store);

        let store = SignatureStore::open(&dir, spec(), 3, cfg).unwrap();
        assert_eq!(store.recovery().events, 84);
        assert_eq!(store.recovery().bytes_truncated, 0);
        let back = collect(&store);
        expect.sort_by_key(|&(n, w, _)| (n, w));
        assert_eq!(back, expect);
        assert_eq!(back, live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn staged_tail_is_readable_before_flush() {
        let dir = tmpdir("staged");
        let mut store = SignatureStore::open(&dir, spec(), 2, StoreConfig::default()).unwrap();
        store.push(0, 5, &sig(2, 1.0)).unwrap();
        assert_eq!(store.staged_events(), 1);
        let got = collect(&store);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].0, got[0].1), (0, 5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_staged_reads_match_sealed_reads_bitwise() {
        // PR 4's documented quirk: staged events used to be reported at
        // full precision, so a quantized store's reader saw values
        // change underneath it at every flush. Staged reads now pass
        // through the quantizer — reading before and after the flush
        // must be bit-identical.
        for enc in [Encoding::Quant8, Encoding::Quant16] {
            let dir = tmpdir(&format!("requant-{:?}", enc));
            // Block capacity bigger than what we push: everything stays
            // staged until the explicit flush.
            let cfg = StoreConfig::default()
                .with_encoding(enc)
                .with_block_events(64);
            let mut store = SignatureStore::open(&dir, spec(), 3, cfg).unwrap();
            for node in 0..3u32 {
                for w in 0..10u64 {
                    store
                        .push(node, w, &sig(3, node as f64 * 7.0 + w as f64))
                        .unwrap();
                }
            }
            assert_eq!(store.staged_events(), 30);
            let staged = collect(&store);
            store.flush().unwrap();
            assert_eq!(store.staged_events(), 0);
            let sealed = collect(&store);
            assert_eq!(staged, sealed, "{enc:?} staged reads drifted");
            // And the quantizer really was applied: Quant8 cannot
            // represent the raw values exactly.
            if enc == Encoding::Quant8 {
                let raw = sig(3, 1.0);
                let stored = &staged
                    .iter()
                    .find(|&&(n, w, _)| (n, w) == (0, 1))
                    .unwrap()
                    .2;
                assert_ne!(stored[..3], raw.re[..], "read skipped the quantizer");
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn monotonicity_and_shape_are_enforced() {
        let dir = tmpdir("mono");
        let mut store = SignatureStore::open(&dir, spec(), 2, StoreConfig::default()).unwrap();
        store.push(0, 3, &sig(2, 0.0)).unwrap();
        assert!(store.push(0, 3, &sig(2, 0.0)).is_err());
        assert!(store.push(0, 2, &sig(2, 0.0)).is_err());
        store.push(0, 4, &sig(2, 0.0)).unwrap();
        assert!(store.push(1, 0, &sig(3, 0.0)).is_err());
        let mut bad = sig(2, 0.0);
        bad.im[1] = f64::NAN;
        assert!(store.push(1, 0, &bad).is_err());
        // A stray huge node id is rejected instead of forcing a
        // gigantic dense staging table.
        assert!(store.push(u32::MAX, 0, &sig(2, 0.0)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn monotonicity_survives_segment_rolls() {
        let dir = tmpdir("mono-roll");
        let cfg = StoreConfig::default()
            .with_block_events(2)
            .with_segment_events(4);
        let mut store = SignatureStore::open(&dir, spec(), 1, cfg).unwrap();
        for w in 0..20u64 {
            store.push(0, w, &sig(1, w as f64)).unwrap();
        }
        assert!(
            store.stats().segments_sealed >= 2,
            "premise: rolls happened"
        );
        // Duplicates and regressions stay rejected across the rolls.
        assert!(store.push(0, 19, &sig(1, 0.0)).is_err());
        assert!(store.push(0, 3, &sig(1, 0.0)).is_err());
        store.push(0, 20, &sig(1, 0.0)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_cycles_do_not_accumulate_empty_segments_or_evict_data() {
        let dir = tmpdir("reopen-cycles");
        let cfg = StoreConfig::default().with_max_segments(2);
        let mut store = SignatureStore::open(&dir, spec(), 1, cfg).unwrap();
        for w in 0..10u64 {
            store.push(0, w, &sig(1, w as f64)).unwrap();
        }
        store.flush().unwrap();
        drop(store);
        for _ in 0..5 {
            let store = SignatureStore::open(&dir, spec(), 1, cfg).unwrap();
            drop(store);
        }
        // Only the one data segment (plus its index sidecar) remains on
        // disk; the header-only actives from the idle open/close cycles
        // are gone.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(
            files, 3,
            "data segment + its .idx + current active expected"
        );
        let mut store = SignatureStore::open(&dir, spec(), 1, cfg).unwrap();
        assert_eq!(store.recovery().events, 10);
        // A seal with data present must not let ghost segments push the
        // real one out of the retention budget.
        store.push(1, 0, &sig(1, 9.9)).unwrap();
        store.seal().unwrap();
        assert_eq!(store.events(), 11);
        // Sealing an empty active segment is a no-op.
        let sealed_before = store.stats().segments_sealed;
        store.seal().unwrap();
        assert_eq!(store.stats().segments_sealed, sealed_before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_applies_at_open_not_only_at_seal() {
        let dir = tmpdir("retain-open");
        let unbounded = StoreConfig::default()
            .with_block_events(4)
            .with_segment_events(8);
        let mut store = SignatureStore::open(&dir, spec(), 1, unbounded).unwrap();
        for w in 0..80u64 {
            store.push(0, w, &sig(1, w as f64)).unwrap();
        }
        store.flush().unwrap();
        assert!(store.segments().len() > 5);
        drop(store);
        // Reopen with a tight budget: excess segments are evicted now.
        let store = SignatureStore::open(&dir, spec(), 1, unbounded.with_max_segments(2)).unwrap();
        assert!(store.segments().len() <= 3); // 2 sealed + active
        assert!(store.stats().segments_dropped > 0);
        let got = collect(&store);
        assert_eq!(got.len() as u64, store.events());
        assert_eq!(got.last().unwrap().1, 79, "newest windows survive");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_nodes_is_configurable() {
        let dir = tmpdir("maxnodes");
        let cfg = StoreConfig::default().with_max_nodes(4);
        let mut store = SignatureStore::open(&dir, spec(), 1, cfg).unwrap();
        store.push(3, 0, &sig(1, 0.0)).unwrap();
        assert!(store.push(4, 0, &sig(1, 0.0)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_roll_over_and_retention_evicts() {
        let dir = tmpdir("retain");
        let cfg = StoreConfig::default()
            .with_block_events(4)
            .with_segment_events(16)
            .with_max_segments(2);
        let mut store = SignatureStore::open(&dir, spec(), 1, cfg).unwrap();
        for w in 0..200u64 {
            store.push(0, w, &sig(1, w as f64)).unwrap();
        }
        store.flush().unwrap();
        let stats = store.stats();
        assert!(stats.segments_sealed >= 3, "{stats:?}");
        assert!(stats.segments_dropped >= 1, "{stats:?}");
        assert!(stats.events_dropped > 0);
        let segs = store.segments();
        assert!(segs.len() <= 3); // 2 sealed + active
        assert!(segs.iter().rev().skip(1).all(|s| s.sealed));
        // Readable events match the non-evicted count.
        let got = collect(&store);
        assert_eq!(got.len() as u64, store.events());
        // The *newest* windows survived.
        assert_eq!(got.last().unwrap().1, 199);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn filtered_scan_matches_full_scan() {
        let dir = tmpdir("filter");
        let cfg = StoreConfig::default().with_block_events(8);
        let mut store = SignatureStore::open(&dir, spec(), 2, cfg).unwrap();
        for node in 0..5u32 {
            for w in 0..40u64 {
                store
                    .push(node, w, &sig(2, node as f64 + w as f64 * 0.1))
                    .unwrap();
            }
        }
        store.flush().unwrap();
        let all = collect(&store);
        let mut filtered = Vec::new();
        store
            .for_each_in(Some(3), 10..25, |n, w, v| filtered.push((n, w, v.to_vec())))
            .unwrap();
        filtered.sort_by_key(|&(n, w, _)| (n, w));
        let expect: Vec<_> = all
            .iter()
            .filter(|&&(n, w, _)| n == 3 && (10..25).contains(&w))
            .cloned()
            .collect();
        assert_eq!(filtered.len(), 15);
        assert_eq!(filtered, expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn geometry_mismatch_is_rejected_on_open() {
        let dir = tmpdir("geom");
        let mut store = SignatureStore::open(&dir, spec(), 2, StoreConfig::default()).unwrap();
        store.push(0, 0, &sig(2, 0.0)).unwrap();
        store.flush().unwrap();
        drop(store);
        assert!(matches!(
            SignatureStore::open(&dir, spec(), 3, StoreConfig::default()),
            Err(StoreError::Mismatch(_))
        ));
        assert!(SignatureStore::open(
            &dir,
            WindowSpec::new(8, 4).unwrap(),
            2,
            StoreConfig::default()
        )
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn training_set_extraction_feeds_a_forest() {
        let dir = tmpdir("train");
        let mut store = SignatureStore::open(&dir, spec(), 2, StoreConfig::default()).unwrap();
        // Two separable classes of signatures.
        for w in 0..30u64 {
            let mut hot = sig(2, w as f64);
            hot.re.iter_mut().for_each(|v| *v = 0.9 + 0.05 * (*v - 0.5));
            let mut cold = sig(2, w as f64 + 0.5);
            cold.re
                .iter_mut()
                .for_each(|v| *v = 0.1 + 0.05 * (*v - 0.5));
            store.push(0, w, &hot).unwrap();
            store.push(1, w, &cold).unwrap();
        }
        let (x, y) = store
            .extract_training_set(|node, _, _| Some(node as usize))
            .unwrap();
        assert_eq!(x.shape(), (60, 4));
        assert_eq!(y.len(), 60);
        let rf = store
            .train_classifier(ForestConfig::classification(7), |node, _, _| {
                Some(node as usize)
            })
            .unwrap();
        let pred = rf.predict(&x).unwrap();
        let correct = pred.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(correct as f64 / y.len() as f64 > 0.95);
        // Labelling nothing is an error, not an empty fit.
        assert!(store.extract_training_set(|_, _, _| None).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
