//! CRC-32 (IEEE 802.3 polynomial), the checksum guarding every segment
//! header and block. Table-driven, computed at compile time — no external
//! dependency.

/// 256-entry lookup table for the reflected polynomial `0xEDB88320`.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = (self.state ^ b as u32) & 0xFF;
            self.state = (self.state >> 8) ^ TABLE[idx as usize];
        }
    }

    /// Finalizes and returns the checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"correlation-wise smoothing";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn sensitive_to_any_byte() {
        let mut data = *b"0123456789abcdef";
        let base = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x01;
            assert_ne!(crc32(&data), base, "flip at {i} undetected");
            data[i] ^= 0x01;
        }
    }
}
