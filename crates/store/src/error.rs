//! Error type for the signature store.

use std::fmt;
use std::path::PathBuf;

/// Errors produced while persisting or querying signatures.
///
/// The read path never panics on bad bytes: every structural violation a
/// damaged or truncated file can exhibit surfaces as
/// [`StoreError::Corrupt`].
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A segment file failed structural validation (bad magic, short read,
    /// CRC mismatch, impossible field value).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the record being read when validation failed.
        offset: u64,
        /// What was wrong.
        message: String,
    },
    /// Existing on-disk state disagrees with the requested store geometry
    /// (signature block count or window spec).
    Mismatch(String),
    /// Bad configuration or API misuse (zero block capacity, wrong query
    /// dimension, non-finite signature values, ...).
    Invalid(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Corrupt {
                path,
                offset,
                message,
            } => write!(
                f,
                "corrupt segment {} at byte {offset}: {message}",
                path.display()
            ),
            StoreError::Mismatch(m) => write!(f, "store mismatch: {m}"),
            StoreError::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias for the store layer.
pub type Result<T> = std::result::Result<T, StoreError>;
