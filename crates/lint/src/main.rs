//! The `cwsmooth-lint` CLI.
//!
//! ```text
//! cwsmooth-lint --workspace [--format text|json] [--root DIR]
//! cwsmooth-lint [FILE.rs ...] [--format text|json]
//! cwsmooth-lint --list-rules
//! cwsmooth-lint race-audit [--schedules N]
//! ```
//!
//! Exit code 0 means clean; 1 means diagnostics (or a race-audit
//! violation); 2 means usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cwsmooth_lint::diag::{to_json, Diagnostic};
use cwsmooth_lint::race;
use cwsmooth_lint::rules::{check_file, RULE_NAMES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("race-audit") {
        return race_audit(&args[1..]);
    }

    let mut format_json = false;
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => return usage(&format!("--format expects text|json, got {other:?}")),
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root expects a directory"),
            },
            "--list-rules" => {
                for r in RULE_NAMES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    let root = root.unwrap_or_else(workspace_root);
    if workspace {
        match collect_workspace_files(&root) {
            Ok(found) => files.extend(found),
            Err(e) => {
                eprintln!("cwsmooth-lint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    if files.is_empty() {
        return usage("no input files (pass --workspace or explicit .rs files)");
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(file) {
            Ok(src) => {
                diags.extend(check_file(&rel, &src));
                checked += 1;
            }
            Err(e) => {
                eprintln!("cwsmooth-lint: reading {}: {e}", file.display());
                return ExitCode::from(2);
            }
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    if format_json {
        println!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        eprintln!(
            "cwsmooth-lint: {} file(s) checked, {} diagnostic(s)",
            checked,
            diags.len()
        );
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("cwsmooth-lint: {err}");
    }
    eprintln!(
        "usage: cwsmooth-lint --workspace [--format text|json] [--root DIR]\n\
         \x20      cwsmooth-lint [FILE.rs ...] [--format text|json]\n\
         \x20      cwsmooth-lint --list-rules\n\
         \x20      cwsmooth-lint race-audit [--schedules N]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// The workspace root: two levels above this crate's manifest
/// (`crates/lint` → repo root), falling back to the current directory
/// when the binary is run from an installed location.
fn workspace_root() -> PathBuf {
    let compiled = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if compiled.join("Cargo.toml").exists() {
        // Canonicalize so stripped prefixes produce clean relative paths.
        compiled.canonicalize().unwrap_or(compiled)
    } else {
        PathBuf::from(".")
    }
}

/// All `.rs` files the lint governs: everything under the root except
/// `target/`, VCS metadata, and `shims/` (the shims mimic *external*
/// crates' APIs — rand, rayon, proptest — so workspace conventions like
/// pragma-justified panics do not apply to them).
fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "target" | ".git" | "shims" | "node_modules") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `race-audit`: explore the transport-ring protocol model across the
/// default configuration matrix; any violation (data race, conservation
/// failure, bad drop accounting, broken error latch, deadlock) fails
/// the run with the schedule that produced it.
fn race_audit(args: &[String]) -> ExitCode {
    let mut budget: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--schedules" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => budget = Some(n),
                None => return usage("--schedules expects a number"),
            },
            other => return usage(&format!("unknown race-audit flag {other}")),
        }
    }

    let started = std::time::Instant::now();
    let mut total_schedules = 0u64;
    let mut total_steps = 0u64;
    let mut failed = false;
    for (name, mut cfg) in race::default_matrix() {
        if let Some(n) = budget {
            cfg.max_schedules = n;
        }
        let report = race::explore(cfg);
        total_schedules += report.schedules;
        total_steps += report.steps;
        match &report.violation {
            None => {
                println!(
                    "race-audit: {name}: ok ({} schedules, {} steps{})",
                    report.schedules,
                    report.steps,
                    if report.exhausted { ", exhausted" } else { "" }
                );
            }
            Some((v, schedule)) => {
                failed = true;
                println!(
                    "race-audit: {name}: VIOLATION after {} schedules: {v:?}",
                    report.schedules
                );
                println!(
                    "race-audit: reproducing schedule (thread per branch point): {schedule:?}"
                );
            }
        }
    }
    println!(
        "race-audit: {total_schedules} schedules / {total_steps} steps across {} configs in {:?}",
        race::default_matrix().len(),
        started.elapsed()
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
