//! `race-audit`: deterministic schedule exploration of the transport
//! ring's producer/consumer protocol.
//!
//! `cwsmooth_core::transport`'s `QueueSink` rests on a hand-rolled
//! Vyukov-style bounded ring: five `unsafe` blocks whose soundness is a
//! *protocol* property — slot sequence numbers, published with
//! `Release` and observed with `Acquire`, must serialize every access
//! to the non-atomic slot payloads. No unit test can establish that:
//! the dangerous interleavings are exactly the ones a test scheduler
//! rarely produces. This module re-states the protocol as an explicit
//! step model and explores interleavings exhaustively (up to a
//! per-configuration schedule budget), loom-style but offline and
//! dependency-free:
//!
//! * **Modeled atomics** carry vector clocks: a `Release` store
//!   publishes the writer's clock on the location, an `Acquire` load
//!   joins it — the happens-before relation of the C11 model restricted
//!   to sequentially consistent interleavings.
//! * **Non-atomic cells** (the slot payloads, the latched error) check
//!   on every access that the previous conflicting access
//!   happened-before it; an unordered pair is a **data race**, reported
//!   with the exact schedule that produced it.
//! * **Schedules** are explored by depth-first search over the choice
//!   of which thread performs its next atomic step, with replayable
//!   prefixes and a CHESS-style *preemption bound* (switching away from
//!   a runnable thread costs a preemption; the default bound of 4 keeps
//!   exploration exhaustive while covering every interleaving that
//!   needs at most 4 preemptions — empirically, nearly all real races).
//!   Spinning threads (full ring under `Block`, empty ring) become
//!   *waiting* on the locations they re-read, so every schedule is
//!   finite and livelocks are impossible by construction.
//!
//! Per completed schedule the model checks the transport's contracts:
//! **envelope conservation** (every pushed envelope is delivered,
//! dropped, or drained-after-error exactly once — no leak, no double
//! recycle), **exact drop accounting** under `DropOldest`, and
//! **first-error-wins latching** (a producer that observes failure
//! always finds the latched error). The memory orderings of the four
//! protocol edges are parameters, so the audit can demonstrate that the
//! *correct* orderings pass and a deliberately weakened variant (e.g.
//! `Relaxed` where `Release` is required) fails with a concrete racy
//! schedule — see `crates/lint/tests/race_model.rs`.
//!
//! Scope, honestly stated: the model explores sequentially consistent
//! interleavings with happens-before race detection, bounded by the
//! configured preemption budget. Weak-memory reorderings beyond that
//! (e.g. store buffering visible to `Relaxed` loads) are approximated
//! by the race check, not simulated; the park/unpark wakeup
//! optimization of the real code is abstracted away (it affects
//! liveness, not safety).

/// Memory order of one modeled atomic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOrder {
    /// No synchronization edge.
    Relaxed,
    /// Load half of a synchronizes-with edge.
    Acquire,
    /// Store half of a synchronizes-with edge.
    Release,
}

/// Full-ring policy, mirroring `transport::QueuePolicy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Producer waits for the consumer.
    Block,
    /// Producer evicts the oldest queued envelope and counts it.
    DropOldest,
}

/// One audit configuration: ring shape, workload, policy, and the
/// memory orderings of the protocol's four synchronization edges.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Ring capacity (power of two, ≥ 2).
    pub capacity: usize,
    /// Number of envelopes the producer pushes.
    pub messages: usize,
    /// Full-ring policy.
    pub policy: Policy,
    /// Envelope id (0-based) the inner sink rejects, if any.
    pub poison: Option<u64>,
    /// Producer's slot-sequence publish store (correct: `Release`).
    pub seq_publish: MemOrder,
    /// Slot-sequence loads on both ends (correct: `Acquire`).
    pub seq_acquire: MemOrder,
    /// Consumer's slot-sequence free store (correct: `Release`).
    pub seq_free: MemOrder,
    /// `done` flag store/load pair (correct: `Release`/`Acquire`).
    ///
    /// Known blind spot: weakening this to `Relaxed` is *not* caught.
    /// Every payload already rides a Release/Acquire edge on its slot's
    /// sequence word, so under SC schedule exploration `done` protects
    /// no extra non-atomic data; the real-world hazard of a relaxed
    /// `done` (the consumer ends its final drain on a stale empty view
    /// of the ring) needs weak-memory staleness the model does not
    /// implement. Pinned by `relaxed_done_flag_is_a_known_blind_spot`.
    pub done_sync: bool,
    /// Maximum schedules to explore before stopping.
    pub max_schedules: u64,
    /// CHESS-style preemption bound: maximum number of *voluntary*
    /// context switches (switching away from a thread that could have
    /// kept running) per schedule. Forced switches — the running thread
    /// blocked or finished — are free. Unbounded interleaving of even a
    /// 40-step run is `C(40,20)` schedules; bounding preemptions makes
    /// exploration exhaustive while still covering every race that
    /// needs at most this many preemptions (empirically, almost all).
    pub preempt_bound: usize,
}

impl ModelConfig {
    /// The correct protocol, as shipped in `core::transport`.
    pub fn correct(capacity: usize, messages: usize, policy: Policy, poison: Option<u64>) -> Self {
        Self {
            capacity,
            messages,
            policy,
            poison,
            seq_publish: MemOrder::Release,
            seq_acquire: MemOrder::Acquire,
            seq_free: MemOrder::Release,
            done_sync: true,
            max_schedules: 25_000,
            preempt_bound: 4,
        }
    }
}

/// What the audit found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two unordered accesses to a non-atomic cell, at least one a write.
    DataRace {
        /// Which cell (e.g. `slot[1]`).
        cell: String,
        /// What the conflicting pair was.
        detail: String,
    },
    /// An envelope leaked or was double-accounted.
    Conservation(String),
    /// `dropped` counter disagrees with the evicted multiset.
    DropAccounting(String),
    /// Producer observed failure but found no latched error, or a
    /// second error overwrote the first.
    ErrorLatch(String),
    /// All threads waiting with no runnable step.
    Deadlock(String),
}

/// Result of exploring one configuration.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Completed schedules explored.
    pub schedules: u64,
    /// Total atomic steps executed across all schedules.
    pub steps: u64,
    /// `true` when the DFS ran out of alternatives before the budget.
    pub exhausted: bool,
    /// First violation found, with the schedule that produced it.
    pub violation: Option<(Violation, Vec<u8>)>,
}

const NTHREADS: usize = 2;
const PRODUCER: usize = 0;
const CONSUMER: usize = 1;

/// A two-thread vector clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct VClock([u64; NTHREADS]);

impl VClock {
    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0) {
            *a = (*a).max(b);
        }
    }

    fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(other.0).all(|(a, b)| *a <= b)
    }
}

/// A modeled atomic location: a value plus the release clock the next
/// acquire load may inherit.
#[derive(Debug, Clone, Default)]
struct AtomicCell {
    val: u64,
    sync: VClock,
}

/// A modeled non-atomic location with FastTrack-style access tracking.
#[derive(Debug, Clone, Default)]
struct DataCell {
    val: u64,
    /// Clock of the last write event (and the writer).
    write: Option<(usize, VClock)>,
    /// Clock of the last read per thread.
    reads: [Option<VClock>; NTHREADS],
}

/// Producer program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PPc {
    CheckFailed,
    LoadSeq,
    StorePublish,
    StoreEnqueuePos,
    EvictPop(PopPc),
    TakeErrorLock,
    TakeErrorReadUnlock,
    StoreDone,
    Finished,
}

/// Consumer program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CPc {
    Pop(PopPc),
    CheckDone,
    DeliverCheckFailed,
    LatchLock,
    LatchWriteUnlock,
    LatchStoreFailed,
    CountDelivered,
    Finished,
}

/// The shared pop sub-machine (consumer drain; producer evict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PopPc {
    LoadDpos,
    LoadSeq,
    Cas,
    ReadAndFree,
}

/// What a thread is waiting on: retry only once one of the watched
/// atomics changes away from the remembered value.
#[derive(Debug, Clone, Default)]
struct Waiting {
    locs: Vec<(usize, u64)>,
}

/// Atomic location indices.
mod loc {
    pub const SEQ0: usize = 0; // seq[i] = SEQ0 + i
}

struct Model {
    cfg: ModelConfig,
    mask: usize,
    // Atomic locations: seq[cap], then the named ones.
    atomics: Vec<AtomicCell>,
    enqueue_pos: usize,
    dequeue_pos: usize,
    done: usize,
    failed: usize,
    dropped_ctr: usize,
    delivered_ctr: usize,
    lock: usize,
    // Non-atomic cells.
    slots: Vec<DataCell>,
    first_error: DataCell,
    clocks: [VClock; NTHREADS],
    // Producer state.
    ppc: PPc,
    p_pos: usize,
    p_msg: u64,
    p_seen_seq: u64,
    p_evict_dpos: u64,
    p_evict_seen: u64,
    p_observed_error: Option<u64>,
    pushed: Vec<u64>,
    evicted: Vec<u64>,
    // Consumer state.
    cpc: CPc,
    c_dpos: u64,
    c_seen_seq: u64,
    c_val: u64,
    c_draining: bool,
    delivered: Vec<u64>,
    drained_after_error: Vec<u64>,
    poison_consumed: Vec<u64>,
    waiting: [Option<Waiting>; NTHREADS],
    violation: Option<Violation>,
}

enum StepKind {
    /// Step executed.
    Ran,
    /// Thread entered a waiting state (no state change).
    Blocked(Waiting),
}

impl Model {
    fn new(cfg: ModelConfig) -> Self {
        let cap = cfg.capacity;
        let n_atomics = cap + 7;
        let mut atomics = vec![AtomicCell::default(); n_atomics];
        for (i, a) in atomics.iter_mut().take(cap).enumerate() {
            a.val = i as u64; // seq[i] starts at i, like BoundedQueue::new
        }
        Self {
            cfg,
            mask: cap - 1,
            enqueue_pos: cap,
            dequeue_pos: cap + 1,
            done: cap + 2,
            failed: cap + 3,
            dropped_ctr: cap + 4,
            delivered_ctr: cap + 5,
            lock: cap + 6,
            atomics,
            slots: vec![DataCell::default(); cap],
            first_error: DataCell::default(),
            clocks: [VClock::default(); NTHREADS],
            ppc: PPc::CheckFailed,
            p_pos: 0,
            p_msg: 0,
            p_seen_seq: 0,
            p_evict_dpos: 0,
            p_evict_seen: 0,
            p_observed_error: None,
            pushed: Vec::new(),
            evicted: Vec::new(),
            cpc: CPc::Pop(PopPc::LoadDpos),
            c_dpos: 0,
            c_seen_seq: 0,
            c_val: 0,
            c_draining: false,
            delivered: Vec::new(),
            drained_after_error: Vec::new(),
            poison_consumed: Vec::new(),
            waiting: [None, None],
            violation: None,
        }
    }

    fn tick(&mut self, t: usize) {
        self.clocks[t].0[t] += 1;
    }

    fn load(&mut self, t: usize, loc: usize, order: MemOrder) -> u64 {
        self.tick(t);
        let cell = &self.atomics[loc];
        if order == MemOrder::Acquire {
            let sync = cell.sync;
            self.clocks[t].join(&sync);
        }
        self.atomics[loc].val
    }

    fn store(&mut self, t: usize, loc: usize, val: u64, order: MemOrder) {
        self.tick(t);
        let clock = self.clocks[t];
        let cell = &mut self.atomics[loc];
        cell.val = val;
        // A plain store replaces the location's release clock: a
        // relaxed store publishes nothing (and ends any release
        // sequence), which is exactly what lets the race detector catch
        // a Relaxed-where-Release-required weakening.
        cell.sync = if order == MemOrder::Release {
            clock
        } else {
            VClock::default()
        };
    }

    fn fetch_add_relaxed(&mut self, t: usize, loc: usize) {
        self.tick(t);
        // Relaxed RMW: no acquire, and the release sequence (the
        // location's existing sync clock) is preserved.
        self.atomics[loc].val += 1;
    }

    /// Relaxed compare-exchange, as the ring's cursors use.
    fn cas_relaxed(&mut self, t: usize, loc: usize, expect: u64, new: u64) -> Result<(), u64> {
        self.tick(t);
        let cell = &mut self.atomics[loc];
        if cell.val == expect {
            cell.val = new;
            Ok(())
        } else {
            Err(cell.val)
        }
    }

    /// Acquire CAS for the failure mutex.
    fn lock_try(&mut self, t: usize) -> bool {
        self.tick(t);
        let sync = self.atomics[self.lock].sync;
        if self.atomics[self.lock].val == 0 {
            self.clocks[t].join(&sync);
            self.atomics[self.lock].val = 1;
            true
        } else {
            false
        }
    }

    fn unlock(&mut self, t: usize) {
        let clock = self.clocks[t];
        self.tick(t);
        let cell = &mut self.atomics[self.lock];
        cell.val = 0;
        cell.sync = clock;
    }

    fn race(&mut self, cell_name: String, detail: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation::DataRace {
                cell: cell_name,
                detail,
            });
        }
    }

    fn data_write(&mut self, t: usize, slot: Option<usize>, val: u64) {
        let clock = self.clocks[t];
        let name = match slot {
            Some(i) => format!("slot[{i}]"),
            None => "first_error".to_string(),
        };
        let cell = match slot {
            Some(i) => &mut self.slots[i],
            None => &mut self.first_error,
        };
        let mut conflict = None;
        if let Some((wt, wc)) = &cell.write {
            if *wt != t && !wc.le(&clock) {
                conflict = Some(format!("write by thread {wt} unordered with write by {t}"));
            }
        }
        for (rt, rc) in cell.reads.iter().enumerate() {
            if let Some(rc) = rc {
                if rt != t && !rc.le(&clock) {
                    conflict = Some(format!("read by thread {rt} unordered with write by {t}"));
                }
            }
        }
        cell.val = val;
        cell.write = Some((t, clock));
        cell.reads = [None, None];
        if let Some(detail) = conflict {
            self.race(name, detail);
        }
    }

    fn data_read(&mut self, t: usize, slot: Option<usize>) -> u64 {
        let clock = self.clocks[t];
        let name = match slot {
            Some(i) => format!("slot[{i}]"),
            None => "first_error".to_string(),
        };
        let cell = match slot {
            Some(i) => &mut self.slots[i],
            None => &mut self.first_error,
        };
        let mut conflict = None;
        if let Some((wt, wc)) = &cell.write {
            if *wt != t && !wc.le(&clock) {
                conflict = Some(format!("write by thread {wt} unordered with read by {t}"));
            }
        }
        let val = cell.val;
        cell.reads[t] = Some(clock);
        if let Some(detail) = conflict {
            self.race(name, detail);
        }
        val
    }

    fn seq_loc(&self, pos: u64) -> usize {
        loc::SEQ0 + (pos as usize & self.mask)
    }

    fn runnable(&self, t: usize) -> bool {
        if self.violation.is_some() {
            return false;
        }
        let finished = match t {
            PRODUCER => self.ppc == PPc::Finished,
            _ => self.cpc == CPc::Finished,
        };
        if finished {
            return false;
        }
        match &self.waiting[t] {
            None => true,
            Some(w) => w.locs.iter().any(|&(l, seen)| self.atomics[l].val != seen),
        }
    }

    fn finished(&self) -> bool {
        self.violation.is_some() || (self.ppc == PPc::Finished && self.cpc == CPc::Finished)
    }

    /// Executes one step of thread `t` (which must be runnable).
    fn step(&mut self, t: usize) {
        self.waiting[t] = None;
        let kind = if t == PRODUCER {
            self.step_producer()
        } else {
            self.step_consumer()
        };
        if let StepKind::Blocked(w) = kind {
            self.waiting[t] = Some(w);
        }
    }

    fn step_producer(&mut self) -> StepKind {
        match self.ppc {
            PPc::CheckFailed => {
                let failed = self.load(PRODUCER, self.failed, MemOrder::Acquire);
                if failed != 0 {
                    self.ppc = PPc::TakeErrorLock;
                } else if self.p_msg as usize >= self.cfg.messages {
                    self.ppc = PPc::StoreDone;
                } else {
                    self.ppc = PPc::LoadSeq;
                }
                StepKind::Ran
            }
            PPc::LoadSeq => {
                let sl = self.seq_loc(self.p_pos as u64);
                let seq = self.load(PRODUCER, sl, self.cfg.seq_acquire);
                self.p_seen_seq = seq;
                if seq == self.p_pos as u64 {
                    self.ppc = PPc::StorePublish;
                    StepKind::Ran
                } else {
                    // Ring full.
                    match self.cfg.policy {
                        Policy::Block => {
                            self.ppc = PPc::CheckFailed;
                            StepKind::Blocked(Waiting {
                                locs: vec![(sl, seq), (self.failed, 0)],
                            })
                        }
                        Policy::DropOldest => {
                            self.ppc = PPc::EvictPop(PopPc::LoadDpos);
                            StepKind::Ran
                        }
                    }
                }
            }
            PPc::StorePublish => {
                // Program order: non-atomic slot write, then the
                // sequence publish store.
                let idx = self.p_pos & self.mask;
                let msg = self.p_msg;
                self.data_write(PRODUCER, Some(idx), msg + 1);
                let sl = self.seq_loc(self.p_pos as u64);
                self.store(PRODUCER, sl, self.p_pos as u64 + 1, self.cfg.seq_publish);
                self.ppc = PPc::StoreEnqueuePos;
                StepKind::Ran
            }
            PPc::StoreEnqueuePos => {
                let pos = self.p_pos as u64 + 1;
                self.store(PRODUCER, self.enqueue_pos, pos, MemOrder::Relaxed);
                self.pushed.push(self.p_msg);
                self.p_pos += 1;
                self.p_msg += 1;
                self.ppc = PPc::CheckFailed;
                StepKind::Ran
            }
            PPc::EvictPop(pc) => {
                let (next, result) = self.pop_step(PRODUCER, pc, self.p_evict_dpos);
                match result {
                    PopResult::Continue(dpos) => {
                        self.p_evict_dpos = dpos;
                        self.ppc = PPc::EvictPop(next);
                        StepKind::Ran
                    }
                    PopResult::Empty => {
                        // The dequeue side looks empty while the push
                        // slot is still held by a mid-pop consumer
                        // (CAS taken, slot not yet freed): wait for the
                        // free instead of spinning between a full push
                        // view and an empty pop view.
                        self.ppc = PPc::LoadSeq;
                        let sl = self.seq_loc(self.p_pos as u64);
                        StepKind::Blocked(Waiting {
                            locs: vec![(sl, self.p_seen_seq)],
                        })
                    }
                    PopResult::Popped(v) => {
                        self.evicted.push(v - 1);
                        self.ppc = PPc::LoadSeq;
                        // dropped.fetch_add happens on the same step as
                        // the eviction completing, matching the relaxed
                        // counter in enqueue().
                        self.fetch_add_relaxed(PRODUCER, self.dropped_ctr);
                        StepKind::Ran
                    }
                }
            }
            PPc::TakeErrorLock => {
                if self.lock_try(PRODUCER) {
                    self.ppc = PPc::TakeErrorReadUnlock;
                } else {
                    return StepKind::Blocked(Waiting {
                        locs: vec![(self.lock, 1)],
                    });
                }
                StepKind::Ran
            }
            PPc::TakeErrorReadUnlock => {
                let first = self.data_read(PRODUCER, None);
                self.unlock(PRODUCER);
                self.p_observed_error = Some(first);
                self.ppc = PPc::StoreDone;
                StepKind::Ran
            }
            PPc::StoreDone => {
                let order = if self.cfg.done_sync {
                    MemOrder::Release
                } else {
                    MemOrder::Relaxed
                };
                self.store(PRODUCER, self.done, 1, order);
                self.ppc = PPc::Finished;
                StepKind::Ran
            }
            PPc::Finished => StepKind::Ran,
        }
    }

    fn step_consumer(&mut self) -> StepKind {
        match self.cpc {
            CPc::Pop(pc) => {
                let (next, result) = self.pop_step(CONSUMER, pc, self.c_dpos);
                match result {
                    PopResult::Continue(dpos) => {
                        self.c_dpos = dpos;
                        self.cpc = CPc::Pop(next);
                        StepKind::Ran
                    }
                    PopResult::Empty => {
                        if self.c_draining {
                            self.cpc = CPc::Finished;
                            StepKind::Ran
                        } else {
                            self.cpc = CPc::CheckDone;
                            StepKind::Ran
                        }
                    }
                    PopResult::Popped(v) => {
                        self.c_val = v;
                        self.cpc = CPc::DeliverCheckFailed;
                        StepKind::Ran
                    }
                }
            }
            CPc::CheckDone => {
                let order = if self.cfg.done_sync {
                    MemOrder::Acquire
                } else {
                    MemOrder::Relaxed
                };
                let done = self.load(CONSUMER, self.done, order);
                if done != 0 {
                    // Final drain closes the pop-then-done race.
                    self.c_draining = true;
                    self.cpc = CPc::Pop(PopPc::LoadDpos);
                    StepKind::Ran
                } else {
                    self.cpc = CPc::Pop(PopPc::LoadDpos);
                    let sl = self.seq_loc(self.c_dpos);
                    StepKind::Blocked(Waiting {
                        locs: vec![(sl, self.c_seen_seq), (self.done, 0)],
                    })
                }
            }
            CPc::DeliverCheckFailed => {
                let failed = self.load(CONSUMER, self.failed, MemOrder::Acquire);
                if failed != 0 {
                    // Failed branch: drain without delivering.
                    self.drained_after_error.push(self.c_val - 1);
                    self.cpc = CPc::Pop(PopPc::LoadDpos);
                } else if Some(self.c_val - 1) == self.cfg.poison {
                    // The poisoned envelope is consumed by the failing
                    // delivery attempt — neither delivered nor dropped.
                    self.poison_consumed.push(self.c_val - 1);
                    self.cpc = CPc::LatchLock;
                } else {
                    self.cpc = CPc::CountDelivered;
                }
                StepKind::Ran
            }
            CPc::LatchLock => {
                if self.lock_try(CONSUMER) {
                    self.cpc = CPc::LatchWriteUnlock;
                    StepKind::Ran
                } else {
                    StepKind::Blocked(Waiting {
                        locs: vec![(self.lock, 1)],
                    })
                }
            }
            CPc::LatchWriteUnlock => {
                let first = self.data_read(CONSUMER, None);
                if first == 0 {
                    let val = self.c_val;
                    self.data_write(CONSUMER, None, val);
                } else if self.violation.is_none() {
                    self.violation = Some(Violation::ErrorLatch(format!(
                        "second error {} attempted to overwrite first {}",
                        self.c_val - 1,
                        first - 1
                    )));
                }
                self.unlock(CONSUMER);
                self.cpc = CPc::LatchStoreFailed;
                StepKind::Ran
            }
            CPc::LatchStoreFailed => {
                self.store(CONSUMER, self.failed, 1, MemOrder::Release);
                self.cpc = CPc::Pop(PopPc::LoadDpos);
                StepKind::Ran
            }
            CPc::CountDelivered => {
                self.fetch_add_relaxed(CONSUMER, self.delivered_ctr);
                self.delivered.push(self.c_val - 1);
                self.cpc = CPc::Pop(PopPc::LoadDpos);
                StepKind::Ran
            }
            CPc::Finished => StepKind::Ran,
        }
    }

    /// One step of the shared MPMC pop protocol. Mirrors
    /// `BoundedQueue::pop` exactly: load cursor, load slot sequence,
    /// CAS the cursor, read the payload and free the slot.
    fn pop_step(&mut self, t: usize, pc: PopPc, dpos: u64) -> (PopPc, PopResult) {
        match pc {
            PopPc::LoadDpos => {
                let d = self.load(t, self.dequeue_pos, MemOrder::Relaxed);
                (PopPc::LoadSeq, PopResult::Continue(d))
            }
            PopPc::LoadSeq => {
                let sl = self.seq_loc(dpos);
                let seq = self.load(t, sl, self.cfg.seq_acquire);
                if t == CONSUMER {
                    self.c_seen_seq = seq;
                } else {
                    self.p_evict_seen = seq;
                }
                if seq == dpos + 1 {
                    (PopPc::Cas, PopResult::Continue(dpos))
                } else if seq <= dpos {
                    (PopPc::LoadDpos, PopResult::Empty)
                } else {
                    // Another popper advanced past us: reload cursor.
                    (PopPc::LoadDpos, PopResult::Continue(dpos))
                }
            }
            PopPc::Cas => match self.cas_relaxed(t, self.dequeue_pos, dpos, dpos + 1) {
                Ok(()) => (PopPc::ReadAndFree, PopResult::Continue(dpos)),
                Err(now) => (PopPc::LoadSeq, PopResult::Continue(now)),
            },
            PopPc::ReadAndFree => {
                let idx = dpos as usize & self.mask;
                let v = self.data_read(t, Some(idx));
                let sl = self.seq_loc(dpos);
                self.store(t, sl, dpos + self.mask as u64 + 1, self.cfg.seq_free);
                (PopPc::LoadDpos, PopResult::Popped(v))
            }
        }
    }

    /// End-of-schedule property checks.
    fn check_final(&self) -> Option<Violation> {
        if let Some(v) = &self.violation {
            return Some(v.clone());
        }
        // Envelope conservation: every pushed id accounted exactly once.
        let mut accounted: Vec<u64> = self
            .delivered
            .iter()
            .chain(&self.evicted)
            .chain(&self.drained_after_error)
            .chain(&self.poison_consumed)
            .copied()
            .collect();
        accounted.sort_unstable();
        let mut pushed = self.pushed.clone();
        pushed.sort_unstable();
        if accounted != pushed {
            return Some(Violation::Conservation(format!(
                "pushed {:?} but accounted {:?} (delivered {:?} + evicted {:?} + drained {:?} + poison {:?})",
                pushed,
                accounted,
                self.delivered,
                self.evicted,
                self.drained_after_error,
                self.poison_consumed
            )));
        }
        // Exact drop accounting.
        let dropped = self.atomics[self.dropped_ctr].val;
        if dropped != self.evicted.len() as u64 {
            return Some(Violation::DropAccounting(format!(
                "dropped counter {} vs {} evictions",
                dropped,
                self.evicted.len()
            )));
        }
        let delivered_ctr = self.atomics[self.delivered_ctr].val;
        if delivered_ctr != self.delivered.len() as u64 {
            return Some(Violation::Conservation(format!(
                "delivered counter {} vs {} deliveries",
                delivered_ctr,
                self.delivered.len()
            )));
        }
        // First-error-wins latching.
        if let Some(poison) = self.cfg.poison {
            if self.delivered.contains(&poison) {
                return Some(Violation::ErrorLatch(format!(
                    "poisoned envelope {poison} was counted as delivered"
                )));
            }
            let latched = self.first_error.val;
            if latched != 0 && latched - 1 != poison {
                return Some(Violation::ErrorLatch(format!(
                    "latched error {} is not the poisoned envelope {poison}",
                    latched - 1
                )));
            }
            if let Some(seen) = self.p_observed_error {
                if seen == 0 {
                    return Some(Violation::ErrorLatch(
                        "producer observed failure but found no latched error".to_string(),
                    ));
                }
            }
        }
        None
    }
}

enum PopResult {
    Continue(u64),
    Empty,
    Popped(u64),
}

/// Explores interleavings of `cfg` by DFS over thread choices with
/// replayable schedule prefixes, bounded by `cfg.preempt_bound`
/// voluntary context switches per schedule. Stops at the first
/// violation or when the budget (`cfg.max_schedules`) is spent.
pub fn explore(cfg: ModelConfig) -> AuditReport {
    assert!(cfg.capacity.is_power_of_two() && cfg.capacity >= 2);
    let mut report = AuditReport {
        schedules: 0,
        steps: 0,
        exhausted: false,
        violation: None,
    };
    // prefix[i] = thread chosen at the i-th *branching* choice point;
    // alts[i] = alternatives not yet explored there.
    let mut prefix: Vec<u8> = Vec::new();
    let mut alts: Vec<Vec<u8>> = Vec::new();
    const STEP_CAP: u64 = 100_000;
    loop {
        // One run, replaying `prefix` at branching points.
        let mut m = Model::new(cfg);
        let mut depth = 0usize;
        let mut steps_this_run = 0u64;
        let mut cur: Option<usize> = None;
        let mut preemptions = 0usize;
        let schedule_violation: Option<Violation> = loop {
            if m.finished() {
                break m.check_final();
            }
            let runnable: Vec<u8> = (0..NTHREADS as u8)
                .filter(|&t| m.runnable(t as usize))
                .collect();
            if runnable.is_empty() {
                break Some(Violation::Deadlock(format!(
                    "producer at {:?}, consumer at {:?}",
                    m.ppc, m.cpc
                )));
            }
            // CHESS-style preemption bounding: switching away from a
            // still-runnable thread costs one preemption; forced
            // switches (current thread blocked/finished) are free.
            let allowed: Vec<u8> = match cur {
                Some(c) if m.runnable(c) => {
                    if preemptions < cfg.preempt_bound {
                        let mut v = vec![c as u8];
                        v.extend(runnable.iter().copied().filter(|&t| t as usize != c));
                        v
                    } else {
                        vec![c as u8]
                    }
                }
                _ => runnable,
            };
            let choice = if allowed.len() == 1 {
                allowed[0]
            } else if depth < prefix.len() {
                let c = prefix[depth];
                depth += 1;
                c
            } else {
                let c = allowed[0];
                prefix.push(c);
                alts.push(allowed[1..].to_vec());
                depth += 1;
                c
            };
            if let Some(c) = cur {
                if c != choice as usize && m.runnable(c) {
                    preemptions += 1;
                }
            }
            cur = Some(choice as usize);
            m.step(choice as usize);
            steps_this_run += 1;
            if steps_this_run > STEP_CAP {
                break Some(Violation::Deadlock(
                    "schedule exceeded step cap (livelock in model)".to_string(),
                ));
            }
        };
        report.schedules += 1;
        report.steps += steps_this_run;
        if let Some(v) = schedule_violation {
            report.violation = Some((v, prefix.clone()));
            return report;
        }
        if report.schedules >= cfg.max_schedules {
            return report;
        }
        // Backtrack to the deepest choice point with an unexplored
        // alternative.
        loop {
            match alts.last_mut() {
                None => {
                    report.exhausted = true;
                    return report;
                }
                Some(a) => match a.pop() {
                    Some(alt) => {
                        let d = alts.len() - 1;
                        prefix.truncate(d);
                        prefix.push(alt);
                        break;
                    }
                    None => {
                        alts.pop();
                        prefix.pop();
                    }
                },
            }
        }
    }
}

/// The default audit matrix: both policies, with and without a poisoned
/// envelope, at ring capacity 2 (the tightest ring, where every
/// protocol edge is exercised within a few messages).
pub fn default_matrix() -> Vec<(String, ModelConfig)> {
    let mut out = Vec::new();
    for (policy, pname) in [
        (Policy::Block, "block"),
        (Policy::DropOldest, "drop-oldest"),
    ] {
        for (poison, ename) in [(None, "clean"), (Some(1), "poisoned")] {
            let msgs = 4;
            out.push((
                format!("cap=2 msgs={msgs} {pname} {ename}"),
                ModelConfig::correct(2, msgs, policy, poison),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_block_config_passes_exhaustively_at_small_size() {
        let mut cfg = ModelConfig::correct(2, 2, Policy::Block, None);
        cfg.max_schedules = 1_000_000;
        let r = explore(cfg);
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.exhausted, "small config should be fully explorable");
        assert!(r.schedules > 10, "explored {}", r.schedules);
    }

    #[test]
    fn correct_drop_oldest_passes() {
        let r = explore(ModelConfig::correct(2, 3, Policy::DropOldest, None));
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.schedules > 100);
    }

    #[test]
    fn poisoned_delivery_latches_exactly_once() {
        let r = explore(ModelConfig::correct(2, 3, Policy::Block, Some(1)));
        assert!(r.violation.is_none(), "{:?}", r.violation);
    }

    #[test]
    fn relaxed_publish_is_caught_as_a_race() {
        let mut cfg = ModelConfig::correct(2, 2, Policy::Block, None);
        cfg.seq_publish = MemOrder::Relaxed;
        let r = explore(cfg);
        match r.violation {
            Some((Violation::DataRace { ref cell, .. }, _)) => {
                assert!(cell.starts_with("slot["), "race on {cell}")
            }
            ref v => panic!("expected a data race, got {v:?}"),
        }
    }

    #[test]
    fn relaxed_free_is_caught_as_a_race() {
        let mut cfg = ModelConfig::correct(2, 4, Policy::Block, None);
        cfg.seq_free = MemOrder::Relaxed;
        let r = explore(cfg);
        assert!(
            matches!(r.violation, Some((Violation::DataRace { .. }, _))),
            "expected a race once the ring wraps, got {:?}",
            r.violation
        );
    }

    #[test]
    fn relaxed_acquire_is_caught_as_a_race() {
        let mut cfg = ModelConfig::correct(2, 2, Policy::Block, None);
        cfg.seq_acquire = MemOrder::Relaxed;
        let r = explore(cfg);
        assert!(
            matches!(r.violation, Some((Violation::DataRace { .. }, _))),
            "got {:?}",
            r.violation
        );
    }
}
