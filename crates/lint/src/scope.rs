//! `#[cfg(test)]` / `mod tests` scoping: which lines of a file are
//! test-only code.
//!
//! Most rules exempt test code (`unwrap` in a test is the assertion
//! style, not a panic path), so the engine needs a per-line mask. The
//! mask is computed from the token stream, not from regexes: an
//! attribute marks the *item that follows it* (through matched braces
//! or up to a `;`), and `mod tests { … }` bodies are marked whether or
//! not a `cfg` attribute is present.

use crate::lexer::{LineIndex, Tok, TokKind};

/// Returns, per 1-based line, whether that line belongs to test-only
/// code: an item under `#[cfg(test)]` / `#[test]`, or a `mod tests`
/// body. `lines.line_count()` entries; index with `line as usize - 1`.
pub fn test_line_mask(src: &str, toks: &[Tok], lines: &LineIndex) -> Vec<bool> {
    let mut mask = vec![false; lines.line_count()];
    // Significant tokens only: code, no comments/whitespace.
    let sig: Vec<&Tok> = toks.iter().filter(|t| t.kind.is_code()).collect();
    let mut i = 0usize;
    while i < sig.len() {
        let t = sig[i];
        if t.kind == TokKind::Punct && t.text(src) == "#" {
            let (end, inner_attr, is_test) = parse_attribute(src, &sig, i);
            if is_test {
                if inner_attr {
                    // `#![cfg(test)]`: the whole enclosing scope — for a
                    // file-level inner attribute, the whole file.
                    mask.iter_mut().for_each(|m| *m = true);
                    return mask;
                }
                let item_end = skip_attrs_and_item(src, &sig, end);
                mark(&mut mask, lines, t.start, sig_end(&sig, item_end - 1));
                i = item_end;
                continue;
            }
            i = end;
            continue;
        }
        if t.kind == TokKind::Ident && t.text(src) == "mod" {
            if let (Some(name), Some(brace)) = (sig.get(i + 1), sig.get(i + 2)) {
                if name.text(src) == "tests" && brace.text(src) == "{" {
                    let close = match_brace(src, &sig, i + 2);
                    mark(&mut mask, lines, t.start, sig_end(&sig, close));
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    mask
}

/// End byte offset of the token at `idx` (or of the last token when
/// `idx` runs off the end).
fn sig_end(sig: &[&Tok], idx: usize) -> usize {
    sig.get(idx)
        .or(sig.last())
        .map(|t| t.end)
        .unwrap_or_default()
}

fn mark(mask: &mut [bool], lines: &LineIndex, start: usize, end: usize) {
    let first = lines.line_of(start) as usize - 1;
    let last = (lines.line_of(end.saturating_sub(1).max(start)) as usize - 1).min(mask.len() - 1);
    for m in &mut mask[first..=last] {
        *m = true;
    }
}

/// Parses the attribute starting at `sig[i]` (`#`). Returns
/// `(index after the closing ']', inner_attr, is_test_attr)`.
/// An attribute is a *test* attribute when it contains the bare ident
/// `test` outside any `not(…)` group: `#[cfg(test)]`, `#[test]`,
/// `#[cfg(all(test, unix))]` — but not `#[cfg(not(test))]`.
fn parse_attribute(src: &str, sig: &[&Tok], i: usize) -> (usize, bool, bool) {
    let mut j = i + 1;
    let mut inner = false;
    if sig.get(j).is_some_and(|t| t.text(src) == "!") {
        inner = true;
        j += 1;
    }
    if sig.get(j).is_none_or(|t| t.text(src) != "[") {
        return (i + 1, false, false); // stray `#`, not an attribute
    }
    let mut depth = 0usize;
    let mut not_depth: Option<usize> = None;
    let mut is_test = false;
    let mut k = j;
    while k < sig.len() {
        let text = sig[k].text(src);
        match text {
            "[" | "(" | "{" => depth += 1,
            "]" | ")" | "}" => {
                depth -= 1;
                if let Some(nd) = not_depth {
                    if depth < nd {
                        not_depth = None;
                    }
                }
                if depth == 0 {
                    return (k + 1, inner, is_test);
                }
            }
            // The group `not(` opens is negated; `test` inside it
            // does not make this a test attribute.
            "not"
                if sig[k].kind == TokKind::Ident
                    && not_depth.is_none()
                    && sig.get(k + 1).is_some_and(|t| t.text(src) == "(") =>
            {
                not_depth = Some(depth);
            }
            "test" if sig[k].kind == TokKind::Ident && not_depth.is_none() => {
                is_test = true;
            }
            _ => {}
        }
        k += 1;
    }
    (sig.len(), inner, is_test) // unterminated attribute: treat as consumed
}

/// From `i` (just past a test attribute), skips any further attributes
/// and then the item itself; returns the index just past the item.
fn skip_attrs_and_item(src: &str, sig: &[&Tok], mut i: usize) -> usize {
    // Further attributes on the same item.
    while sig.get(i).is_some_and(|t| t.text(src) == "#")
        && sig
            .get(i + 1)
            .is_some_and(|t| t.text(src) == "[" || t.text(src) == "!")
    {
        let (end, _, _) = parse_attribute(src, sig, i);
        i = end;
    }
    // The item: to the matching `}` of its first depth-0 brace, or to a
    // depth-0 `;` (e.g. `#[cfg(test)] use super::*;`).
    let mut depth = 0usize;
    while i < sig.len() {
        match sig[i].text(src) {
            "{" | "(" | "[" => {
                if depth == 0 && sig[i].text(src) == "{" {
                    return match_brace(src, sig, i) + 1;
                }
                depth += 1;
            }
            "}" | ")" | "]" => depth = depth.saturating_sub(1),
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    sig.len()
}

/// Index of the `}` matching the `{` at `sig[open]` (or the last token
/// if unbalanced).
fn match_brace(src: &str, sig: &[&Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in sig.iter().enumerate().skip(open) {
        match t.text(src) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    sig.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn mask(src: &str) -> Vec<bool> {
        let toks = lex(src);
        let lines = LineIndex::new(src);
        test_line_mask(src, &toks, &lines)
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let m = mask(src);
        assert_eq!(m, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_fn_attribute_is_masked() {
        let src = "fn live() {}\n#[test]\nfn check() {\n    assert!(true);\n}\n";
        let m = mask(src);
        assert_eq!(m, vec![false, true, true, true, true]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn live() {}\n";
        assert_eq!(mask(src), vec![false, false]);
    }

    #[test]
    fn cfg_all_test_is_masked() {
        let src = "#[cfg(all(test, unix))]\nfn gated() {}\n";
        assert_eq!(mask(src), vec![true, true]);
    }

    #[test]
    fn mod_tests_without_attr_is_masked() {
        let src = "fn live() {}\nmod tests {\n    fn t() {}\n}\n";
        assert_eq!(mask(src), vec![false, true, true, true]);
    }

    #[test]
    fn attr_with_string_containing_test_is_not_masked() {
        let src = "#[cfg(feature = \"test-utils\")]\nfn live() {}\n";
        assert_eq!(mask(src), vec![false, false]);
    }

    #[test]
    fn stacked_attributes_cover_the_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nstruct T {\n    x: u8,\n}\nfn live() {}\n";
        let m = mask(src);
        assert_eq!(m, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn semicolon_items_end_the_scope() {
        let src = "#[cfg(test)]\nuse std::mem;\nfn live() {}\n";
        assert_eq!(mask(src), vec![true, true, false]);
    }

    #[test]
    fn nested_braces_inside_test_mod() {
        let src = "#[cfg(test)]\nmod tests {\n    fn a() { if x { y(); } }\n    struct S { f: u8 }\n}\nfn live() {}\n";
        let m = mask(src);
        assert!(!m[5], "code after the mod is live");
        assert!(m[..5].iter().all(|&b| b));
    }
}
