//! A small, exact Rust lexer.
//!
//! The rule engine only needs to answer one question reliably: *is this
//! byte code, comment, or literal?* Regex-over-lines gets that wrong on
//! every interesting file in this workspace — `//` inside a string,
//! `r#"…"#` raw strings containing comment markers, nested `/* /* */ */`
//! block comments, and the `'a'`-char vs `'a`-lifetime ambiguity all
//! appear in the tree. So the linter lexes properly: the token stream is
//! lossless (concatenating token texts reproduces the input byte for
//! byte, pinned by proptests) and every byte is classified.

/// What a token is. The distinction that matters downstream is
/// code-like ([`TokKind::is_code`]) vs comment vs literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'_` (not a char literal).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `b'\n'`, `'\u{1F600}'`.
    CharLit,
    /// A (possibly byte/C) string literal: `"…"`, `b"…"`, `c"…"`.
    StrLit,
    /// A raw string literal with any fence depth: `r"…"`, `br#"…"#`.
    RawStrLit,
    /// A numeric literal, including hex/exponent/suffix forms.
    Number,
    /// `// …` to end of line (doc comments `///` and `//!` included).
    LineComment,
    /// `/* … */`, nested; doc block comments included.
    BlockComment,
    /// A single punctuation character.
    Punct,
    /// A run of whitespace (newlines included).
    Whitespace,
}

impl TokKind {
    /// `true` for tokens that are executable code rather than comments
    /// or whitespace (literals count as code).
    pub fn is_code(self) -> bool {
        !matches!(
            self,
            TokKind::LineComment | TokKind::BlockComment | TokKind::Whitespace
        )
    }

    /// `true` for the two comment kinds.
    pub fn is_comment(self) -> bool {
        matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// One token: a kind plus the byte span it covers in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// Classification of the span.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Tok {
    /// The token's text within `src` (the same source passed to [`lex`]).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Byte-indexed cursor over the source.
struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, f: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if f(c) {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }
}

/// Lexes `src` into a lossless token stream: the concatenation of all
/// token texts is exactly `src`, and no byte is left unclassified.
/// Malformed input (unterminated strings or comments) never panics; the
/// open token simply runs to end of file.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor { src, pos: 0 };
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let kind = match c {
            '/' if cur.peek_at(1) == Some('/') => {
                cur.eat_while(|c| c != '\n');
                TokKind::LineComment
            }
            '/' if cur.peek_at(1) == Some('*') => {
                lex_block_comment(&mut cur);
                TokKind::BlockComment
            }
            '"' => {
                lex_string(&mut cur);
                TokKind::StrLit
            }
            '\'' => lex_quote(&mut cur),
            c if c.is_whitespace() => {
                cur.eat_while(|c| c.is_whitespace());
                TokKind::Whitespace
            }
            c if c.is_ascii_digit() => {
                lex_number(&mut cur);
                TokKind::Number
            }
            c if is_ident_start(c) => lex_ident_or_prefixed(&mut cur),
            _ => {
                cur.bump();
                TokKind::Punct
            }
        };
        debug_assert!(cur.pos > start, "lexer must always make progress");
        toks.push(Tok {
            kind,
            start,
            end: cur.pos,
        });
    }
    toks
}

/// Consumes a (nested) block comment, `/*` already peeked.
fn lex_block_comment(cur: &mut Cursor) {
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    while depth > 0 {
        if cur.starts_with("/*") {
            cur.bump();
            cur.bump();
            depth += 1;
        } else if cur.starts_with("*/") {
            cur.bump();
            cur.bump();
            depth -= 1;
        } else if cur.bump().is_none() {
            break; // unterminated: runs to EOF
        }
    }
}

/// Consumes a non-raw string body, opening `"` still pending.
fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump(); // escaped char (any, including `"` and `\`)
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string: `cur` positioned at the `r` of `r##"…"##`
/// (any fence depth, zero included). Returns `false` if the input is
/// not actually a raw string opener (the caller then re-lexes as an
/// identifier).
fn lex_raw_string(cur: &mut Cursor) -> bool {
    let rollback = cur.pos;
    cur.bump(); // the `r`
    let mut fence = 0usize;
    while cur.peek() == Some('#') {
        cur.bump();
        fence += 1;
    }
    if cur.peek() != Some('"') {
        cur.pos = rollback;
        return false;
    }
    cur.bump(); // opening quote
    let closer: String = std::iter::once('"')
        .chain(std::iter::repeat_n('#', fence))
        .collect();
    loop {
        if cur.starts_with(&closer) {
            for _ in 0..closer.len() {
                cur.bump();
            }
            return true;
        }
        if cur.bump().is_none() {
            return true; // unterminated: runs to EOF
        }
    }
}

/// Lexes a `'…` token: lifetime or char literal.
fn lex_quote(cur: &mut Cursor) -> TokKind {
    // `'a` followed by anything but a closing quote is a lifetime;
    // `'a'` is a char. `'\…'` is always a char.
    let c1 = cur.peek_at(1);
    let c2 = cur.peek_at(2);
    let is_lifetime = match c1 {
        Some(c) if is_ident_start(c) => c2 != Some('\''),
        _ => false,
    };
    if is_lifetime {
        cur.bump(); // the quote
        cur.eat_while(is_ident_continue);
        return TokKind::Lifetime;
    }
    cur.bump(); // opening quote
    match cur.bump() {
        Some('\\') => {
            // Escape: simple (`\n`, `\'`), hex (`\x7f`) or unicode
            // (`\u{…}`); consume up to the closing quote.
            match cur.bump() {
                Some('x') => {
                    cur.bump();
                    cur.bump();
                }
                Some('u') if cur.peek() == Some('{') => {
                    cur.eat_while(|c| c != '}');
                    cur.bump();
                }
                _ => {}
            }
            if cur.peek() == Some('\'') {
                cur.bump();
            }
        }
        Some('\'') => {} // the empty `''` — malformed, consume as-is
        Some(_) if cur.peek() == Some('\'') => {
            cur.bump();
        }
        _ => {}
    }
    TokKind::CharLit
}

/// Lexes a numeric literal. Exact enough for classification: consumes
/// digits/underscores/alphanumeric suffixes, a fraction part only when
/// a digit follows the dot (so `0..4` stays three tokens), and a signed
/// exponent for non-hex literals.
fn lex_number(cur: &mut Cursor) {
    let hex = cur.starts_with("0x") || cur.starts_with("0X");
    cur.bump();
    loop {
        match cur.peek() {
            Some(c) if is_ident_continue(c) => {
                cur.bump();
                // `1e-3` / `2.5E+7`: the sign belongs to the exponent.
                if !hex
                    && (c == 'e' || c == 'E')
                    && matches!(cur.peek(), Some('+') | Some('-'))
                    && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                {
                    cur.bump();
                }
            }
            Some('.') => {
                // Fraction only when a digit follows: `1.5` yes,
                // `0..4` and `1.max(2)` no.
                if cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                    cur.bump();
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
}

/// Lexes an identifier, or one of the literal prefixes (`r"`, `b"`,
/// `br#"`, `b'`, `c"`, `r#ident`).
fn lex_ident_or_prefixed(cur: &mut Cursor) -> TokKind {
    let c = cur.peek().unwrap_or(' ');
    // Raw string openers: r" r#" br" br#" cr" cr#"
    if c == 'r' && matches!(cur.peek_at(1), Some('"') | Some('#')) {
        // `r#ident` (raw identifier) must not be eaten as a raw string;
        // lex_raw_string rolls back when no quote follows the fence.
        if lex_raw_string(cur) {
            return TokKind::RawStrLit;
        }
        // Raw identifier: consume `r#` then the ident body.
        cur.bump();
        cur.bump();
        cur.eat_while(is_ident_continue);
        return TokKind::Ident;
    }
    if (c == 'b' || c == 'c') && cur.peek_at(1) == Some('r') {
        let mut probe = Cursor {
            src: cur.src,
            pos: cur.pos,
        };
        probe.bump(); // the b/c
        if lex_raw_string(&mut probe) {
            cur.pos = probe.pos;
            return TokKind::RawStrLit;
        }
    }
    if (c == 'b' || c == 'c') && cur.peek_at(1) == Some('"') {
        cur.bump();
        lex_string(cur);
        return TokKind::StrLit;
    }
    if c == 'b' && cur.peek_at(1) == Some('\'') {
        cur.bump();
        lex_quote(cur);
        return TokKind::CharLit;
    }
    cur.eat_while(is_ident_continue);
    TokKind::Ident
}

/// Byte-offset → 1-based line number lookup table.
#[derive(Debug, Clone)]
pub struct LineIndex {
    /// Byte offsets at which each line starts; `starts[0] == 0`.
    starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the table for `src`.
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        // A trailing newline does not open a new (empty) line.
        if starts.len() > 1 && *starts.last().unwrap_or(&0) == src.len() {
            starts.pop();
        }
        Self { starts }
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> u32 {
        match self.starts.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// Number of lines (at least 1, even for empty input).
    pub fn line_count(&self) -> usize {
        self.starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    #[test]
    fn lossless_round_trip() {
        let src = r##"fn main() { let s = r#"raw "str" // not a comment"#; /* c /* nested */ */ let c = 'a'; let lt: &'static str = "x\""; }"##;
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn comment_markers_inside_strings_are_code() {
        let src = "let a = \"// not a comment\"; let b = \"/* nor this */\";";
        for (kind, text) in kinds(src) {
            if text.contains("not a comment") || text.contains("nor this") {
                assert_eq!(kind, TokKind::StrLit);
            }
        }
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let x = r###"has "# and "## inside"###;"####;
        let toks = kinds(src);
        let raw: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::RawStrLit)
            .collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].1.contains("has"));
    }

    #[test]
    fn raw_string_inside_comment_is_comment() {
        let src = "// dead: r\"string\" in comment\nlet x = 1;";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::LineComment);
        assert!(toks[0].1.contains("r\"string\""));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ code";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.ends_with("*/"));
        assert_eq!(toks.last().unwrap().1, "code");
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let c = 'a'; let s: &'a str = x; let esc = '\\''; let u = '\\u{1F600}'; let under = '_';";
        let toks = kinds(src);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::CharLit)
            .map(|(_, t)| *t)
            .collect();
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(chars, vec!["'a'", "'\\''", "'\\u{1F600}'", "'_'"]);
        assert_eq!(lifetimes, vec!["'a"]);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let src = "let r#type = 1; let y = r#match;";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && *t == "r#type"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && *t == "r#match"));
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::RawStrLit));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let src = "for i in 0..4 { x = 1.5e-3; y = 1.max(2); z = 0xff_u32; }";
        let toks = kinds(src);
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Number)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(nums, vec!["0", "4", "1.5e-3", "1", "2", "0xff_u32"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && *t == "max"));
    }

    #[test]
    fn byte_literals() {
        let src = "let a = b\"bytes\"; let b = b'x'; let c = br#\"raw\"#;";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::StrLit && *t == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::CharLit && *t == "b'x'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::RawStrLit && *t == "br#\"raw\"#"));
    }

    #[test]
    fn unterminated_forms_run_to_eof_without_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'"] {
            let toks = lex(src);
            let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
            assert_eq!(rebuilt, src);
        }
    }

    #[test]
    fn line_index() {
        let idx = LineIndex::new("a\nbb\nccc\n");
        assert_eq!(idx.line_of(0), 1);
        assert_eq!(idx.line_of(2), 2);
        assert_eq!(idx.line_of(3), 2);
        assert_eq!(idx.line_of(5), 3);
        assert_eq!(idx.line_count(), 3);
    }
}
