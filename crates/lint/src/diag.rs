//! Diagnostics, in-source allow pragmas, and machine-readable output.
//!
//! The allow pragma grammar is deliberately rigid so a suppression can
//! never be silent:
//!
//! ```text
//! // lint:allow(<rule-name>): <justification text>
//! ```
//!
//! The justification text is **mandatory** — an allow pragma without
//! one is itself a diagnostic (`allow-pragma`). A pragma suppresses
//! matching diagnostics on its own line (trailing form) and on the
//! first code line below it (standalone form — the justification may
//! wrap over several comment lines); anything further away does not
//! count, so a pragma can never quietly blanket a whole file.

use crate::lexer::{LineIndex, Tok};

/// One finding: a rule, a location, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (kebab-case, e.g. `no-panic-paths`).
    pub rule: &'static str,
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// What is wrong and what the fix looks like.
    pub message: String,
}

impl Diagnostic {
    /// Renders the conventional `file:line: [rule] message` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `lint:allow` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowPragma {
    /// The rule this pragma suppresses.
    pub rule: String,
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// `true` when justification text follows the closing `):`.
    pub justified: bool,
}

/// Extracts every allow pragma (see the module docs for the grammar)
/// from the comment tokens. Malformed pragmas (no closing parenthesis,
/// or no `: justification` tail) are returned with
/// `justified == false` so the engine can reject them.
pub fn collect_pragmas(src: &str, toks: &[Tok], lines: &LineIndex) -> Vec<AllowPragma> {
    let mut out = Vec::new();
    for t in toks.iter().filter(|t| t.kind.is_comment()) {
        let text = t.text(src);
        let mut search = 0usize;
        while let Some(rel) = text[search..].find("lint:allow(") {
            let at = search + rel;
            let after = &text[at + "lint:allow(".len()..];
            let line = lines.line_of(t.start + at);
            match after.find(')') {
                Some(close) => {
                    let rule = after[..close].trim().to_string();
                    let tail = &after[close + 1..];
                    let justified = tail.starts_with(':')
                        && !tail[1..]
                            .lines()
                            .next()
                            .unwrap_or("")
                            .trim()
                            .trim_matches(|c: char| c == '*' || c == '/')
                            .trim()
                            .is_empty();
                    out.push(AllowPragma {
                        rule,
                        line,
                        justified,
                    });
                    search = at + "lint:allow(".len() + close;
                }
                None => {
                    out.push(AllowPragma {
                        rule: String::new(),
                        line,
                        justified: false,
                    });
                    search = at + "lint:allow(".len();
                }
            }
        }
    }
    out
}

/// Applies pragmas: drops suppressed diagnostics and appends an
/// `allow-pragma` diagnostic for every unjustified pragma.
///
/// `has_code[line - 1]` says whether a line carries any code token —
/// used to resolve a standalone pragma (possibly wrapping over several
/// comment lines) to the single code line it governs.
pub fn apply_pragmas(
    file: &str,
    mut diags: Vec<Diagnostic>,
    pragmas: &[AllowPragma],
    has_code: &[bool],
) -> Vec<Diagnostic> {
    // First code line at or after `line` (the pragma's target).
    let target = |line: u32| -> u32 {
        (line as usize..has_code.len())
            .find(|&i| has_code[i])
            .map(|i| i as u32 + 1)
            .unwrap_or(line)
    };
    diags.retain(|d| {
        !pragmas.iter().any(|p| {
            p.justified && p.rule == d.rule && (p.line == d.line || target(p.line) == d.line)
        })
    });
    for p in pragmas {
        if !p.justified {
            diags.push(Diagnostic {
                rule: "allow-pragma",
                file: file.to_string(),
                line: p.line,
                message: format!(
                    "allow pragma for `{}` lacks a justification — write \
                     `// lint:allow({}): <why this site is exempt>`",
                    if p.rule.is_empty() { "?" } else { &p.rule },
                    if p.rule.is_empty() { "<rule>" } else { &p.rule },
                ),
            });
        }
    }
    diags
}

/// Serializes diagnostics as a JSON array (stable field order, no
/// external dependencies).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragmas(src: &str) -> Vec<AllowPragma> {
        let toks = lex(src);
        let lines = LineIndex::new(src);
        collect_pragmas(src, &toks, &lines)
    }

    fn diag(rule: &'static str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            file: "f.rs".into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn justified_pragma_parses() {
        let ps = pragmas("// lint:allow(no-panic-paths): poisoning is already a panic\nfoo();\n");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].rule, "no-panic-paths");
        assert!(ps[0].justified);
        assert_eq!(ps[0].line, 1);
    }

    #[test]
    fn bare_pragma_is_unjustified() {
        for src in [
            "// lint:allow(no-panic-paths)\n",
            "// lint:allow(no-panic-paths):\n",
            "// lint:allow(no-panic-paths):   \n",
        ] {
            let ps = pragmas(src);
            assert_eq!(ps.len(), 1, "{src:?}");
            assert!(!ps[0].justified, "{src:?}");
        }
    }

    #[test]
    fn pragma_inside_string_is_ignored() {
        let ps = pragmas("let s = \"// lint:allow(x): nope\";\n");
        assert!(ps.is_empty());
    }

    #[test]
    fn suppression_covers_same_and_next_code_line() {
        let ps = vec![AllowPragma {
            rule: "r".into(),
            line: 5,
            justified: true,
        }];
        let has_code = vec![true; 8];
        let out = apply_pragmas(
            "f.rs",
            vec![diag("r", 5), diag("r", 6), diag("r", 7)],
            &ps,
            &has_code,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 7);
    }

    #[test]
    fn wrapped_pragma_comment_reaches_the_code_line() {
        // Pragma on line 5, justification wraps lines 6-7 (no code),
        // governed code on line 8.
        let ps = vec![AllowPragma {
            rule: "r".into(),
            line: 5,
            justified: true,
        }];
        let mut has_code = vec![true; 9];
        has_code[4] = false; // line 5: comment only
        has_code[5] = false; // line 6
        has_code[6] = false; // line 7
        let out = apply_pragmas("f.rs", vec![diag("r", 8), diag("r", 9)], &ps, &has_code);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 9, "only the first code line is covered");
    }

    #[test]
    fn wrong_rule_is_not_suppressed() {
        let ps = vec![AllowPragma {
            rule: "other".into(),
            line: 5,
            justified: true,
        }];
        let out = apply_pragmas("f.rs", vec![diag("r", 6)], &ps, &[true; 8]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unjustified_pragma_becomes_diagnostic() {
        let ps = vec![AllowPragma {
            rule: "r".into(),
            line: 5,
            justified: false,
        }];
        let out = apply_pragmas("f.rs", vec![diag("r", 6)], &ps, &[true; 8]);
        assert_eq!(out.len(), 2, "original kept, pragma flagged");
        assert!(out.iter().any(|d| d.rule == "allow-pragma"));
    }

    #[test]
    fn json_output_escapes() {
        let d = vec![Diagnostic {
            rule: "r",
            file: "a\"b.rs".into(),
            line: 3,
            message: "x\ny".into(),
        }];
        let j = to_json(&d);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("x\\ny"));
        assert!(to_json(&[]).starts_with('['));
    }
}
