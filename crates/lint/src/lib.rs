//! `cwsmooth-lint`: the workspace's invariant checker.
//!
//! The crates in this tree make prose promises — "returns `Err` instead
//! of panicking", "every `unsafe` argues its invariants", "non-relaxed
//! orderings name their happens-before edge" — that `rustc` and clippy
//! cannot check, because they are *this workspace's* contracts, not the
//! language's. This crate turns them into machine checks:
//!
//! * [`lexer`] — a hand-rolled lossless Rust lexer, exact about the
//!   places naive scanners go wrong: nested block comments, raw strings
//!   with `#` fences, `'a` lifetimes vs `'a'` char literals, raw
//!   identifiers.
//! * [`scope`] — `#[cfg(test)]` / `mod tests` line masking, so rules
//!   can exempt test code by structure rather than by heuristic.
//! * [`diag`] — diagnostics, the justified-allow pragma
//!   (`// lint:allow(<rule>): <why>` — the why is mandatory), and
//!   dependency-free JSON output.
//! * [`rules`] — the eight workspace rules (see
//!   [`rules::RULE_NAMES`]).
//! * [`race`] — the `race-audit` subcommand's model: deterministic
//!   schedule exploration of the transport ring's producer/consumer
//!   protocol with vector-clock race detection.
//!
//! The crate has zero dependencies and is wired into CI as
//! `cargo run -p cwsmooth-lint -- --workspace` plus
//! `cargo run -p cwsmooth-lint -- race-audit`.

#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod race;
pub mod rules;
pub mod scope;
