//! The rule set: this workspace's prose contracts as machine checks.
//!
//! Every rule is tuned to a documented invariant of this tree (see the
//! README's "Correctness tooling" table):
//!
//! | rule | contract it enforces |
//! |------|----------------------|
//! | `no-panic-paths` | store/fleet/pipeline/transport/drift promise `Err`, not panics |
//! | `safety-comment` | every `unsafe` carries a `// SAFETY:` argument |
//! | `ordering-justified` | every non-`Relaxed` atomic ordering names its happens-before edge |
//! | `no-debug-leftovers` | no `todo!`/`unimplemented!`/`dbg!`/`eprintln!` in library code |
//! | `pub-doc-coverage` | public library items are documented |
//! | `no-silent-clippy-allows` | `#[allow(clippy::…)]` requires a reason |
//! | `bounded-channel-only` | no unbounded `mpsc::channel()` outside tests |
//! | `test-file-asserts` | integration test files actually assert something |
//!
//! Rules see a [`FileContext`]: the lossless token stream, a per-line
//! test mask, and per-line comment/code info. Suppression is only via
//! the justified allow pragma ([`crate::diag`]).

use crate::diag::{apply_pragmas, collect_pragmas, Diagnostic};
use crate::lexer::{lex, LineIndex, Tok, TokKind};
use crate::scope::test_line_mask;

/// Where a file sits in the workspace — rules scope themselves by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `crates/*/src/` or the facade `src/`.
    LibSrc,
    /// Binary targets (`crates/*/src/bin/`).
    Bin,
    /// `examples/`.
    Example,
    /// Integration test files (`crates/*/tests/`, root `tests/`).
    TestFile,
}

impl FileKind {
    /// Classifies a workspace-relative path (unix separators).
    pub fn classify(path: &str) -> FileKind {
        if path.contains("/src/bin/") || path.ends_with("/src/main.rs") {
            FileKind::Bin
        } else if path.starts_with("examples/") || path.contains("/examples/") {
            FileKind::Example
        } else if path.starts_with("tests/") || path.contains("/tests/") {
            FileKind::TestFile
        } else {
            FileKind::LibSrc
        }
    }
}

/// Everything a rule needs to know about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// File classification.
    pub kind: FileKind,
    /// Raw source text.
    pub src: &'a str,
    /// Lossless token stream of `src`.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of code tokens (no comments/whitespace).
    pub sig: Vec<usize>,
    /// Offset→line table.
    pub lines: LineIndex,
    /// Per-line: is this line test-only code (index `line - 1`).
    pub test_line: Vec<bool>,
    /// Per-line: concatenated comment text on that line.
    pub comments: Vec<String>,
    /// Per-line: does any code token start or continue on that line.
    pub has_code: Vec<bool>,
}

impl<'a> FileContext<'a> {
    /// Lexes and indexes `src`.
    pub fn new(path: &'a str, src: &'a str) -> Self {
        let toks = lex(src);
        let lines = LineIndex::new(src);
        let test_line = test_line_mask(src, &toks, &lines);
        let n = lines.line_count();
        let mut comments = vec![String::new(); n];
        let mut has_code = vec![false; n];
        for t in &toks {
            let first = lines.line_of(t.start) as usize - 1;
            let last = lines.line_of(t.end.saturating_sub(1).max(t.start)) as usize - 1;
            if t.kind.is_comment() {
                for (off, piece) in t.text(src).lines().enumerate() {
                    if let Some(c) = comments.get_mut(first + off) {
                        c.push_str(piece);
                        c.push(' ');
                    }
                }
            } else if t.kind.is_code() {
                for l in &mut has_code[first..=last.min(n - 1)] {
                    *l = true;
                }
            }
        }
        let sig = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind.is_code())
            .map(|(i, _)| i)
            .collect();
        Self {
            path,
            kind: FileKind::classify(path),
            src,
            toks,
            sig,
            lines,
            test_line,
            comments,
            has_code,
        }
    }

    fn tok(&self, sig_idx: usize) -> &Tok {
        &self.toks[self.sig[sig_idx]]
    }

    fn text(&self, sig_idx: usize) -> &str {
        self.tok(sig_idx).text(self.src)
    }

    fn line(&self, sig_idx: usize) -> u32 {
        self.lines.line_of(self.tok(sig_idx).start)
    }

    fn is_test_line(&self, line: u32) -> bool {
        self.test_line
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }

    /// The comment text adjacent to `line`: any trailing comment on the
    /// line itself plus the contiguous block of comment-only lines
    /// directly above it (a blank line or a code line breaks the chain).
    fn adjacent_comment(&self, line: u32) -> String {
        let mut out = String::new();
        let idx = line as usize - 1;
        if let Some(c) = self.comments.get(idx) {
            out.push_str(c);
        }
        let mut l = idx;
        while l > 0 {
            l -= 1;
            let comment = &self.comments[l];
            if comment.is_empty() || self.has_code[l] {
                break;
            }
            out.push_str(comment);
        }
        out
    }

    fn diag(&self, rule: &'static str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            file: self.path.to_string(),
            line,
            message,
        }
    }
}

/// The modules whose docs promise `Err`-not-panic on bad input: the
/// persistent store, the cross-process transport, the metrics
/// registry (scraped from exporter threads that must never die), the
/// streaming fleet/pipeline/transport layers and the drift monitor.
fn in_no_panic_scope(path: &str) -> bool {
    path.starts_with("crates/store/src/")
        || path.starts_with("crates/net/src/")
        || path.starts_with("crates/obs/src/")
        || path == "crates/core/src/fleet.rs"
        || path == "crates/core/src/pipeline.rs"
        || path == "crates/core/src/transport.rs"
        || path == "crates/analysis/src/drift.rs"
}

/// Runs every rule over one file and applies its allow pragmas.
pub fn check_file(path: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileContext::new(path, src);
    let mut diags = Vec::new();
    no_panic_paths(&ctx, &mut diags);
    safety_comment(&ctx, &mut diags);
    ordering_justified(&ctx, &mut diags);
    no_debug_leftovers(&ctx, &mut diags);
    pub_doc_coverage(&ctx, &mut diags);
    no_silent_clippy_allows(&ctx, &mut diags);
    bounded_channel_only(&ctx, &mut diags);
    test_file_asserts(&ctx, &mut diags);
    let pragmas = collect_pragmas(src, &ctx.toks, &ctx.lines);
    let mut diags = apply_pragmas(path, diags, &pragmas, &ctx.has_code);
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

/// Names of all rules (for `--list-rules` and pragma validation).
pub const RULE_NAMES: &[&str] = &[
    "no-panic-paths",
    "safety-comment",
    "ordering-justified",
    "no-debug-leftovers",
    "pub-doc-coverage",
    "no-silent-clippy-allows",
    "bounded-channel-only",
    "test-file-asserts",
    "allow-pragma",
];

/// `no-panic-paths`: in the modules that document an `Err`-not-panic
/// contract, non-test code must not call `.unwrap()` / `.expect(…)` or
/// invoke `panic!` / `assert!` / `assert_eq!` / `assert_ne!` /
/// `unreachable!` / `todo!` / `unimplemented!`. `debug_assert*` is
/// exempt (compiled out of release builds by design).
fn no_panic_paths(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !in_no_panic_scope(ctx.path) {
        return;
    }
    const MACROS: &[&str] = &[
        "panic",
        "assert",
        "assert_eq",
        "assert_ne",
        "unreachable",
        "todo",
        "unimplemented",
    ];
    for i in 0..ctx.sig.len() {
        if ctx.tok(i).kind != TokKind::Ident {
            continue;
        }
        let line = ctx.line(i);
        if ctx.is_test_line(line) {
            continue;
        }
        let name = ctx.text(i);
        let flagged = match name {
            "unwrap" | "expect" => {
                i > 0
                    && ctx.text(i - 1) == "."
                    && ctx.sig.get(i + 1).is_some_and(|_| ctx.text(i + 1) == "(")
            }
            _ => {
                MACROS.contains(&name) && ctx.sig.get(i + 1).is_some_and(|_| ctx.text(i + 1) == "!")
            }
        };
        if flagged {
            out.push(ctx.diag(
                "no-panic-paths",
                line,
                format!(
                    "`{name}` in a module that promises Err-not-panic — return an error \
                     (or justify with `// lint:allow(no-panic-paths): …`)"
                ),
            ));
        }
    }
}

/// `safety-comment`: every `unsafe` keyword (block, fn, impl) must be
/// immediately preceded (or trailed on the same line) by a comment
/// containing `SAFETY` that argues why the invariants hold. Applies to
/// test code too — an unargued `unsafe` is no safer in a test.
fn safety_comment(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.sig.len() {
        if ctx.tok(i).kind != TokKind::Ident || ctx.text(i) != "unsafe" {
            continue;
        }
        let line = ctx.line(i);
        if !ctx.adjacent_comment(line).contains("SAFETY") {
            out.push(
                ctx.diag(
                    "safety-comment",
                    line,
                    "`unsafe` without an adjacent `// SAFETY:` comment arguing why the \
                 invariants hold"
                        .to_string(),
                ),
            );
        }
    }
}

/// `ordering-justified`: every non-`Relaxed` atomic memory ordering
/// (`Ordering::Acquire` / `Release` / `AcqRel` / `SeqCst`) in non-test
/// library code must carry an adjacent `// ordering:` comment naming
/// the happens-before edge it establishes.
fn ordering_justified(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !matches!(ctx.kind, FileKind::LibSrc) {
        return;
    }
    for i in 0..ctx.sig.len().saturating_sub(3) {
        if ctx.tok(i).kind != TokKind::Ident || ctx.text(i) != "Ordering" {
            continue;
        }
        if ctx.text(i + 1) != ":" || ctx.text(i + 2) != ":" {
            continue;
        }
        let ord = ctx.text(i + 3);
        if !matches!(ord, "Acquire" | "Release" | "AcqRel" | "SeqCst") {
            continue;
        }
        let line = ctx.line(i + 3);
        if ctx.is_test_line(line) {
            continue;
        }
        if !ctx.adjacent_comment(line).contains("ordering:") {
            out.push(ctx.diag(
                "ordering-justified",
                line,
                format!(
                    "`Ordering::{ord}` without an adjacent `// ordering:` comment naming \
                     the happens-before edge it establishes"
                ),
            ));
        }
    }
}

/// `no-debug-leftovers`: `todo!` / `unimplemented!` / `dbg!` /
/// `eprintln!` in non-test library code are development scaffolding.
fn no_debug_leftovers(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !matches!(ctx.kind, FileKind::LibSrc) {
        return;
    }
    for i in 0..ctx.sig.len().saturating_sub(1) {
        if ctx.tok(i).kind != TokKind::Ident {
            continue;
        }
        let name = ctx.text(i);
        if !matches!(name, "todo" | "unimplemented" | "dbg" | "eprintln") {
            continue;
        }
        if ctx.text(i + 1) != "!" {
            continue;
        }
        let line = ctx.line(i);
        if ctx.is_test_line(line) {
            continue;
        }
        out.push(ctx.diag(
            "no-debug-leftovers",
            line,
            format!("`{name}!` left in library code — remove it or move it behind a test/bin"),
        ));
    }
}

/// `pub-doc-coverage`: `pub` items in non-test library code (fn,
/// struct, enum, trait, mod, const, static, type, union) need a doc
/// comment. `pub(crate)`-style restricted visibility and `pub use`
/// re-exports are exempt.
fn pub_doc_coverage(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !matches!(ctx.kind, FileKind::LibSrc) {
        return;
    }
    const ITEMS: &[&str] = &[
        "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
    ];
    const MODIFIERS: &[&str] = &["unsafe", "async", "const", "extern", "default"];
    for i in 0..ctx.sig.len() {
        if ctx.tok(i).kind != TokKind::Ident || ctx.text(i) != "pub" {
            continue;
        }
        let line = ctx.line(i);
        if ctx.is_test_line(line) {
            continue;
        }
        // Skip restricted visibility: `pub(crate)`, `pub(super)`, …
        if ctx.sig.get(i + 1).is_some_and(|_| ctx.text(i + 1) == "(") {
            continue;
        }
        // Find the item keyword after any modifiers.
        let mut j = i + 1;
        while j < ctx.sig.len()
            && (MODIFIERS.contains(&ctx.text(j)) || ctx.tok(j).kind == TokKind::StrLit)
        {
            j += 1;
        }
        let Some(item) = ctx.sig.get(j).map(|_| ctx.text(j)) else {
            continue;
        };
        if !ITEMS.contains(&item) {
            continue; // `pub use` re-exports and anything unrecognized
        }
        // `pub mod name;` declarations are documented by the module
        // file's own `//!` inner docs (enforced by `missing_docs`),
        // not at the declaration site.
        if item == "mod" && ctx.sig.get(j + 2).is_some_and(|_| ctx.text(j + 2) == ";") {
            continue;
        }
        // `const` can itself be a modifier (`pub const fn`): if the next
        // token is `fn`, the item is the fn (already handled by the
        // modifier loop). Here `item` is the first non-modifier keyword.
        if !is_documented(ctx, i) {
            let name = ctx
                .sig
                .get(j + 1)
                .map(|_| ctx.text(j + 1))
                .unwrap_or("<unnamed>");
            out.push(ctx.diag(
                "pub-doc-coverage",
                line,
                format!("public {item} `{name}` has no doc comment"),
            ));
        }
    }
}

/// Is the `pub` token at `sig[i]` preceded by a doc comment (possibly
/// with attributes between the docs and the item)?
fn is_documented(ctx: &FileContext, pub_sig_idx: usize) -> bool {
    // Walk significant tokens backwards over any attribute chains to
    // find the item's lexical start, then scan the raw tokens between
    // the previous item and the `pub` for `///` / `/** … */` / #[doc].
    let mut k = pub_sig_idx;
    while k > 0 {
        // An attribute chain ends with `]`; walk back to its `#`.
        if ctx.text(k - 1) == "]" {
            let mut depth = 0usize;
            let mut m = k - 1;
            loop {
                match ctx.text(m) {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if m == 0 {
                    break;
                }
                m -= 1;
            }
            // Step over the `[`'s `#` (and optional `!`).
            let mut start = m;
            if start > 0 && ctx.text(start - 1) == "#" {
                start -= 1;
            } else if start > 1 && ctx.text(start - 1) == "!" && ctx.text(start - 2) == "#" {
                start -= 2;
            }
            // `#[doc = "…"]` / `#[doc(hidden)]` count as documentation.
            for idx in start..k {
                if ctx.tok(idx).kind == TokKind::Ident && ctx.text(idx) == "doc" {
                    return true;
                }
            }
            k = start;
            continue;
        }
        break;
    }
    // Raw-token scan between the previous significant token and sig[k].
    let lo = if k == 0 { 0 } else { ctx.sig[k - 1] + 1 };
    let hi = ctx.sig[k];
    ctx.toks[lo..hi].iter().any(|t| {
        let text = t.text(ctx.src);
        (t.kind == TokKind::LineComment && text.starts_with("///"))
            || (t.kind == TokKind::BlockComment && text.starts_with("/**"))
    })
}

/// `no-silent-clippy-allows`: `#[allow(clippy::…)]` (and
/// `#[expect(clippy::…)]`) must have an adjacent comment explaining why
/// the lint is wrong here.
fn no_silent_clippy_allows(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.sig.len().saturating_sub(3) {
        if ctx.text(i) != "#" {
            continue;
        }
        let mut j = i + 1;
        if ctx.text(j) == "!" {
            j += 1;
        }
        if ctx.text(j) != "[" {
            continue;
        }
        if !matches!(ctx.text(j + 1), "allow" | "expect") {
            continue;
        }
        // Scan to the closing `]`, looking for the `clippy` path root.
        let mut depth = 0usize;
        let mut has_clippy = false;
        let mut end = j;
        for k in j..ctx.sig.len() {
            match ctx.text(k) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                "clippy" if ctx.tok(k).kind == TokKind::Ident => has_clippy = true,
                _ => {}
            }
        }
        if !has_clippy {
            continue;
        }
        let attr_line = ctx.line(i);
        let end_line = ctx.line(end);
        let justified = ctx.adjacent_comment(attr_line).len() > 1
            || !ctx.comments[end_line as usize - 1].is_empty();
        if !justified {
            out.push(
                ctx.diag(
                    "no-silent-clippy-allows",
                    attr_line,
                    "`#[allow(clippy::…)]` without an adjacent comment justifying the \
                 suppression"
                        .to_string(),
                ),
            );
        }
    }
}

/// `bounded-channel-only`: the unbounded `std::sync::mpsc::channel()`
/// constructor is banned outside tests — the transport layer exists
/// precisely so queues are bounded with explicit full-queue policies.
fn bounded_channel_only(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if matches!(ctx.kind, FileKind::TestFile) {
        return;
    }
    for i in 0..ctx.sig.len().saturating_sub(3) {
        if ctx.tok(i).kind != TokKind::Ident || ctx.text(i) != "mpsc" {
            continue;
        }
        if ctx.text(i + 1) != ":" || ctx.text(i + 2) != ":" {
            continue;
        }
        if ctx.text(i + 3) != "channel" {
            continue;
        }
        let line = ctx.line(i + 3);
        if ctx.is_test_line(line) {
            continue;
        }
        out.push(
            ctx.diag(
                "bounded-channel-only",
                line,
                "unbounded `mpsc::channel()` — use the bounded transport \
             (`cwsmooth_core::transport::QueueSink`) or `sync_channel` with an explicit \
             capacity"
                    .to_string(),
            ),
        );
    }
}

/// `test-file-asserts`: an integration test file with no `assert` (or
/// `prop_assert`) never fails — it only *looks* like coverage.
fn test_file_asserts(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !matches!(ctx.kind, FileKind::TestFile) {
        return;
    }
    const ASSERTS: &[&str] = &[
        "assert",
        "assert_eq",
        "assert_ne",
        "debug_assert",
        "prop_assert",
        "prop_assert_eq",
        "prop_assert_ne",
        "panic",
    ];
    let has_assert = (0..ctx.sig.len().saturating_sub(1)).any(|i| {
        ctx.tok(i).kind == TokKind::Ident
            && ASSERTS.contains(&ctx.text(i))
            && ctx.text(i + 1) == "!"
    });
    // `.unwrap()`/`.expect(…)` also fail the test on Err — accept files
    // that at least unwrap (they assert through the Result machinery).
    let has_unwrap = (0..ctx.sig.len().saturating_sub(1)).any(|i| {
        ctx.tok(i).kind == TokKind::Ident
            && matches!(ctx.text(i), "unwrap" | "expect")
            && i > 0
            && ctx.text(i - 1) == "."
    });
    if !has_assert && !has_unwrap {
        out.push(ctx.diag(
            "test-file-asserts",
            1,
            "integration test file contains no assertion — it cannot fail".to_string(),
        ));
    }
}
