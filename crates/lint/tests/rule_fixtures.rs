//! One seeded-violation fixture per rule.
//!
//! Each test feeds [`cwsmooth_lint::rules::check_file`] a small source
//! with a deliberate violation and asserts the rule fires on the right
//! line — then feeds the corrected form and asserts it goes quiet.
//! This is the acceptance gate for the rule set: a rule that cannot
//! catch its own seeded fixture is dead weight.

use cwsmooth_lint::rules::check_file;

/// `(rule, line)` pairs for `src` checked under `path`.
fn hits(path: &str, src: &str) -> Vec<(String, u32)> {
    check_file(path, src)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

fn fires(path: &str, src: &str, rule: &str) -> Vec<u32> {
    hits(path, src)
        .into_iter()
        .filter(|(r, _)| r == rule)
        .map(|(_, l)| l)
        .collect()
}

#[test]
fn no_panic_paths_catches_unwrap_in_promised_module() {
    let bad = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(fires("crates/store/src/fx.rs", bad, "no-panic-paths"), [2]);
    // Same code outside the Err-not-panic scope is fine.
    assert!(fires("crates/linalg/src/fx.rs", bad, "no-panic-paths").is_empty());
    // Test-scoped unwraps are fine even inside the scope.
    let test_scoped =
        "#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) -> u32 {\n        x.unwrap()\n    }\n}\n";
    assert!(fires("crates/store/src/fx.rs", test_scoped, "no-panic-paths").is_empty());
    // The error-returning form is the fix.
    let good = "fn f(x: Option<u32>) -> Result<u32, ()> {\n    x.ok_or(())\n}\n";
    assert!(fires("crates/store/src/fx.rs", good, "no-panic-paths").is_empty());
}

#[test]
fn no_panic_paths_catches_panic_macros_too() {
    let bad = "fn f() {\n    panic!(\"boom\");\n}\n";
    assert_eq!(
        fires("crates/core/src/transport.rs", bad, "no-panic-paths"),
        [2]
    );
    // `debug_assert!` is exempt by design.
    let dbg = "fn f(n: usize) {\n    debug_assert!(n > 0);\n}\n";
    assert!(fires("crates/core/src/transport.rs", dbg, "no-panic-paths").is_empty());
}

#[test]
fn safety_comment_requires_an_argument() {
    let bad = "unsafe fn f() {}\n";
    assert_eq!(fires("crates/core/src/fx.rs", bad, "safety-comment"), [1]);
    let good = "// SAFETY: f has no preconditions; the body is empty.\nunsafe fn f() {}\n";
    assert!(fires("crates/core/src/fx.rs", good, "safety-comment").is_empty());
    // A comment that does not say SAFETY does not count.
    let vague = "// trust me\nunsafe fn f() {}\n";
    assert_eq!(fires("crates/core/src/fx.rs", vague, "safety-comment"), [2]);
}

#[test]
fn ordering_justified_wants_the_edge_named() {
    let bad = "fn f(a: &AtomicBool) -> bool {\n    a.load(Ordering::Acquire)\n}\n";
    assert_eq!(
        fires("crates/core/src/fx.rs", bad, "ordering-justified"),
        [2]
    );
    let good = "fn f(a: &AtomicBool) -> bool {\n    \
                // ordering: pairs with the producer's Release store of `done`.\n    \
                a.load(Ordering::Acquire)\n}\n";
    assert!(fires("crates/core/src/fx.rs", good, "ordering-justified").is_empty());
    // Relaxed needs no justification.
    let relaxed = "fn f(a: &AtomicBool) -> bool {\n    a.load(Ordering::Relaxed)\n}\n";
    assert!(fires("crates/core/src/fx.rs", relaxed, "ordering-justified").is_empty());
}

#[test]
fn no_debug_leftovers_flags_library_scaffolding() {
    let bad = "fn f() {\n    dbg!(42);\n    eprintln!(\"here\");\n}\n";
    assert_eq!(
        fires("crates/analysis/src/fx.rs", bad, "no-debug-leftovers"),
        [2, 3]
    );
    // Binaries may print to stderr.
    assert!(fires("crates/lint/src/main.rs", bad, "no-debug-leftovers").is_empty());
}

#[test]
fn pub_doc_coverage_demands_docs_on_pub_items() {
    let bad = "pub fn f() {}\n";
    assert_eq!(fires("crates/data/src/fx.rs", bad, "pub-doc-coverage"), [1]);
    let good = "/// Does the thing.\npub fn f() {}\n";
    assert!(fires("crates/data/src/fx.rs", good, "pub-doc-coverage").is_empty());
    // Restricted visibility and `pub mod name;` declarations are exempt.
    let exempt = "pub(crate) fn g() {}\npub mod sub;\n";
    assert!(fires("crates/data/src/fx.rs", exempt, "pub-doc-coverage").is_empty());
    // Attributes between docs and item do not hide the docs.
    let attred = "/// Documented.\n#[derive(Debug)]\npub struct S;\n";
    assert!(fires("crates/data/src/fx.rs", attred, "pub-doc-coverage").is_empty());
}

#[test]
fn no_silent_clippy_allows_wants_a_reason() {
    let bad = "#[allow(clippy::needless_range_loop)]\nfn f() {}\n";
    assert_eq!(
        fires("crates/ml/src/fx.rs", bad, "no-silent-clippy-allows"),
        [1]
    );
    let good = "// Index loop keeps `r` for the assert message.\n\
                #[allow(clippy::needless_range_loop)]\nfn f() {}\n";
    assert!(fires("crates/ml/src/fx.rs", good, "no-silent-clippy-allows").is_empty());
    // Non-clippy allows are rustc's business, not this rule's.
    let rustc = "#[allow(dead_code)]\nfn f() {}\n";
    assert!(fires("crates/ml/src/fx.rs", rustc, "no-silent-clippy-allows").is_empty());
}

#[test]
fn bounded_channel_only_bans_unbounded_mpsc() {
    let bad = "fn f() {\n    let (tx, rx) = std::sync::mpsc::channel::<u32>();\n}\n";
    assert_eq!(
        fires("crates/core/src/fx.rs", bad, "bounded-channel-only"),
        [2]
    );
    // Test files may use whatever plumbing they like.
    assert!(fires("crates/core/tests/fx.rs", bad, "bounded-channel-only").is_empty());
}

#[test]
fn test_file_asserts_rejects_assertion_free_tests() {
    let bad = "#[test]\nfn t() {\n    let _ = 1 + 1;\n}\n";
    assert_eq!(
        fires("crates/core/tests/fx.rs", bad, "test-file-asserts"),
        [1]
    );
    let with_assert = "#[test]\nfn t() {\n    assert_eq!(1 + 1, 2);\n}\n";
    assert!(fires("crates/core/tests/fx.rs", with_assert, "test-file-asserts").is_empty());
    // Unwrapping a Result asserts through the Result machinery.
    let with_unwrap = "#[test]\nfn t() {\n    \"2\".parse::<u32>().unwrap();\n}\n";
    assert!(fires("crates/core/tests/fx.rs", with_unwrap, "test-file-asserts").is_empty());
    // The rule only applies to test files.
    assert!(fires("crates/core/src/fx.rs", bad, "test-file-asserts").is_empty());
}

#[test]
fn allow_pragma_requires_justification_and_suppresses_when_given() {
    // A justified pragma silences the diagnostic it names.
    let suppressed = "fn f(x: Option<u32>) -> u32 {\n    \
                      // lint:allow(no-panic-paths): x is checked by the caller.\n    \
                      x.unwrap()\n}\n";
    assert!(fires("crates/store/src/fx.rs", suppressed, "no-panic-paths").is_empty());
    assert!(fires("crates/store/src/fx.rs", suppressed, "allow-pragma").is_empty());

    // A bare pragma suppresses nothing and is itself a finding.
    let bare = "fn f(x: Option<u32>) -> u32 {\n    \
                // lint:allow(no-panic-paths)\n    \
                x.unwrap()\n}\n";
    assert_eq!(fires("crates/store/src/fx.rs", bare, "allow-pragma"), [2]);
    assert_eq!(fires("crates/store/src/fx.rs", bare, "no-panic-paths"), [3]);

    // A pragma for rule A does not silence rule B.
    let wrong_rule = "fn f(x: Option<u32>) -> u32 {\n    \
                      // lint:allow(safety-comment): irrelevant here.\n    \
                      x.unwrap()\n}\n";
    assert_eq!(
        fires("crates/store/src/fx.rs", wrong_rule, "no-panic-paths"),
        [3]
    );
}
