//! Integration test for the `race-audit` model
//! ([`cwsmooth_lint::race`]): the shipped protocol passes the full
//! default matrix, and deliberately broken variants — `Relaxed` where
//! the transport uses `Release`/`Acquire` — are caught as data races.
//!
//! This is the end-to-end guarantee behind the CI `race-audit` job: if
//! the model ever stops distinguishing the correct protocol from a
//! broken one, these tests fail before the job's green check becomes
//! meaningless.

use cwsmooth_lint::race::{default_matrix, explore, MemOrder, ModelConfig, Policy, Violation};

#[test]
fn shipped_protocol_passes_the_default_matrix() {
    for (name, cfg) in default_matrix() {
        let report = explore(cfg);
        assert!(
            report.violation.is_none(),
            "{name}: unexpected violation {:?}",
            report.violation
        );
        assert!(report.schedules > 0, "{name}: explored nothing");
    }
}

/// Every weakened ordering knob must independently break the model —
/// a checker that only notices *some* missing barriers would pass a
/// subtly wrong transport.
#[test]
fn each_relaxed_variant_is_rejected() {
    type Weaken = fn(&mut ModelConfig);
    let weaken: [(&str, Weaken); 3] = [
        ("seq_publish", |c| c.seq_publish = MemOrder::Relaxed),
        ("seq_acquire", |c| c.seq_acquire = MemOrder::Relaxed),
        ("seq_free", |c| c.seq_free = MemOrder::Relaxed),
    ];
    for (knob, break_it) in weaken {
        let mut cfg = ModelConfig::correct(2, 3, Policy::Block, None);
        cfg.max_schedules = 200_000;
        break_it(&mut cfg);
        let report = explore(cfg);
        let Some((violation, schedule)) = report.violation else {
            panic!(
                "Relaxed {knob} was not caught in {} schedules",
                report.schedules
            );
        };
        assert!(
            matches!(violation, Violation::DataRace { .. }),
            "Relaxed {knob}: expected a data race, got {violation:?}"
        );
        assert!(
            !schedule.is_empty(),
            "Relaxed {knob}: violation must carry a reproducing schedule"
        );
    }
}

/// Pins a documented *limitation*: a relaxed `done` flag is invisible
/// to SC schedule exploration. Every payload already rides a
/// Release/Acquire edge on its slot's sequence word, so `done` protects
/// no additional non-atomic data, and the staleness a relaxed `done`
/// load allows on real hardware (consumer exits its drain loop on a
/// stale empty view) only exists under weak-memory semantics the model
/// deliberately does not implement. If this test starts failing, the
/// model gained weak-memory power — update the `done_sync` docs.
#[test]
fn relaxed_done_flag_is_a_known_blind_spot() {
    let mut cfg = ModelConfig::correct(2, 2, Policy::Block, None);
    cfg.max_schedules = 200_000;
    cfg.done_sync = false;
    let report = explore(cfg);
    assert!(
        report.violation.is_none(),
        "SC exploration unexpectedly distinguished a relaxed done flag: {:?}",
        report.violation
    );
    assert!(report.exhausted, "blind-spot claim needs an exhaustive run");
}

#[test]
fn drop_oldest_eviction_is_race_checked_too() {
    let mut cfg = ModelConfig::correct(2, 4, Policy::DropOldest, None);
    cfg.max_schedules = 200_000;
    cfg.seq_free = MemOrder::Relaxed;
    let report = explore(cfg);
    let Some((violation, _)) = report.violation else {
        panic!(
            "Relaxed seq_free under DropOldest was not caught in {} schedules",
            report.schedules
        );
    };
    assert!(matches!(violation, Violation::DataRace { .. }));
}
