//! Property tests for the lint lexer ([`cwsmooth_lint::lexer`]).
//!
//! Two families of properties:
//!
//! * **Losslessness** — for any assembly of generated fragments, the
//!   token stream tiles the input exactly: contiguous spans, first at 0,
//!   last at `src.len()`, and concatenating token texts reproduces the
//!   source byte for byte.
//! * **Classification** — the adversarial shapes the linter exists to
//!   get right never leak: `//` inside a raw string stays a literal,
//!   `r"…"` inside a comment stays a comment, nested block comments
//!   close at the matching depth, and `'a'` (char) is never confused
//!   with `'a` (lifetime).

use cwsmooth_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Re-checks the lossless tiling invariant and returns the tokens.
fn lex_checked(src: &str) -> Vec<cwsmooth_lint::lexer::Tok> {
    let toks = lex(src);
    let mut pos = 0;
    for t in &toks {
        assert_eq!(t.start, pos, "gap or overlap before {t:?} in {src:?}");
        assert!(t.end > t.start, "empty token {t:?} in {src:?}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens do not reach EOF in {src:?}");
    let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
    assert_eq!(rebuilt, src, "concatenated token texts differ from input");
    toks
}

/// A payload safe to embed inside a `#`-fenced raw string or a block
/// comment: printable ASCII that cannot terminate either container at
/// fence depth >= 1 (no `#` so `"#` never forms; no `*` so `*/` never
/// forms). `//` and `"` are deliberately *allowed* — they are exactly
/// the bytes a naive line-based scanner trips on.
fn payload() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(
            "abc XYZ019_//\"'!(){}=+-;:,.<>&|"
                .chars()
                .collect::<Vec<_>>(),
        ),
        0..24,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Standalone code/comment/literal fragments, each lexable on its own.
fn fragment() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "fn main() { let x = 1; }".to_string(),
        "// line comment with r\"not a raw string\"".to_string(),
        "/* block 'a' \" unclosed quote */".to_string(),
        "/* outer /* nested // */ still comment */".to_string(),
        "let s = \"string with // and /* inside\";".to_string(),
        "let r = r#\"raw // \" fence\"#;".to_string(),
        "let c = 'x'; let esc = '\\'';".to_string(),
        "fn f<'a>(v: &'a str) -> &'a str { v }".to_string(),
        "let n = 0xFF_u32 + 1.5e-3;".to_string(),
        "let r#type = b\"bytes\";".to_string(),
        "'_".to_string(),
        "#[cfg(test)] mod tests {}".to_string(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192 })]

    #[test]
    fn any_fragment_assembly_round_trips(
        frags in prop::collection::vec(fragment(), 0..8),
        seps in prop::collection::vec(
            prop::sample::select(vec![" ", "\n", "\n\n", "\t"]), 0..8),
    ) {
        let mut src = String::new();
        for (i, f) in frags.iter().enumerate() {
            src.push_str(f);
            src.push_str(seps.get(i).copied().unwrap_or("\n"));
        }
        lex_checked(&src);
    }

    #[test]
    fn raw_string_payload_is_never_a_comment(
        body in payload(),
        fences in 1usize..4,
        byte_prefix in prop::sample::select(vec!["", "b", "br"]),
    ) {
        // `r#"<body>"#` at the chosen fence depth; body may contain `//`
        // and `"` but the lexer must keep the whole thing one literal.
        let prefix = if byte_prefix.is_empty() { "r" } else { byte_prefix };
        let prefix = if prefix == "b" { "br".to_string() } else { prefix.to_string() };
        let fence = "#".repeat(fences);
        let src = format!("let x = {prefix}{fence}\"{body}\"{fence}; // tail");
        let toks = lex_checked(&src);
        let raw: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::RawStrLit).collect();
        prop_assert_eq!(raw.len(), 1, "src={:?} toks={:?}", src, toks);
        prop_assert_eq!(raw[0].text(&src),
            format!("{prefix}{fence}\"{body}\"{fence}"), "src={:?}", src);
        // Exactly one comment: the trailing `// tail`, nothing inside
        // the literal.
        let comments: Vec<_> = toks.iter().filter(|t| t.kind.is_comment()).collect();
        prop_assert_eq!(comments.len(), 1, "src={:?}", src);
        prop_assert_eq!(comments[0].text(&src), "// tail", "src={:?}", src);
    }

    #[test]
    fn comment_payload_is_never_code(
        body in payload(),
        line in proptest::strategy::any::<bool>(),
    ) {
        // A raw-string opener (or anything else) inside a comment must
        // stay comment bytes.
        let src = if line {
            format!("// r#\"{body}\n let after = 1;")
        } else {
            format!("/* r#\"{body} */ let after = 1;")
        };
        let toks = lex_checked(&src);
        prop_assert!(
            toks.iter().all(|t| t.kind != TokKind::RawStrLit),
            "raw string leaked out of a comment: src={:?} toks={:?}", src, toks
        );
        // The code after the comment is still seen as code.
        prop_assert!(
            toks.iter().any(|t| t.kind == TokKind::Ident && t.text(&src) == "after"),
            "code after comment not lexed: src={:?}", src
        );
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth(depth in 1usize..6) {
        let src = format!(
            "{}innermost{} let code = 1;",
            "/* ".repeat(depth),
            " */".repeat(depth)
        );
        let toks = lex_checked(&src);
        let comments: Vec<_> = toks.iter().filter(|t| t.kind.is_comment()).collect();
        prop_assert_eq!(comments.len(), 1, "src={:?}", src);
        prop_assert_eq!(
            comments[0].text(&src),
            format!("{}innermost{}", "/* ".repeat(depth), " */".repeat(depth)),
            "src={:?}", src
        );
        prop_assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text(&src) == "code"));
    }

    #[test]
    fn char_vs_lifetime_disambiguation(
        c in prop::sample::select("abzXY09_".chars().collect::<Vec<_>>()),
    ) {
        // `'c'` is a char literal; `'c` followed by non-quote is a
        // lifetime — including in generic position `<'c>`.
        let char_src = format!("let v = '{c}';");
        let toks = lex_checked(&char_src);
        prop_assert!(
            toks.iter().any(|t| t.kind == TokKind::CharLit
                && t.text(&char_src) == format!("'{c}'")),
            "char literal missed: {:?} -> {:?}", char_src, toks
        );
        prop_assert!(toks.iter().all(|t| t.kind != TokKind::Lifetime));

        if !c.is_ascii_digit() {
            let lt_src = format!("fn f<'{c}>(x: &'{c} u8) {{}}");
            let toks = lex_checked(&lt_src);
            let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
            prop_assert_eq!(lifetimes, 2, "lifetimes missed: {:?} -> {:?}", lt_src, toks);
            prop_assert!(toks.iter().all(|t| t.kind != TokKind::CharLit));
        }
    }
}
