//! Time-stamped sensor series and grid alignment.
//!
//! Sensors on a real system are sampled at slightly different instants and
//! rates; the paper assumes the sensor matrix is time-aligned and notes an
//! interpolation pre-processing step may be required (Sec. III-A). That
//! step lives here: [`TimeSeries::resample`] interpolates a series onto a
//! uniform grid, and [`align_to_matrix`] assembles many series into one
//! dense [`Matrix`].

use crate::error::{DataError, Result};
use cwsmooth_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// One sensor's time series: strictly increasing timestamps plus values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    timestamps: Vec<u64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Builds a series; timestamps must be strictly increasing and lengths
    /// must match.
    pub fn new(timestamps: Vec<u64>, values: Vec<f64>) -> Result<Self> {
        if timestamps.len() != values.len() {
            return Err(DataError::Invalid(format!(
                "timestamps ({}) and values ({}) differ in length",
                timestamps.len(),
                values.len()
            )));
        }
        if timestamps.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DataError::Invalid(
                "timestamps must be strictly increasing".into(),
            ));
        }
        Ok(Self { timestamps, values })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// `true` if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Timestamp axis.
    pub fn timestamps(&self) -> &[u64] {
        &self.timestamps
    }

    /// Value axis.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.timestamps
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// First timestamp, if any.
    pub fn start(&self) -> Option<u64> {
        self.timestamps.first().copied()
    }

    /// Last timestamp, if any.
    pub fn end(&self) -> Option<u64> {
        self.timestamps.last().copied()
    }

    /// Linearly interpolates the value at time `t`.
    ///
    /// Outside the covered range the nearest edge value is held
    /// (monitoring convention: a sensor keeps its last reading).
    pub fn value_at(&self, t: u64) -> Result<f64> {
        if self.is_empty() {
            return Err(DataError::Invalid("value_at on empty series".into()));
        }
        let ts = &self.timestamps;
        if t <= ts[0] {
            return Ok(self.values[0]);
        }
        if t >= ts[ts.len() - 1] {
            return Ok(self.values[ts.len() - 1]);
        }
        // partition_point: first index with ts[i] > t
        let hi = ts.partition_point(|&x| x <= t);
        let lo = hi - 1;
        if ts[lo] == t {
            return Ok(self.values[lo]);
        }
        let span = (ts[hi] - ts[lo]) as f64;
        let frac = (t - ts[lo]) as f64 / span;
        Ok(self.values[lo] + (self.values[hi] - self.values[lo]) * frac)
    }

    /// Resamples onto the uniform grid `start, start+step, ...` with `count`
    /// points, linearly interpolating and holding edges.
    pub fn resample(&self, start: u64, step: u64, count: usize) -> Result<Vec<f64>> {
        if step == 0 {
            return Err(DataError::Invalid("resample step must be > 0".into()));
        }
        (0..count)
            .map(|i| self.value_at(start + step * i as u64))
            .collect()
    }
}

/// Aligns several sensor series onto a common uniform grid and stacks them
/// into a sensor matrix (rows = sensors, in input order).
///
/// The grid spans the *intersection* of all series' ranges so no sensor is
/// pure extrapolation; `step` is the target sampling interval.
pub fn align_to_matrix(series: &[TimeSeries], step: u64) -> Result<(Matrix, Vec<u64>)> {
    if series.is_empty() {
        return Err(DataError::Invalid("align_to_matrix: no series".into()));
    }
    if step == 0 {
        return Err(DataError::Invalid("align step must be > 0".into()));
    }
    let mut start = 0u64;
    let mut end = u64::MAX;
    for s in series {
        let (a, b) = match (s.start(), s.end()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(DataError::Invalid("align_to_matrix: empty series".into())),
        };
        start = start.max(a);
        end = end.min(b);
    }
    if end < start {
        return Err(DataError::Invalid(
            "align_to_matrix: series ranges do not overlap".into(),
        ));
    }
    let count = ((end - start) / step) as usize + 1;
    let grid: Vec<u64> = (0..count).map(|i| start + step * i as u64).collect();
    let mut data = Vec::with_capacity(series.len() * count);
    for s in series {
        for &t in &grid {
            data.push(s.value_at(t)?);
        }
    }
    let m = Matrix::from_vec(series.len(), count, data)?;
    Ok((m, grid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_increasing_timestamps() {
        assert!(TimeSeries::new(vec![0, 0], vec![1.0, 2.0]).is_err());
        assert!(TimeSeries::new(vec![5, 3], vec![1.0, 2.0]).is_err());
        assert!(TimeSeries::new(vec![0, 1], vec![1.0]).is_err());
    }

    #[test]
    fn interpolates_linearly() {
        let s = TimeSeries::new(vec![0, 10], vec![0.0, 10.0]).unwrap();
        assert_eq!(s.value_at(5).unwrap(), 5.0);
        assert_eq!(s.value_at(0).unwrap(), 0.0);
        assert_eq!(s.value_at(10).unwrap(), 10.0);
    }

    #[test]
    fn holds_edges_outside_range() {
        let s = TimeSeries::new(vec![10, 20], vec![1.0, 2.0]).unwrap();
        assert_eq!(s.value_at(0).unwrap(), 1.0);
        assert_eq!(s.value_at(100).unwrap(), 2.0);
    }

    #[test]
    fn exact_timestamp_hits() {
        let s = TimeSeries::new(vec![0, 10, 20], vec![1.0, 5.0, 2.0]).unwrap();
        assert_eq!(s.value_at(10).unwrap(), 5.0);
    }

    #[test]
    fn resample_produces_grid() {
        let s = TimeSeries::new(vec![0, 4], vec![0.0, 4.0]).unwrap();
        let v = s.resample(0, 2, 3).unwrap();
        assert_eq!(v, vec![0.0, 2.0, 4.0]);
        assert!(s.resample(0, 0, 3).is_err());
    }

    #[test]
    fn align_intersects_ranges() {
        let a = TimeSeries::new(vec![0, 10, 20], vec![0.0, 10.0, 20.0]).unwrap();
        let b = TimeSeries::new(vec![5, 15, 25], vec![5.0, 15.0, 25.0]).unwrap();
        let (m, grid) = align_to_matrix(&[a, b], 5).unwrap();
        // overlap [5, 20] at step 5 -> 4 samples
        assert_eq!(grid, vec![5, 10, 15, 20]);
        assert_eq!(m.shape(), (2, 4));
        assert_eq!(m.row(0), &[5.0, 10.0, 15.0, 20.0]);
        assert_eq!(m.row(1), &[5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn align_rejects_disjoint() {
        let a = TimeSeries::new(vec![0, 1], vec![0.0, 1.0]).unwrap();
        let b = TimeSeries::new(vec![10, 11], vec![0.0, 1.0]).unwrap();
        assert!(align_to_matrix(&[a, b], 1).is_err());
    }
}
