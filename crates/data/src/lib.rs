//! Monitoring-data plumbing for the `cwsmooth` workspace.
//!
//! HPC-ODA stores each sensor as a CSV file of time-stamp/value pairs; real
//! deployments produce the same shape through frameworks like DCDB or LDMS.
//! This crate provides everything between those raw per-sensor series and
//! the dense sensor matrix the signature methods consume:
//!
//! * [`csv`] — a dependency-free CSV reader/writer for time-stamp/value
//!   pairs (and simple tables for the benchmark harness).
//! * [`series`] — [`series::TimeSeries`] plus resampling/alignment onto a
//!   common sampling grid (the interpolation pre-processing step the paper
//!   mentions in Sec. III-A).
//! * [`segment`] — [`segment::Segment`]: a named sensor matrix with sensor
//!   names, a time axis and classification/regression label tracks; the
//!   in-memory equivalent of one HPC-ODA segment.
//! * [`window`] — sliding aggregation windows (`wl`, `ws`) over a sensor
//!   matrix, carrying one sample of history for derivative computation.
//! * [`store`] — whole-segment persistence in the HPC-ODA directory
//!   layout (one CSV per sensor + label/meta sidecars).
//! * [`transform`] — monotonic-counter detection and differencing (energy
//!   counters must be differenced before CS, Sec. III-C3).

#![warn(missing_docs)]

pub mod csv;
pub mod error;
pub mod segment;
pub mod series;
pub mod store;
pub mod transform;
pub mod window;

pub use error::{DataError, Result};
pub use segment::{LabelTrack, Segment, TaskKind};
pub use series::TimeSeries;
pub use window::{Window, WindowIter, WindowSpec};
