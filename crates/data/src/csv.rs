//! Dependency-free CSV handling for sensor series and result tables.
//!
//! HPC-ODA's on-disk layout is one CSV file per sensor, each record a
//! `timestamp,value` pair (Sec. II-A of the paper). The parser here accepts
//! that shape plus the usual frictions of real monitoring exports: optional
//! header line, blank lines, comments (`#`), and whitespace around fields.

use crate::error::{DataError, Result};
use crate::series::TimeSeries;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses `timestamp,value` records from a reader into a [`TimeSeries`].
///
/// * Lines starting with `#` and blank lines are skipped.
/// * A first line whose fields do not both parse as numbers is treated as a
///   header and skipped.
/// * Records must be two comma-separated fields; timestamps must be
///   non-negative integers (nanoseconds, milliseconds or seconds — the unit
///   is the caller's concern), values are `f64`.
pub fn read_series<R: Read>(reader: R) -> Result<TimeSeries> {
    let buf = BufReader::new(reader);
    let mut ts = Vec::new();
    let mut vs = Vec::new();
    let mut first_data_line = true;
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(2, ',');
        let a = parts.next().unwrap_or("").trim();
        let b = parts.next().unwrap_or("").trim();
        if b.is_empty() {
            return Err(DataError::Parse {
                line: idx + 1,
                message: format!("expected `timestamp,value`, got `{line}`"),
            });
        }
        match (a.parse::<u64>(), b.parse::<f64>()) {
            (Ok(t), Ok(v)) => {
                ts.push(t);
                vs.push(v);
                first_data_line = false;
            }
            _ if first_data_line => {
                // Tolerate one header line.
                first_data_line = false;
            }
            _ => {
                return Err(DataError::Parse {
                    line: idx + 1,
                    message: format!("could not parse `{line}` as timestamp,value"),
                })
            }
        }
    }
    TimeSeries::new(ts, vs)
}

/// Reads a sensor CSV file from disk.
pub fn read_series_file(path: impl AsRef<Path>) -> Result<TimeSeries> {
    let file = std::fs::File::open(path)?;
    read_series(file)
}

/// Writes a [`TimeSeries`] as `timestamp,value` records with a header.
pub fn write_series<W: Write>(mut w: W, series: &TimeSeries) -> Result<()> {
    writeln!(w, "timestamp,value")?;
    for (t, v) in series.iter() {
        writeln!(w, "{t},{v}")?;
    }
    Ok(())
}

/// Writes a [`TimeSeries`] to a file.
pub fn write_series_file(path: impl AsRef<Path>, series: &TimeSeries) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_series(std::io::BufWriter::new(file), series)
}

/// A minimal result-table writer (used by the benchmark harness to emit the
/// rows behind each figure/table as machine-readable CSV).
pub struct TableWriter<W: Write> {
    out: W,
    cols: usize,
}

impl<W: Write> TableWriter<W> {
    /// Starts a table by writing the header row.
    pub fn new(mut out: W, header: &[&str]) -> Result<Self> {
        writeln!(out, "{}", header.join(","))?;
        Ok(Self {
            out,
            cols: header.len(),
        })
    }

    /// Writes one row; field count must match the header.
    pub fn row(&mut self, fields: &[String]) -> Result<()> {
        if fields.len() != self.cols {
            return Err(DataError::Invalid(format!(
                "table row has {} fields, header has {}",
                fields.len(),
                self.cols
            )));
        }
        writeln!(self.out, "{}", fields.join(","))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_records() {
        let input = "0,1.5\n10,2.5\n20,3.5\n";
        let s = read_series(input.as_bytes()).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.timestamps(), &[0, 10, 20]);
        assert_eq!(s.values(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn skips_header_comments_blanks() {
        let input = "timestamp,value\n# comment\n\n0,1.0\n 10 , 2.0 \n";
        let s = read_series(input.as_bytes()).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.values(), &[1.0, 2.0]);
    }

    #[test]
    fn rejects_garbage_after_first_line() {
        let input = "0,1.0\nnot,anumber\n";
        assert!(read_series(input.as_bytes()).is_err());
    }

    #[test]
    fn rejects_single_field() {
        let input = "0\n";
        assert!(read_series(input.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_through_writer() {
        let s = TimeSeries::new(vec![0, 5, 10], vec![1.0, -2.0, 3.25]).unwrap();
        let mut buf = Vec::new();
        write_series(&mut buf, &s).unwrap();
        let back = read_series(buf.as_slice()).unwrap();
        assert_eq!(back.timestamps(), s.timestamps());
        assert_eq!(back.values(), s.values());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cwsmooth-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sensor.csv");
        let s = TimeSeries::new(vec![1, 2], vec![0.5, 0.75]).unwrap();
        write_series_file(&path, &s).unwrap();
        let back = read_series_file(&path).unwrap();
        assert_eq!(back.values(), s.values());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_writer_enforces_width() {
        let mut buf = Vec::new();
        let mut t = TableWriter::new(&mut buf, &["a", "b"]).unwrap();
        assert!(t.row(&["1".into(), "2".into()]).is_ok());
        assert!(t.row(&["1".into()]).is_err());
        let _ = t;
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert!(text.contains("1,2\n"));
    }
}
