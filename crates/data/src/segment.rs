//! In-memory representation of one HPC-ODA segment.
//!
//! A segment couples a sensor matrix with its metadata: sensor names, the
//! time axis, the ODA task (classification or regression) and a label per
//! time-stamp. Windowed feature extraction turns these per-sample labels
//! into per-window labels (majority vote for classes, forward average for
//! regression targets — matching the paper's "predict the average over the
//! next k samples" formulation for Power and Infrastructure).

use crate::error::{DataError, Result};
use cwsmooth_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// The kind of ODA task a segment's labels encode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Discrete classes (fault kinds, application ids).
    Classification,
    /// Continuous target (power draw, removed heat).
    Regression,
}

/// Per-time-stamp ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LabelTrack {
    /// One class id per time-stamp.
    Classes(Vec<usize>),
    /// One continuous value per time-stamp.
    Values(Vec<f64>),
}

impl LabelTrack {
    /// Number of labelled time-stamps.
    pub fn len(&self) -> usize {
        match self {
            LabelTrack::Classes(v) => v.len(),
            LabelTrack::Values(v) => v.len(),
        }
    }

    /// `true` when no labels are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Task kind this track supports.
    pub fn kind(&self) -> TaskKind {
        match self {
            LabelTrack::Classes(_) => TaskKind::Classification,
            LabelTrack::Values(_) => TaskKind::Regression,
        }
    }
}

/// One self-contained dataset: sensor matrix + names + time axis + labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Segment {
    /// Human-readable segment name (e.g. `"Fault"`).
    pub name: String,
    /// Sensor matrix: rows = sensors, columns = time-stamps.
    pub matrix: Matrix,
    /// One name per sensor row.
    pub sensor_names: Vec<String>,
    /// Uniform time axis (same length as matrix columns).
    pub timestamps: Vec<u64>,
    /// Ground-truth labels, one per time-stamp.
    pub labels: LabelTrack,
}

impl Segment {
    /// Validated constructor.
    pub fn new(
        name: impl Into<String>,
        matrix: Matrix,
        sensor_names: Vec<String>,
        timestamps: Vec<u64>,
        labels: LabelTrack,
    ) -> Result<Self> {
        if sensor_names.len() != matrix.rows() {
            return Err(DataError::Invalid(format!(
                "{} sensor names for {} matrix rows",
                sensor_names.len(),
                matrix.rows()
            )));
        }
        if timestamps.len() != matrix.cols() {
            return Err(DataError::Invalid(format!(
                "{} timestamps for {} matrix columns",
                timestamps.len(),
                matrix.cols()
            )));
        }
        if labels.len() != matrix.cols() {
            return Err(DataError::Invalid(format!(
                "{} labels for {} matrix columns",
                labels.len(),
                matrix.cols()
            )));
        }
        Ok(Self {
            name: name.into(),
            matrix,
            sensor_names,
            timestamps,
            labels,
        })
    }

    /// Number of sensors (matrix rows).
    pub fn sensors(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of time-stamps (matrix columns).
    pub fn samples(&self) -> usize {
        self.matrix.cols()
    }

    /// Total data points (readings) in the segment.
    pub fn data_points(&self) -> usize {
        self.matrix.len()
    }

    /// Task kind of this segment.
    pub fn task(&self) -> TaskKind {
        self.labels.kind()
    }

    /// Majority-vote class label for the window `[start, end)`.
    ///
    /// Errors if the segment carries regression labels.
    pub fn window_class(&self, start: usize, end: usize) -> Result<usize> {
        match &self.labels {
            LabelTrack::Classes(classes) => {
                if end > classes.len() || start >= end {
                    return Err(DataError::Invalid("window out of range".into()));
                }
                let slice = &classes[start..end];
                let max_class = slice.iter().copied().max().unwrap();
                let mut counts = vec![0usize; max_class + 1];
                for &c in slice {
                    counts[c] += 1;
                }
                Ok(counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(i, _)| i)
                    .unwrap())
            }
            LabelTrack::Values(_) => Err(DataError::Invalid(
                "window_class on a regression segment".into(),
            )),
        }
    }

    /// Mean regression target over `[start, end)` — used as "the average of
    /// the next k samples" by pointing this at the horizon window.
    pub fn window_target(&self, start: usize, end: usize) -> Result<f64> {
        match &self.labels {
            LabelTrack::Values(values) => {
                if start >= end {
                    return Err(DataError::Invalid("window out of range".into()));
                }
                let end = end.min(values.len());
                if start >= end {
                    return Err(DataError::Invalid("window out of range".into()));
                }
                let slice = &values[start..end];
                Ok(slice.iter().sum::<f64>() / slice.len() as f64)
            }
            LabelTrack::Classes(_) => Err(DataError::Invalid(
                "window_target on a classification segment".into(),
            )),
        }
    }

    /// Distinct class count (0 for regression segments).
    pub fn n_classes(&self) -> usize {
        match &self.labels {
            LabelTrack::Classes(classes) => classes.iter().copied().max().map_or(0, |m| m + 1),
            LabelTrack::Values(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(labels: LabelTrack) -> Segment {
        let m = Matrix::from_rows([[1.0, 2.0, 3.0, 4.0], [4.0, 3.0, 2.0, 1.0]]).unwrap();
        Segment::new(
            "test",
            m,
            vec!["a".into(), "b".into()],
            vec![0, 1, 2, 3],
            labels,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shapes() {
        let m = Matrix::zeros(2, 3);
        assert!(Segment::new(
            "x",
            m.clone(),
            vec!["a".into()],
            vec![0, 1, 2],
            LabelTrack::Classes(vec![0, 0, 0])
        )
        .is_err());
        assert!(Segment::new(
            "x",
            m.clone(),
            vec!["a".into(), "b".into()],
            vec![0, 1],
            LabelTrack::Classes(vec![0, 0, 0])
        )
        .is_err());
        assert!(Segment::new(
            "x",
            m,
            vec!["a".into(), "b".into()],
            vec![0, 1, 2],
            LabelTrack::Classes(vec![0, 0])
        )
        .is_err());
    }

    #[test]
    fn majority_vote() {
        let s = seg(LabelTrack::Classes(vec![1, 1, 2, 2]));
        assert_eq!(s.window_class(0, 3).unwrap(), 1);
        assert_eq!(s.window_class(1, 4).unwrap(), 2);
        assert!(s.window_class(2, 2).is_err());
        assert!(s.window_class(0, 9).is_err());
    }

    #[test]
    fn regression_target_average() {
        let s = seg(LabelTrack::Values(vec![1.0, 2.0, 3.0, 4.0]));
        assert_eq!(s.window_target(0, 2).unwrap(), 1.5);
        // horizon clipped at the end
        assert_eq!(s.window_target(2, 10).unwrap(), 3.5);
        assert!(s.window_target(5, 10).is_err());
    }

    #[test]
    fn task_kind_mismatch_errors() {
        let c = seg(LabelTrack::Classes(vec![0, 0, 1, 1]));
        assert!(c.window_target(0, 2).is_err());
        let r = seg(LabelTrack::Values(vec![0.0; 4]));
        assert!(r.window_class(0, 2).is_err());
    }

    #[test]
    fn class_count() {
        let s = seg(LabelTrack::Classes(vec![0, 3, 1, 1]));
        assert_eq!(s.n_classes(), 4);
        let r = seg(LabelTrack::Values(vec![0.0; 4]));
        assert_eq!(r.n_classes(), 0);
    }
}
