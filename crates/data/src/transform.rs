//! Pre-processing transforms for raw sensor rows.
//!
//! The CS method's min-max normalization cannot handle monotonic series
//! such as energy counters (Sec. III-C3): the training range is immediately
//! exceeded in production. The paper's remedy — difference such series
//! first — is implemented here, together with the detection heuristic used
//! by the data generators.

use cwsmooth_linalg::Matrix;

/// Fraction of non-decreasing steps above which a row is considered a
/// monotonic counter.
const MONOTONIC_FRACTION: f64 = 0.99;

/// Returns `true` if `xs` looks like a monotonic counter: at least 99% of
/// its steps are non-decreasing and it strictly grows overall.
pub fn is_monotonic_counter(xs: &[f64]) -> bool {
    if xs.len() < 2 {
        return false;
    }
    let nondecreasing = xs.windows(2).filter(|w| w[1] >= w[0]).count();
    let frac = nondecreasing as f64 / (xs.len() - 1) as f64;
    frac >= MONOTONIC_FRACTION && xs[xs.len() - 1] > xs[0]
}

/// Differences row `r` in place: `x[k] <- x[k] - x[k-1]`, first element 0.
pub fn difference_row(m: &mut Matrix, r: usize) {
    let row = m.row_mut(r);
    let mut prev = row.first().copied().unwrap_or(0.0);
    if let Some(first) = row.first_mut() {
        *first = 0.0;
    }
    for v in row.iter_mut().skip(1) {
        let cur = *v;
        *v = cur - prev;
        prev = cur;
    }
}

/// Differences every row detected as a monotonic counter; returns the list
/// of transformed row indexes so callers can record the decision (and apply
/// the same transform at inference time).
pub fn difference_monotonic_rows(m: &mut Matrix) -> Vec<usize> {
    let mut transformed = Vec::new();
    for r in 0..m.rows() {
        if is_monotonic_counter(m.row(r)) {
            difference_row(m, r);
            transformed.push(r);
        }
    }
    transformed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_strict_counters() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 2.5).collect();
        assert!(is_monotonic_counter(&xs));
    }

    #[test]
    fn tolerates_one_percent_dips() {
        // 199 steps, one dip -> 99.5% non-decreasing
        let mut xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        xs[100] = 50.0;
        assert!(is_monotonic_counter(&xs));
    }

    #[test]
    fn rejects_oscillating_and_constant() {
        let osc: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        assert!(!is_monotonic_counter(&osc));
        let flat = vec![5.0; 100];
        // non-decreasing but not growing overall
        assert!(!is_monotonic_counter(&flat));
        assert!(!is_monotonic_counter(&[1.0]));
    }

    #[test]
    fn difference_row_in_place() {
        let mut m = Matrix::from_rows([[1.0, 3.0, 6.0, 10.0]]).unwrap();
        difference_row(&mut m, 0);
        assert_eq!(m.row(0), &[0.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn differences_only_counters() {
        let counter: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let gauge: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let mut m = Matrix::from_rows([counter, gauge.clone()]).unwrap();
        let changed = difference_monotonic_rows(&mut m);
        assert_eq!(changed, vec![0]);
        assert_eq!(m.row(0)[1], 1.0);
        assert_eq!(m.row(1), gauge.as_slice());
    }
}
