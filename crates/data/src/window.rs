//! Sliding aggregation windows over a sensor matrix.
//!
//! A signature method consumes sub-matrices `S_w` with `wl` columns, taken
//! every `ws` columns (paper Sec. III-A). Windows here also carry one
//! column of *history* (the sample preceding the window) so the smoothing
//! stage can compute the backward finite difference of the window's first
//! column without leaking future data.

use crate::error::{DataError, Result};
use cwsmooth_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Window geometry: aggregation length and step, in samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Aggregation window length `wl` (columns per window).
    pub wl: usize,
    /// Step `ws` between successive window starts.
    pub ws: usize,
}

impl WindowSpec {
    /// Creates a spec; both fields must be positive.
    pub fn new(wl: usize, ws: usize) -> Result<Self> {
        if wl == 0 || ws == 0 {
            return Err(DataError::Invalid("wl and ws must be positive".into()));
        }
        Ok(Self { wl, ws })
    }

    /// Number of complete windows over `t` samples.
    pub fn count(&self, t: usize) -> usize {
        if t < self.wl {
            0
        } else {
            (t - self.wl) / self.ws + 1
        }
    }
}

/// One window: column range `[start, end)` plus optional history column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First column (inclusive).
    pub start: usize,
    /// Last column (exclusive); `end - start == wl`.
    pub end: usize,
}

impl Window {
    /// Extracts this window's sub-matrix from `m`.
    pub fn extract(&self, m: &Matrix) -> Result<Matrix> {
        Ok(m.col_window(self.start, self.end)?)
    }

    /// The column of values immediately preceding the window (history for
    /// backward differences), if the window does not start at column 0.
    pub fn history(&self, m: &Matrix) -> Option<Vec<f64>> {
        if self.start == 0 {
            None
        } else {
            Some(m.col(self.start - 1))
        }
    }
}

/// Iterator over complete windows of a matrix with `t` columns.
#[derive(Debug, Clone)]
pub struct WindowIter {
    spec: WindowSpec,
    t: usize,
    next_start: usize,
}

impl WindowIter {
    /// Creates an iterator over all complete windows in `t` samples.
    pub fn new(spec: WindowSpec, t: usize) -> Self {
        Self {
            spec,
            t,
            next_start: 0,
        }
    }
}

impl Iterator for WindowIter {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        let end = self.next_start + self.spec.wl;
        if end > self.t {
            return None;
        }
        let w = Window {
            start: self.next_start,
            end,
        };
        self.next_start += self.spec.ws;
        Some(w)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.next_start + self.spec.wl > self.t {
            0
        } else {
            (self.t - self.next_start - self.spec.wl) / self.spec.ws + 1
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for WindowIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_rejects_zero() {
        assert!(WindowSpec::new(0, 1).is_err());
        assert!(WindowSpec::new(1, 0).is_err());
    }

    #[test]
    fn count_matches_iteration() {
        for (wl, ws, t) in [(4, 2, 10), (3, 3, 9), (5, 1, 5), (6, 2, 5), (1, 1, 1)] {
            let spec = WindowSpec::new(wl, ws).unwrap();
            let n = WindowIter::new(spec, t).count();
            assert_eq!(n, spec.count(t), "wl={wl} ws={ws} t={t}");
        }
    }

    #[test]
    fn windows_are_in_bounds_and_strided() {
        let spec = WindowSpec::new(4, 2).unwrap();
        let ws: Vec<Window> = WindowIter::new(spec, 10).collect();
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0], Window { start: 0, end: 4 });
        assert_eq!(ws[1], Window { start: 2, end: 6 });
        assert_eq!(ws[3], Window { start: 6, end: 10 });
    }

    #[test]
    fn short_input_yields_nothing() {
        let spec = WindowSpec::new(10, 1).unwrap();
        assert_eq!(WindowIter::new(spec, 5).count(), 0);
        assert_eq!(spec.count(5), 0);
    }

    #[test]
    fn extract_and_history() {
        let m = Matrix::from_rows([[0.0, 1.0, 2.0, 3.0], [10.0, 11.0, 12.0, 13.0]]).unwrap();
        let w = Window { start: 1, end: 3 };
        let sub = w.extract(&m).unwrap();
        assert_eq!(sub.row(0), &[1.0, 2.0]);
        assert_eq!(w.history(&m), Some(vec![0.0, 10.0]));
        let w0 = Window { start: 0, end: 2 };
        assert_eq!(w0.history(&m), None);
    }

    #[test]
    fn size_hint_is_exact() {
        let spec = WindowSpec::new(3, 2).unwrap();
        let mut it = WindowIter::new(spec, 11);
        let mut n = it.len();
        while let Some(_) = it.next() {
            n -= 1;
            assert_eq!(it.len(), n);
        }
        assert_eq!(n, 0);
    }
}
