//! Segment persistence in the HPC-ODA on-disk layout.
//!
//! HPC-ODA ships each segment as a directory of per-sensor CSV files
//! (`<sensor>.csv`, `timestamp,value` records). This module writes and
//! reads whole [`Segment`]s in that layout, adding two sidecar files:
//!
//! * `_labels.csv` — `timestamp,label` records (class ids or regression
//!   targets), and
//! * `_meta.csv` — segment name, task kind and the sensor order (CSV file
//!   names are sanitized, so the original names and their row order are
//!   recorded explicitly).

use crate::csv::{read_series, write_series};
use crate::error::{DataError, Result};
use crate::segment::{LabelTrack, Segment};
use crate::series::TimeSeries;
use cwsmooth_linalg::Matrix;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Turns a sensor name into a safe file stem (alphanumerics, `-`, `_`,
/// `.`; everything else becomes `_`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes a segment as a directory of per-sensor CSVs plus sidecars.
///
/// Fails if two sensor names collide after sanitization, if a sensor
/// name sanitizes to a reserved sidecar stem (`_labels`, `_meta` — the
/// sidecar would silently overwrite the sensor's file), or if the
/// segment or a sensor name contains a line break (the sidecars are
/// line-oriented, so such a name could not round-trip).
pub fn save_segment(dir: impl AsRef<Path>, segment: &Segment) -> Result<()> {
    let dir = dir.as_ref();
    for name in std::iter::once(&segment.name).chain(&segment.sensor_names) {
        if name.contains(['\n', '\r']) {
            return Err(DataError::Invalid(format!(
                "name {name:?} contains a line break and cannot round-trip"
            )));
        }
    }
    std::fs::create_dir_all(dir)?;

    let mut stems = std::collections::HashSet::new();
    for (i, name) in segment.sensor_names.iter().enumerate() {
        let stem = sanitize(name);
        if stem == "_labels" || stem == "_meta" {
            return Err(DataError::Invalid(format!(
                "sensor name `{name}` sanitizes to the reserved sidecar stem `{stem}`"
            )));
        }
        if !stems.insert(stem.clone()) {
            return Err(DataError::Invalid(format!(
                "sensor name collision after sanitization: `{name}` -> `{stem}`"
            )));
        }
        let series = TimeSeries::new(segment.timestamps.clone(), segment.matrix.row(i).to_vec())?;
        let file = std::fs::File::create(dir.join(format!("{stem}.csv")))?;
        write_series(std::io::BufWriter::new(file), &series)?;
    }

    // Labels sidecar.
    let mut labels_file = std::io::BufWriter::new(std::fs::File::create(dir.join("_labels.csv"))?);
    writeln!(labels_file, "timestamp,label")?;
    match &segment.labels {
        LabelTrack::Classes(cs) => {
            for (t, c) in segment.timestamps.iter().zip(cs) {
                writeln!(labels_file, "{t},{c}")?;
            }
        }
        LabelTrack::Values(vs) => {
            for (t, v) in segment.timestamps.iter().zip(vs) {
                writeln!(labels_file, "{t},{v:?}")?;
            }
        }
    }

    // Meta sidecar: name, task, sensor order.
    let mut meta = std::io::BufWriter::new(std::fs::File::create(dir.join("_meta.csv"))?);
    writeln!(meta, "name,{}", segment.name)?;
    let task = match &segment.labels {
        LabelTrack::Classes(_) => "classification",
        LabelTrack::Values(_) => "regression",
    };
    writeln!(meta, "task,{task}")?;
    for name in &segment.sensor_names {
        writeln!(meta, "sensor,{name}")?;
    }
    Ok(())
}

/// Reads a segment previously written by [`save_segment`].
pub fn load_segment(dir: impl AsRef<Path>) -> Result<Segment> {
    let dir = dir.as_ref();

    // Meta first: recovers name, task and sensor order.
    let meta_file = std::fs::File::open(dir.join("_meta.csv"))?;
    let mut name = String::new();
    let mut task = String::new();
    let mut sensor_names: Vec<String> = Vec::new();
    for line in BufReader::new(meta_file).lines() {
        let line = line?;
        let Some((key, value)) = line.split_once(',') else {
            continue;
        };
        match key {
            "name" => name = value.to_string(),
            "task" => task = value.to_string(),
            "sensor" => sensor_names.push(value.to_string()),
            _ => {}
        }
    }
    if sensor_names.is_empty() {
        return Err(DataError::Invalid("_meta.csv lists no sensors".into()));
    }
    if task != "classification" && task != "regression" {
        return Err(DataError::Invalid(format!(
            "_meta.csv declares unknown task `{task}`"
        )));
    }

    // Per-sensor series, in recorded order.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(sensor_names.len());
    let mut timestamps: Option<Vec<u64>> = None;
    for sensor in &sensor_names {
        let path = dir.join(format!("{}.csv", sanitize(sensor)));
        let file = std::fs::File::open(&path).map_err(|e| {
            DataError::Invalid(format!("missing sensor file {}: {e}", path.display()))
        })?;
        let series = read_series(file)?;
        match &timestamps {
            None => timestamps = Some(series.timestamps().to_vec()),
            Some(ts) if ts.as_slice() != series.timestamps() => {
                return Err(DataError::Invalid(format!(
                    "sensor `{sensor}` has a different time axis"
                )))
            }
            _ => {}
        }
        rows.push(series.values().to_vec());
    }
    let timestamps = timestamps.unwrap();
    let matrix = Matrix::from_rows(rows)?;

    // Labels.
    let labels_file = std::fs::File::open(dir.join("_labels.csv"))?;
    let mut class_labels = Vec::new();
    let mut value_labels = Vec::new();
    let classification = task == "classification";
    for (i, line) in BufReader::new(labels_file).lines().enumerate() {
        let line = line?;
        if i == 0 {
            continue; // header
        }
        let Some((_, label)) = line.split_once(',') else {
            return Err(DataError::Parse {
                line: i + 1,
                message: format!("bad label record `{line}`"),
            });
        };
        if classification {
            class_labels.push(
                label
                    .trim()
                    .parse::<usize>()
                    .map_err(|e| DataError::Parse {
                        line: i + 1,
                        message: format!("bad class id `{label}`: {e}"),
                    })?,
            );
        } else {
            value_labels.push(label.trim().parse::<f64>().map_err(|e| DataError::Parse {
                line: i + 1,
                message: format!("bad target `{label}`: {e}"),
            })?);
        }
    }
    let labels = if classification {
        LabelTrack::Classes(class_labels)
    } else {
        LabelTrack::Values(value_labels)
    };
    Segment::new(name, matrix, sensor_names, timestamps, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_segment(labels: LabelTrack) -> Segment {
        let m = Matrix::from_rows([[1.0, 2.5, -3.0], [0.25, 0.5, 0.75]]).unwrap();
        Segment::new(
            "roundtrip",
            m,
            vec!["cpu/user%".into(), "mem.used_gb".into()],
            vec![0, 100, 200],
            labels,
        )
        .unwrap()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cwsmooth-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn classification_roundtrip() {
        let dir = tmpdir("cls");
        let seg = sample_segment(LabelTrack::Classes(vec![0, 2, 1]));
        save_segment(&dir, &seg).unwrap();
        let back = load_segment(&dir).unwrap();
        assert_eq!(back.name, seg.name);
        assert_eq!(back.sensor_names, seg.sensor_names);
        assert_eq!(back.timestamps, seg.timestamps);
        assert_eq!(back.matrix, seg.matrix);
        assert_eq!(back.labels, seg.labels);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn regression_roundtrip_preserves_precision() {
        let dir = tmpdir("reg");
        let seg = sample_segment(LabelTrack::Values(vec![0.1 + 0.2, 1.0 / 3.0, -7.25]));
        save_segment(&dir, &seg).unwrap();
        let back = load_segment(&dir).unwrap();
        assert_eq!(back.labels, seg.labels);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sanitization_keeps_names_via_meta() {
        let dir = tmpdir("names");
        let seg = sample_segment(LabelTrack::Classes(vec![0, 0, 0]));
        save_segment(&dir, &seg).unwrap();
        // file uses the sanitized stem...
        assert!(dir.join("cpu_user_.csv").exists());
        // ...but the loaded segment restores the original name.
        let back = load_segment(&dir).unwrap();
        assert_eq!(back.sensor_names[0], "cpu/user%");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn name_collisions_are_rejected() {
        let m = Matrix::zeros(2, 2);
        let seg = Segment::new(
            "collide",
            m,
            vec!["a/b".into(), "a?b".into()], // both sanitize to a_b
            vec![0, 1],
            LabelTrack::Classes(vec![0, 0]),
        )
        .unwrap();
        let dir = tmpdir("collide");
        assert!(save_segment(&dir, &seg).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_error_cleanly() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_segment(&dir).is_err());
        // partial dir: meta but no sensor files
        std::fs::write(
            dir.join("_meta.csv"),
            "name,x\ntask,classification\nsensor,s0\n",
        )
        .unwrap();
        assert!(load_segment(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
