//! Error type for the data layer.

use std::fmt;

/// Errors produced while reading, aligning or windowing monitoring data.
#[derive(Debug)]
pub enum DataError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A CSV record could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A shape/consistency violation (mismatched lengths, empty input, ...).
    Invalid(String),
    /// Propagated matrix error.
    Linalg(cwsmooth_linalg::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Invalid(m) => write!(f, "invalid data: {m}"),
            DataError::Linalg(e) => write!(f, "matrix error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<cwsmooth_linalg::Error> for DataError {
    fn from(e: cwsmooth_linalg::Error) -> Self {
        DataError::Linalg(e)
    }
}

/// Convenience alias for the data layer.
pub type Result<T> = std::result::Result<T, DataError>;
