//! Hardening suite for `cwsmooth_data::store`: property-based
//! save/load round-trips over arbitrary segments, and proof that
//! truncated or garbage on-disk state surfaces `Err` — never a panic.

use cwsmooth_data::store::{load_segment, save_segment};
use cwsmooth_data::{LabelTrack, Segment};
use cwsmooth_linalg::Matrix;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cwsmooth-data-hardening-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Sensor names with the frictions real exports have (slashes, spaces,
/// percent signs), kept collision-free by the index prefix.
fn sensor_names(n: usize) -> Vec<String> {
    let frills = ["cpu/user%", "mem used gb", "temp.in", "power#w", "plain"];
    (0..n)
        .map(|i| format!("s{i}_{}", frills[i % frills.len()]))
        .collect()
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (1usize..6, 1usize..20, any::<bool>()).prop_flat_map(|(sensors, samples, classify)| {
        let values = prop::collection::vec(-1e9f64..1e9f64, sensors * samples);
        let class_labels = prop::collection::vec(0usize..7, samples);
        let value_labels = prop::collection::vec(-1e6f64..1e6f64, samples);
        (values, class_labels, value_labels).prop_map(move |(v, cl, vl)| {
            let matrix = Matrix::from_vec(sensors, samples, v).unwrap();
            let timestamps: Vec<u64> = (0..samples as u64).map(|t| t * 100 + 7).collect();
            let labels = if classify {
                LabelTrack::Classes(cl)
            } else {
                LabelTrack::Values(vl)
            };
            Segment::new(
                "prop-seg",
                matrix,
                sensor_names(sensors),
                timestamps,
                labels,
            )
            .unwrap()
        })
    })
}

proptest! {
    #[test]
    fn save_load_roundtrip_preserves_everything(seg in arb_segment()) {
        let dir = tmpdir();
        save_segment(&dir, &seg).unwrap();
        let back = load_segment(&dir).unwrap();
        prop_assert_eq!(&back.name, &seg.name);
        prop_assert_eq!(&back.sensor_names, &seg.sensor_names);
        prop_assert_eq!(&back.timestamps, &seg.timestamps);
        prop_assert_eq!(&back.labels, &seg.labels);
        // Values round-trip exactly (shortest-f64 formatting).
        prop_assert_eq!(&back.matrix, &seg.matrix);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Chopping any sidecar or sensor file at any point must produce a
    /// clean `Err`, never a panic.
    #[test]
    fn truncated_files_error_cleanly(
        seg in arb_segment(),
        victim in 0usize..3,
        frac in 0.0f64..0.95,
    ) {
        let dir = tmpdir();
        save_segment(&dir, &seg).unwrap();
        let path = match victim {
            0 => dir.join("_meta.csv"),
            1 => dir.join("_labels.csv"),
            _ => {
                let stem: String = seg.sensor_names[0]
                    .chars()
                    .map(|c| if c.is_ascii_alphanumeric() || "-_.".contains(c) { c } else { '_' })
                    .collect();
                dir.join(format!("{stem}.csv"))
            }
        };
        let len = std::fs::metadata(&path).unwrap().len();
        let cut = (len as f64 * frac) as u64;
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(cut).unwrap();
        match load_segment(&dir) {
            Ok(back) => {
                // A cut that happens to leave valid CSV may still load;
                // then it must be internally consistent.
                prop_assert_eq!(back.sensor_names.len(), back.matrix.rows());
                prop_assert_eq!(back.timestamps.len(), back.matrix.cols());
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Overwriting any file with arbitrary bytes (including invalid
    /// UTF-8) must produce `Err` or a consistent segment, never a panic.
    #[test]
    fn garbage_files_error_cleanly(
        seg in arb_segment(),
        victim in 0usize..2,
        garbage in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let dir = tmpdir();
        save_segment(&dir, &seg).unwrap();
        let path = if victim == 0 { dir.join("_meta.csv") } else { dir.join("_labels.csv") };
        std::fs::write(&path, &garbage).unwrap();
        match load_segment(&dir) {
            Ok(back) => {
                prop_assert_eq!(back.sensor_names.len(), back.matrix.rows());
                prop_assert_eq!(back.timestamps.len(), back.matrix.cols());
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn names_with_line_breaks_are_rejected_on_save() {
    let m = Matrix::from_rows([[1.0, 2.0]]).unwrap();
    let seg = Segment::new(
        "bad\nname",
        m.clone(),
        vec!["s0".into()],
        vec![0, 1],
        LabelTrack::Classes(vec![0, 0]),
    )
    .unwrap();
    let dir = tmpdir();
    assert!(save_segment(&dir, &seg).is_err());
    let seg = Segment::new(
        "ok",
        m,
        vec!["s\r0".into()],
        vec![0, 1],
        LabelTrack::Classes(vec![0, 0]),
    )
    .unwrap();
    assert!(save_segment(&dir, &seg).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reserved_sidecar_stems_are_rejected_on_save() {
    let m = Matrix::from_rows([[1.0, 2.0]]).unwrap();
    // These sanitize to sidecar stems; writing them would let the
    // sidecar overwrite the sensor's data file.
    for name in ["_labels", "_meta"] {
        let seg = Segment::new(
            "reserved",
            m.clone(),
            vec![name.to_string()],
            vec![0, 1],
            LabelTrack::Classes(vec![0, 0]),
        )
        .unwrap();
        let dir = tmpdir();
        assert!(save_segment(&dir, &seg).is_err(), "{name} accepted");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn unknown_task_kind_is_rejected_on_load() {
    let dir = tmpdir();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("_meta.csv"), "name,x\ntask,sorcery\nsensor,s0\n").unwrap();
    std::fs::write(dir.join("s0.csv"), "timestamp,value\n0,1.0\n").unwrap();
    std::fs::write(dir.join("_labels.csv"), "timestamp,label\n0,0\n").unwrap();
    let err = load_segment(&dir).unwrap_err();
    assert!(err.to_string().contains("sorcery"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
