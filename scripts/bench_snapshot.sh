#!/usr/bin/env bash
# Runs the ML-substrate, CS-stage, signature-store and streaming-pipeline
# benchmarks and refreshes the machine-readable perf snapshots
# (BENCH_ml.json, BENCH_store.json and BENCH_pipeline.json) used to track
# the performance trajectory across PRs.
#
#   ./scripts/bench_snapshot.sh          # full run (criterion + snapshots)
#   BENCH_QUICK=1 ./scripts/bench_snapshot.sh   # CI smoke: snapshots only,
#                                               # single rep per entry
set -euo pipefail
cd "$(dirname "$0")/.."

# A perf snapshot from a tree that violates its own invariants is not a
# trustworthy data point: run the workspace lint first and refuse to
# emit BENCH_*.json if it fails.
if ! cargo run --release -q -p cwsmooth-lint -- --workspace; then
    echo "bench_snapshot: workspace lint failed; refusing to emit BENCH snapshots" >&2
    exit 1
fi

if [ -z "${BENCH_QUICK:-}" ]; then
    cargo bench --bench forest
    cargo bench --bench cs_stages
    cargo bench --bench store
    cargo bench --bench pipeline
fi
cargo run --release -p cwsmooth-bench --bin bench_snapshot
cargo run --release -p cwsmooth-bench --bin bench_store_snapshot
cargo run --release -p cwsmooth-bench --bin bench_pipeline_snapshot
echo "== BENCH_ml.json =="
cat BENCH_ml.json
echo "== BENCH_store.json =="
cat BENCH_store.json
echo "== BENCH_pipeline.json =="
cat BENCH_pipeline.json
