#!/usr/bin/env bash
# Runs the ML-substrate and CS-stage benchmarks and refreshes the
# machine-readable perf snapshot (BENCH_ml.json) used to track the
# performance trajectory across PRs.
#
#   ./scripts/bench_snapshot.sh          # full run (criterion + snapshot)
#   BENCH_QUICK=1 ./scripts/bench_snapshot.sh   # CI smoke: snapshot only,
#                                               # single rep per entry
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -z "${BENCH_QUICK:-}" ]; then
    cargo bench --bench forest
    cargo bench --bench cs_stages
fi
cargo run --release -p cwsmooth-bench --bin bench_snapshot
echo "== BENCH_ml.json =="
cat BENCH_ml.json
