//! # cwsmooth — Correlation-wise Smoothing for HPC monitoring data
//!
//! A Rust reproduction of *"Correlation-wise Smoothing: Lightweight
//! Knowledge Extraction for HPC Monitoring Data"* (Netti, Tafani, Ott,
//! Schulz — IPDPS 2021). The CS method turns high-dimensional time-series
//! monitoring data into compact, image-like signatures that are cheap to
//! compute, easy to visualize, and portable across systems.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`linalg`] — dense sensor matrices, statistics, correlation.
//! * [`data`] — CSV I/O, time alignment, segments and windowing.
//! * [`sim`] — the HPC-ODA-like monitoring-data simulator.
//! * [`ml`] — random forests (exact and binned-histogram split engines,
//!   weight-based bagging, single-row predictors), MLPs, cross-validation,
//!   metrics, and the streaming per-event fault detector.
//! * [`core`] — the CS method and the Tuncer/Bodik/Lan baselines, plus
//!   online streaming, the sharded fleet engine and the composable
//!   sink-pipeline operators (`Tee`/`Filter`/`NodeRoute`/`Sample`).
//! * [`analysis`] — Jensen-Shannon fidelity metrics, online drift
//!   monitoring and heatmap imaging.
//! * [`store`] — the persistent compressed signature store (append-only
//!   columnar segments, exact or quantized) and k-NN similarity search.
//! * [`net`] — fault-tolerant cross-process transport: `.cws` wire
//!   framing over unix/TCP sockets, reconnect with capped backoff,
//!   spill-to-disk degradation, and a seeded chaos-testing harness.
//! * [`obs`] — the observability plane: zero-alloc metrics registry
//!   (counters, gauges, log2 histograms, stage spans), the `Observe`
//!   snapshot trait every pipeline stage implements, and Prometheus
//!   text / JSON encoders behind `net`'s `GET /metrics` endpoint.
//!
//! ## Quickstart
//!
//! ```
//! use cwsmooth::core::cs::{CsMethod, CsTrainer};
//! use cwsmooth::core::method::SignatureMethod;
//! use cwsmooth::sim::segments::{power_segment, SimConfig};
//!
//! // Simulate a CooLMUC-3-style node trace (47 sensors).
//! let segment = power_segment(SimConfig::new(42, 600));
//!
//! // Train a CS model once, offline.
//! let model = CsTrainer::default().train(&segment.matrix).unwrap();
//!
//! // Compute a 10-block signature for a 10-sample window.
//! let cs = CsMethod::new(model, 10).unwrap();
//! let window = segment.matrix.col_window(100, 110).unwrap();
//! let sig = cs.compute(&window, None).unwrap();
//! assert_eq!(sig.len(), 20); // 10 complex blocks -> 20 features
//! ```

pub use cwsmooth_analysis as analysis;
pub use cwsmooth_core as core;
pub use cwsmooth_data as data;
pub use cwsmooth_linalg as linalg;
pub use cwsmooth_ml as ml;
pub use cwsmooth_net as net;
pub use cwsmooth_obs as obs;
pub use cwsmooth_sim as sim;
pub use cwsmooth_store as store;
