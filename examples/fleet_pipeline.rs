//! The first true end-to-end streaming ODA loop: a whole fleet flows
//! frame → signature → `Tee(store, detector, drift)` in one composable,
//! allocation-free dataflow.
//!
//! ```text
//!                                      ┌─► SignatureStore     (persist, quantized)
//!  FleetScenario ─► FleetEngine ─► Tee ┼─► StreamingDetector  (fault classify)
//!   (+ injected faults)                └─► DriftMonitor       (JSD vs reference)
//! ```
//!
//! Offline, a CS model is trained on pooled healthy history and a
//! random-forest fault classifier on labelled faulted streams (the
//! `sim::faults` injectors applied to the fleet scenario's latent
//! state). Online, every node streams through the sharded engine; each
//! completed-window signature is persisted, classified and
//! drift-checked in a single delivery pass. The run reports detection
//! accuracy against the injected ground truth, alarm latency and
//! ingest throughput.
//!
//! ```sh
//! cargo run --release --example fleet_pipeline
//! PIPE_NODES=256 PIPE_FRAMES=900 cargo run --release --example fleet_pipeline
//! ```

use cwsmooth::analysis::drift::{DriftConfig, DriftMonitor};
use cwsmooth::core::cs::{CsMethod, CsSignature, CsTrainer};
use cwsmooth::core::error::Result as CoreResult;
use cwsmooth::core::fleet::{FleetEvent, FleetSink};
use cwsmooth::core::online::OnlineCs;
use cwsmooth::core::pipeline::Tee;
use cwsmooth::core::FleetEngine;
use cwsmooth::data::WindowSpec;
use cwsmooth::linalg::Matrix;
use cwsmooth::ml::forest::RandomForestClassifier;
use cwsmooth::ml::streaming::{DetectorConfig, StreamingDetector};
use cwsmooth::sim::faults::{FaultKind, FaultSetting};
use cwsmooth::sim::fleet::{
    FaultSegmentSpec, FaultedFleet, FleetFaultPlan, FleetScenario, FleetSimConfig, FLEET_SENSORS,
};
use cwsmooth::store::{Encoding, SignatureStore, StoreConfig};
use std::time::Instant;

/// Fault kinds the detector is trained on, in dense-label order
/// (label 0 = healthy, label i+1 = KINDS[i]). These five have strong
/// footprints on the eight observed fleet sensors.
const KINDS: [FaultKind; 5] = [
    FaultKind::CpuOccupy,
    FaultKind::MemLeak,
    FaultKind::MemEater,
    FaultKind::NetDegrade,
    FaultKind::FreqCap,
];

const L: usize = 8;
const TRAIN: usize = 256;
const WL: usize = 30;
const STRIDE: usize = 10;
const FAULT_LEN: usize = 300;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Dense training/eval label of a fault class id (0 stays healthy).
fn dense_label(class_id: usize) -> Option<usize> {
    if class_id == 0 {
        return Some(0);
    }
    KINDS
        .iter()
        .position(|k| k.class_id() == class_id)
        .map(|i| i + 1)
}

/// Streams one node's frames `[from, to)` through a fresh `OnlineCs`
/// and hands every completed window to `take(window_index, features)`.
fn windows_of(
    cs: &CsMethod,
    spec: WindowSpec,
    read: impl Fn(usize, &mut [f64]),
    from: usize,
    to: usize,
    mut take: impl FnMut(usize, &[f64]),
) {
    let mut stream = OnlineCs::new(cs.clone(), spec);
    let mut column = vec![0.0; FLEET_SENSORS];
    let mut sig = CsSignature::default();
    let mut features: Vec<f64> = Vec::new();
    for t in from..to {
        read(t, &mut column);
        if stream.push_into(&column, &mut sig).unwrap() {
            sig.features_into(&mut features);
            take(stream.emitted() - 1, &features);
        }
    }
}

/// Scores the detector's per-event verdicts against the injected ground
/// truth while forwarding every event — a plain [`FleetSink`] sitting
/// in the Tee right behind the detector.
struct Scorer<'a> {
    detector: &'a mut StreamingDetector,
    fleet: &'a FaultedFleet,
    /// Absolute frame of stream sample 0.
    t0: usize,
    scored: u64,
    correct: u64,
    fault_scored: u64,
    fault_correct: u64,
    /// Per dense label: (windows scored, windows correct).
    per_class: Vec<(u64, u64)>,
    /// Per fault segment (plan order): end frame of the first correctly
    /// classified window, for alarm-latency accounting.
    first_hit: Vec<Option<usize>>,
}

impl FleetSink for Scorer<'_> {
    fn on_event(&mut self, event: &FleetEvent) -> CoreResult<()> {
        self.detector.on_event(event)?;
        // Window w covers absolute frames [a, b).
        let a = self.t0 + event.window_index * STRIDE;
        let b = a + WL;
        let class_a = self.fleet.class_at(event.node, a);
        let class_b = self.fleet.class_at(event.node, b - 1);
        if class_a != class_b {
            return Ok(()); // transition window: no single ground truth
        }
        let Some(truth) = dense_label(class_a) else {
            return Ok(());
        };
        let verdict = self.detector.verdict(event.node).unwrap().class;
        self.scored += 1;
        self.per_class[truth].0 += 1;
        if verdict == truth {
            self.correct += 1;
            self.per_class[truth].1 += 1;
        }
        if truth != 0 {
            self.fault_scored += 1;
            if verdict == truth {
                self.fault_correct += 1;
                let seg_idx = self
                    .fleet
                    .plan()
                    .segments()
                    .iter()
                    .position(|s| s.node == event.node && s.covers(a))
                    .expect("fault window belongs to a segment");
                let hit = &mut self.first_hit[seg_idx];
                if hit.is_none() {
                    *hit = Some(b);
                }
            }
        }
        Ok(())
    }
}

fn main() {
    let nodes = env_or("PIPE_NODES", 1024);
    let frames = env_or("PIPE_FRAMES", 1200);
    assert!(frames > FAULT_LEN + WL, "need room for fault segments");
    let spec = WindowSpec::new(WL, STRIDE).unwrap();
    let scenario = FleetScenario::new(FleetSimConfig::new(42, nodes));
    println!(
        "fleet pipeline: {nodes} nodes x {FLEET_SENSORS} sensors, {frames} live frames, \
         CS-{L} over {WL}/{STRIDE} windows"
    );

    // ---- Offline 1: one CS model on pooled healthy history. A shared
    // model keeps signatures comparable across nodes (one block layout,
    // one ordering), which is what lets a single classifier serve the
    // whole fleet.
    let t0 = Instant::now();
    let pool_nodes: Vec<usize> = (0..8.min(nodes))
        .map(|i| (i * nodes.div_ceil(8)) % nodes)
        .collect();
    let mut pooled = Matrix::zeros(FLEET_SENSORS, pool_nodes.len() * TRAIN);
    let mut buf = [0.0; FLEET_SENSORS];
    for (i, &node) in pool_nodes.iter().enumerate() {
        for t in 0..TRAIN {
            scenario.reading_into(node, t, &mut buf);
            for (r, &v) in buf.iter().enumerate() {
                pooled.set(r, i * TRAIN + t, v);
            }
        }
    }
    let cs = CsMethod::new(CsTrainer::default().train(&pooled).unwrap(), L).unwrap();

    // ---- Offline 2: labelled signature streams for the detector. Lab
    // nodes spread across racks run every fault kind at both settings;
    // healthy streams come from the clean scenario — from a *wider* node
    // set, since healthy behaviour (phases, periods, rack inlets) varies
    // more across the fleet than fault footprints do.
    let lab_nodes: Vec<usize> = (0..12)
        .map(|i| (i * nodes.div_ceil(12) + 3) % nodes)
        .collect();
    let healthy_nodes: Vec<usize> = (0..48.min(nodes))
        .map(|i| (i * nodes.div_ceil(48) + 1) % nodes)
        .collect();
    let label_frames = TRAIN + 400;
    let mut rows: Vec<(Vec<f64>, usize)> = Vec::new();
    for &node in &healthy_nodes {
        // Healthy, over two disjoint time ranges for workload variety.
        for range in [TRAIN..label_frames, label_frames..label_frames + 400] {
            windows_of(
                &cs,
                spec,
                |t, out| scenario.reading_into(node, t, out),
                range.start,
                range.end,
                |_, feats| rows.push((feats.to_vec(), 0)),
            );
        }
    }
    for &node in &lab_nodes {
        for (ki, &kind) in KINDS.iter().enumerate() {
            for setting in [FaultSetting::Low, FaultSetting::High] {
                let plan = FleetFaultPlan::new().with(FaultSegmentSpec {
                    node,
                    start: TRAIN,
                    len: label_frames - TRAIN,
                    kind,
                    setting,
                });
                let faulted = FaultedFleet::new(scenario, plan);
                windows_of(
                    &cs,
                    spec,
                    |t, out| faulted.reading_into(node, t, out),
                    TRAIN,
                    label_frames,
                    |_, feats| rows.push((feats.to_vec(), ki + 1)),
                );
            }
        }
    }
    // The paper's 50-tree forest (depth-capped: 8-dim signatures need no
    // deep trees and the detector walks every tree per event).
    let mut forest_cfg = cwsmooth::ml::forest::ForestConfig::classification(7);
    forest_cfg.tree.max_depth = Some(14);
    let mut forest = RandomForestClassifier::with_config(forest_cfg);
    forest
        .fit_labelled_rows(rows.iter().map(|(f, c)| (f.as_slice(), *c)))
        .unwrap();
    println!(
        "offline: CS model on {}-node pooled history + forest on {} labelled windows \
         ({} classes) in {:.0} ms",
        pool_nodes.len(),
        rows.len(),
        forest.n_classes(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // ---- Eval fault plan: one segment on every 8th node, kinds cycling,
    // starts staggered (but always after the drift monitor's calibration
    // period — production calibrates while known-healthy) so faults
    // overlap in time but not per node.
    let first_start = 520;
    assert!(
        frames > first_start + FAULT_LEN + WL,
        "need room for faults"
    );
    let mut plan = FleetFaultPlan::new();
    let mut eval_segments = 0usize;
    for (i, node) in (0..nodes).skip(4).step_by(8).enumerate() {
        let start = TRAIN + first_start + (i % 5) * ((frames - FAULT_LEN - first_start - WL) / 5);
        plan = plan.with(FaultSegmentSpec {
            node,
            start,
            len: FAULT_LEN,
            kind: KINDS[i % KINDS.len()],
            setting: FaultSetting::High,
        });
        eval_segments += 1;
    }
    let fleet = FaultedFleet::new(scenario, plan);

    // ---- Online: the sharded engine drives the 3-sink Tee.
    let dir = std::env::temp_dir().join(format!("cwsmooth-fleet-pipeline-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut store = SignatureStore::open(
        &dir,
        spec,
        L,
        StoreConfig::default().with_encoding(Encoding::Quant8),
    )
    .unwrap();
    let mut detector = StreamingDetector::new(
        forest,
        DetectorConfig {
            healthy_class: 0,
            min_run: 2,
        },
    )
    .unwrap();
    detector.reserve_nodes(nodes);
    // Tumbling windows of 12 events span 120 frames — short enough that
    // a 300-frame fault always covers at least one whole window. The
    // reference accumulates 4 windows (480 frames, all pre-fault) so the
    // workload's own periodicity is inside the baseline, and the value
    // range is trimmed to where CS features actually live.
    let mut drift = DriftMonitor::new(DriftConfig {
        bins: 6,
        window_events: 12,
        reference_windows: 4,
        threshold: 0.25,
        lo: -0.2,
        hi: 1.0,
    });
    let mut engine = FleetEngine::homogeneous(cs, nodes, spec).unwrap();
    let mut frame = engine.frame();

    let mut scorer = Scorer {
        detector: &mut detector,
        fleet: &fleet,
        t0: TRAIN,
        scored: 0,
        correct: 0,
        fault_scored: 0,
        fault_correct: 0,
        per_class: vec![(0, 0); KINDS.len() + 1],
        first_hit: vec![None; eval_segments],
    };
    let t1 = Instant::now();
    {
        let mut tee = Tee((&mut store, &mut scorer, &mut drift));
        for f in 0..frames {
            let t = TRAIN + f;
            frame.clear();
            for node in 0..nodes {
                fleet.reading_into(node, t, frame.slot_mut(node).unwrap());
            }
            engine.ingest_frame_sink(&frame, &mut tee).unwrap();
        }
    }
    let elapsed = t1.elapsed().as_secs_f64();
    let stats = engine.stats();
    println!(
        "\nonline: {frames} frames -> {} events through Tee(store, detector, drift) \
         in {:.0} ms ({:.0} k events/s, {:.2} M columns/s)",
        stats.events,
        elapsed * 1e3,
        stats.events as f64 / elapsed / 1e3,
        (frames * nodes) as f64 / elapsed / 1e6
    );
    store.flush().unwrap();
    println!(
        "store: {} events in {} segments, {:.1} KiB on disk (quantized)",
        store.events(),
        store.segments().len(),
        store.bytes_on_disk() as f64 / 1024.0
    );

    // ---- Detection scorecard.
    let accuracy = scorer.correct as f64 / scorer.scored.max(1) as f64;
    let fault_recall = scorer.fault_correct as f64 / scorer.fault_scored.max(1) as f64;
    let detected = scorer.first_hit.iter().filter(|h| h.is_some()).count();
    let latencies: Vec<f64> = scorer
        .first_hit
        .iter()
        .enumerate()
        .filter_map(|(i, hit)| hit.map(|end| (end - fleet.plan().segments()[i].start) as f64))
        .collect();
    let mean_latency = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    println!(
        "\ndetector: {:.1}% window accuracy ({} windows scored), \
         {:.1}% fault-window accuracy",
        100.0 * accuracy,
        scorer.scored,
        100.0 * fault_recall
    );
    for (label, &(scored, correct)) in scorer.per_class.iter().enumerate() {
        let name = if label == 0 {
            "healthy"
        } else {
            KINDS[label - 1].name()
        };
        println!(
            "  {name:>14}: {:>6.1}% of {scored} windows",
            100.0 * correct as f64 / scored.max(1) as f64
        );
    }
    println!(
        "alarms: {detected}/{eval_segments} injected faults detected, \
         mean first-detection latency {:.0} frames (window covers {WL})",
        mean_latency
    );
    let alarmed: Vec<usize> = detector.alarmed_nodes().collect();
    let faulty_now: Vec<usize> = fleet
        .plan()
        .segments()
        .iter()
        .filter(|s| s.covers(TRAIN + frames - 1))
        .map(|s| s.node)
        .collect();
    println!(
        "detector alarms live on {} nodes (ground truth: {} nodes faulted at end of run)",
        alarmed.len(),
        faulty_now.len()
    );
    // Drift is unsupervised: it flags any distribution change, injected
    // faults and natural workload drift alike. The useful signal is the
    // *separation* between faulted and clean nodes' peak JSD.
    let faulted_nodes: Vec<usize> = fleet.plan().segments().iter().map(|s| s.node).collect();
    let mean_peak = |sel: &dyn Fn(usize) -> bool| {
        let peaks: Vec<f64> = (0..nodes)
            .filter(|&n| sel(n))
            .filter_map(|n| drift.peak_jsd(n))
            .collect();
        peaks.iter().sum::<f64>() / peaks.len().max(1) as f64
    };
    let peak_faulted = mean_peak(&|n| faulted_nodes.contains(&n));
    let peak_clean = mean_peak(&|n| !faulted_nodes.contains(&n));
    println!(
        "drift monitor: {} comparisons, max JSD {:.3}; mean peak JSD {:.3} on faulted \
         nodes vs {:.3} on clean ones ({} nodes over the {:.2} alarm threshold)",
        drift.comparisons(),
        drift.max_jsd(),
        peak_faulted,
        peak_clean,
        drift.alarmed_nodes().count(),
        drift.config().threshold
    );
    assert!(
        peak_faulted > peak_clean,
        "injected faults should drift more than healthy workload wander"
    );

    assert!(
        accuracy >= 0.9,
        "detection accuracy {accuracy:.3} below the 0.9 acceptance bar"
    );
    std::fs::remove_dir_all(&dir).ok();
    println!("\nPASS: streaming ODA pipeline detected injected faults at >= 0.9 accuracy");
}
