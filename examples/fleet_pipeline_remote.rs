//! The streaming ODA pipeline split across **two processes**: the
//! producer computes CS signatures in this process and ships every
//! [`FleetEvent`] over loopback TCP to a consumer process that owns the
//! [`SignatureStore`] — then the consumer is **killed mid-stream** and
//! restarted to demonstrate the transport's fault tolerance end to end.
//!
//! ```text
//!  producer process                       consumer process (respawned
//!  FleetScenario ─► OnlineCs ─► SocketSink ══ TCP ══► Server ─► SignatureStore
//!                      (spill + reconnect)   ▲ kill -9 at half-stream ▲
//! ```
//!
//! The consumer is this same binary re-executed with `--consumer`; the
//! producer picks a free port, spawns it, and `SIGKILL`s it once half
//! the events are pushed. While the port is dark the client spills to
//! disk and backs off; when the respawned consumer re-seeds its dedupe
//! floors from the recovered store, the client drains the backlog and
//! replays the unacknowledged tail — duplicates are absorbed, nothing
//! is lost, and the final store holds every event exactly once.
//!
//! ```sh
//! cargo run --release --example fleet_pipeline_remote
//! REMOTE_NODES=128 REMOTE_FRAMES=900 cargo run --release --example fleet_pipeline_remote
//! ```

use cwsmooth::core::cs::{CsMethod, CsSignature, CsTrainer};
use cwsmooth::core::fleet::{FleetEvent, FleetSink};
use cwsmooth::core::online::OnlineCs;
use cwsmooth::data::WindowSpec;
use cwsmooth::linalg::Matrix;
use cwsmooth::net::{BlockCodec, NetConfig, Server, ServerConfig, SocketSink, TcpAcceptor};
use cwsmooth::sim::fleet::{FleetScenario, FleetSimConfig, FLEET_SENSORS};
use cwsmooth::store::{Encoding, SignatureStore, StoreConfig};
use std::net::TcpListener;
use std::process::Command;
use std::time::{Duration, Instant};

const L: usize = 8;
const WL: usize = 30;
const STRIDE: usize = 10;
const TRAIN: usize = 256;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn spec() -> WindowSpec {
    WindowSpec::new(WL, STRIDE).unwrap()
}

fn codec() -> BlockCodec {
    BlockCodec::new(Encoding::Exact, L, spec()).unwrap()
}

/// The consumer role: bind the agreed port, serve frames into the
/// store, exit after the producer's closing bye. A restarted consumer
/// recovers the store from disk and re-seeds its dedupe floors from
/// it, so replayed events are absorbed instead of duplicated.
fn run_consumer(dir: &str, port: u16) -> i32 {
    let mut store = match SignatureStore::open(dir, spec(), L, StoreConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[consumer] store open failed: {e}");
            return 1;
        }
    };
    let rec = store.recovery();
    println!(
        "[consumer] store up: {} events recovered ({} segments, {} bytes crash tail cut)",
        rec.events, rec.segments, rec.bytes_truncated
    );
    let cfg = ServerConfig {
        stop_on_bye: true,
        ..ServerConfig::default()
    };
    let mut server = match Server::new(codec(), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[consumer] server setup failed: {e}");
            return 1;
        }
    };
    if let Err(e) = server.seed_from_store(&store) {
        eprintln!("[consumer] dedupe seeding failed: {e}");
        return 1;
    }
    // A killed predecessor can leave the port in TIME_WAIT briefly;
    // retry the bind instead of failing the restart.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut acceptor = loop {
        match TcpAcceptor::bind(("127.0.0.1", port)) {
            Ok(a) => break a,
            Err(e) if Instant::now() < deadline => {
                eprintln!("[consumer] bind retry: {e}");
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => {
                eprintln!("[consumer] bind failed: {e}");
                return 1;
            }
        }
    };
    println!("[consumer] listening on 127.0.0.1:{port}");
    if let Err(e) = server.serve(&mut acceptor, &mut store) {
        eprintln!("[consumer] serve failed: {e}");
        return 1;
    }
    if let Err(e) = store.flush() {
        eprintln!("[consumer] final flush failed: {e}");
        return 1;
    }
    let s = server.stats();
    println!(
        "[consumer] done: {} connections, {} frames, {} events stored, {} replays deduped",
        s.connections, s.frames, s.events, s.deduped
    );
    0
}

/// Blocks until the consumer accepts on `port` (the probe connection
/// is dropped unsent; the server tolerates it as a clean EOF). Without
/// this the producer outruns the consumer's startup and the mid-stream
/// kill would hit a connection that never carried an event.
fn wait_listening(port: u16) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if std::net::TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("consumer never started listening on port {port}");
}

fn spawn_consumer(dir: &str, port: u16) -> std::process::Child {
    let exe = std::env::current_exe().expect("own executable path");
    Command::new(exe)
        .arg("--consumer")
        .arg(dir)
        .arg(port.to_string())
        .spawn()
        .expect("spawn consumer process")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--consumer" {
        let port: u16 = args[3].parse().expect("port argument");
        std::process::exit(run_consumer(&args[2], port));
    }

    let nodes = env_or("REMOTE_NODES", 64);
    let frames = env_or("REMOTE_FRAMES", 600);
    let windows_per_node = if frames >= WL {
        (frames - WL) / STRIDE + 1
    } else {
        0
    };
    let total = nodes * windows_per_node;
    println!(
        "remote fleet pipeline: {nodes} nodes x {FLEET_SENSORS} sensors, {frames} frames \
         -> {total} events over loopback TCP, consumer killed at half-stream"
    );

    let scratch = std::env::temp_dir().join(format!("cwsmooth-remote-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let store_dir = scratch.join("store");
    let spill_dir = scratch.join("spill");
    std::fs::create_dir_all(&store_dir).unwrap();

    // A free port the consumer can re-bind across restarts: bind :0 to
    // let the kernel pick, then release it for the child.
    let port = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let store_dir_s = store_dir.to_string_lossy().into_owned();
    let mut consumer = spawn_consumer(&store_dir_s, port);

    // ---- Offline: one shared CS model from pooled healthy history.
    let t0 = Instant::now();
    let scenario = FleetScenario::new(FleetSimConfig::new(42, nodes));
    let pool_nodes: Vec<usize> = (0..8.min(nodes)).collect();
    let mut pooled = Matrix::zeros(FLEET_SENSORS, pool_nodes.len() * TRAIN);
    let mut buf = [0.0; FLEET_SENSORS];
    for (i, &node) in pool_nodes.iter().enumerate() {
        for t in 0..TRAIN {
            scenario.reading_into(node, t, &mut buf);
            for (r, &v) in buf.iter().enumerate() {
                pooled.set(r, i * TRAIN + t, v);
            }
        }
    }
    let cs = CsMethod::new(CsTrainer::default().train(&pooled).unwrap(), L).unwrap();
    println!("offline: CS model trained in {:.2?}", t0.elapsed());

    // ---- Online: stream windows node-major through the socket sink.
    wait_listening(port);
    let t1 = Instant::now();
    let mut sink = SocketSink::tcp(
        ("127.0.0.1", port),
        codec(),
        &spill_dir,
        NetConfig::default(),
    )
    .unwrap();
    let mut streams: Vec<OnlineCs> = (0..nodes)
        .map(|_| OnlineCs::new(cs.clone(), spec()))
        .collect();
    let mut sig = CsSignature::default();
    let mut event = FleetEvent::default();
    let mut pushed = 0usize;
    let mut killed = false;
    for t in 0..frames {
        for (node, stream) in streams.iter_mut().enumerate() {
            scenario.reading_into(node, t, &mut buf);
            if stream.push_into(&buf, &mut sig).unwrap() {
                event.node = node;
                event.window_index = stream.emitted() - 1;
                std::mem::swap(&mut event.signature, &mut sig);
                sink.on_event(&event).unwrap();
                std::mem::swap(&mut event.signature, &mut sig);
                pushed += 1;
                if !killed && pushed >= total / 2 {
                    // SIGKILL mid-stream: unacked frames die with the
                    // connection, new events spill to disk.
                    consumer.kill().expect("kill consumer");
                    consumer.wait().expect("reap consumer");
                    println!(
                        "producer: consumer killed after {pushed} events; \
                         spilling while the port is dark"
                    );
                    consumer = spawn_consumer(&store_dir_s, port);
                    killed = true;
                }
            }
        }
    }
    let (stats, result) = sink.finish(Duration::from_secs(60));
    result.expect("drain after reconnect");
    println!(
        "producer: {} accepted, {} sent (+{} retransmitted), {} spilled / {} drained, \
         {} dropped, {} connects ({} failures) in {:.2?}",
        stats.accepted,
        stats.sent,
        stats.retransmitted,
        stats.spilled,
        stats.drained,
        stats.dropped,
        stats.connects,
        stats.connect_failures,
        t1.elapsed()
    );

    let status = consumer.wait().expect("consumer exit");
    assert!(status.success(), "consumer exited with {status}");

    // ---- Verify: the store must hold every event exactly once.
    let store = SignatureStore::open(&store_dir, spec(), L, StoreConfig::default()).unwrap();
    assert_eq!(stats.accepted, total as u64);
    assert_eq!(stats.dropped, 0, "unbounded spill must drop nothing");
    assert_eq!(
        store.events(),
        total as u64,
        "every event must be stored exactly once despite the kill"
    );
    println!(
        "verified: store holds {} events across {} segments — zero loss, zero duplicates",
        store.events(),
        store.segments().len()
    );
    let _ = std::fs::remove_dir_all(&scratch);
}
