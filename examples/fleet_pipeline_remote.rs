//! The streaming ODA pipeline split across **two processes**: the
//! producer computes CS signatures in this process and ships every
//! [`FleetEvent`] over loopback TCP to a consumer process that owns the
//! [`SignatureStore`] — then the consumer is **killed mid-stream** and
//! restarted to demonstrate the transport's fault tolerance end to end.
//! Both processes export live metrics over HTTP.
//!
//! ```text
//!  producer process                          consumer process (respawned
//!  FleetScenario ─► OnlineCs ─► QueueSink ─► SocketSink ══ TCP ══► Server ─► SignatureStore
//!       │               (spill + reconnect)      ▲ kill -9 at half-stream ▲        │
//!       └─► GET /metrics (queue + socket)                  GET /metrics (server + store) ◄┘
//! ```
//!
//! The consumer is this same binary re-executed with `--consumer`; the
//! producer picks a free port, spawns it, and `SIGKILL`s it once half
//! the events are pushed. While the port is dark the client spills to
//! disk and backs off; when the respawned consumer re-seeds its dedupe
//! floors from the recovered store, the client drains the backlog and
//! replays the unacknowledged tail — duplicates are absorbed, nothing
//! is lost, and the final store holds every event exactly once.
//!
//! Observability: each side owns a [`Registry`]/[`MetricsHub`] and a
//! [`MetricsServer`]. The producer's queue and socket publish
//! `cws_queue_*` / `cws_net_*` series; the consumer's server counts
//! live (`cws_events_total`, ...) and the store snapshot
//! (`cws_store_*`) is republished on every commit. Both sides scrape
//! their own endpoint before exiting and assert the key series, so the
//! example fails if the metrics plane goes dark.
//!
//! ```sh
//! cargo run --release --example fleet_pipeline_remote
//! REMOTE_NODES=128 REMOTE_FRAMES=900 cargo run --release --example fleet_pipeline_remote
//! # Fixed ports + a post-serve hold, for an external scraper (CI):
//! REMOTE_METRICS_PORT=9184 REMOTE_PRODUCER_METRICS_PORT=9185 \
//! REMOTE_METRICS_HOLD_MS=20000 cargo run --release --example fleet_pipeline_remote
//! ```

use cwsmooth::core::cs::{CsMethod, CsSignature, CsTrainer};
use cwsmooth::core::fleet::{FleetEvent, FleetSink};
use cwsmooth::core::online::OnlineCs;
use cwsmooth::core::pipeline::Publish;
use cwsmooth::core::transport::{QueueConfig, QueuePolicy, QueueSink};
use cwsmooth::data::WindowSpec;
use cwsmooth::linalg::Matrix;
use cwsmooth::net::{
    scrape, BlockCodec, MetricsServer, NetConfig, Server, ServerConfig, SocketSink, TcpAcceptor,
};
use cwsmooth::obs::{MetricsHub, Registry};
use cwsmooth::sim::fleet::{FleetScenario, FleetSimConfig, FLEET_SENSORS};
use cwsmooth::store::{Encoding, SignatureStore, StoreConfig};
use std::net::TcpListener;
use std::process::Command;
use std::time::{Duration, Instant};

const L: usize = 8;
const WL: usize = 30;
const STRIDE: usize = 10;
const TRAIN: usize = 256;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn spec() -> WindowSpec {
    WindowSpec::new(WL, STRIDE).unwrap()
}

fn codec() -> BlockCodec {
    BlockCodec::new(Encoding::Exact, L, spec()).unwrap()
}

/// Binds a metrics exporter, retrying briefly — a killed predecessor
/// can hold a fixed port for a moment, exactly like the data port.
fn bind_exporter(port: u16, hub: MetricsHub, who: &str) -> MetricsServer {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match MetricsServer::bind(("127.0.0.1", port), hub.clone()) {
            Ok(server) => {
                println!("[{who}] metrics on http://{}/metrics", server.local_addr());
                return server;
            }
            Err(e) if Instant::now() < deadline => {
                eprintln!("[{who}] metrics bind retry: {e}");
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => panic!("[{who}] metrics bind failed: {e}"),
        }
    }
}

/// Asserts every `series` appears in a scrape of `addr` with a value,
/// and prints the matching lines — the example's own liveness check of
/// its metrics plane.
fn assert_series(addr: std::net::SocketAddr, who: &str, series: &[&str]) {
    let body = scrape(addr, "/metrics").expect("scrape own metrics endpoint");
    for name in series {
        let line = body
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("[{who}] series {name} missing from /metrics:\n{body}"));
        let value = line.rsplit(' ').next().unwrap_or("");
        assert!(
            value.parse::<f64>().is_ok(),
            "[{who}] series {name} has no numeric value: {line}"
        );
        println!("[{who}] {line}");
    }
}

fn hold_ms() -> u64 {
    env_or("REMOTE_METRICS_HOLD_MS", 0) as u64
}

/// The consumer role: bind the agreed port, serve frames into the
/// store, exit after the producer's closing bye. A restarted consumer
/// recovers the store from disk and re-seeds its dedupe floors from
/// it, so replayed events are absorbed instead of duplicated.
fn run_consumer(dir: &str, port: u16, metrics_port: u16) -> i32 {
    let store = match SignatureStore::open(dir, spec(), L, StoreConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[consumer] store open failed: {e}");
            return 1;
        }
    };
    let rec = store.recovery();
    println!(
        "[consumer] store up: {} events recovered ({} segments, {} bytes crash tail cut)",
        rec.events, rec.segments, rec.bytes_truncated
    );
    let cfg = ServerConfig {
        stop_on_bye: true,
        ..ServerConfig::default()
    };
    let mut server = match Server::new(codec(), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[consumer] server setup failed: {e}");
            return 1;
        }
    };
    if let Err(e) = server.seed_from_store(&store) {
        eprintln!("[consumer] dedupe seeding failed: {e}");
        return 1;
    }

    // Metrics plane: live server counters on the registry, the store
    // snapshot republished through the hub on every commit (the
    // `Publish` NetSink commits first, so the scrape shows durable
    // state), and an HTTP exporter for both.
    let registry = Registry::new();
    server.attach_metrics(&registry);
    let hub = MetricsHub::new(registry);
    let exporter = bind_exporter(metrics_port, hub.clone(), "consumer");
    let mut sink = Publish::new(store, hub, "store", 256);
    sink.flush(); // recovered state is visible before the first commit

    // A killed predecessor can leave the port in TIME_WAIT briefly;
    // retry the bind instead of failing the restart.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut acceptor = loop {
        match TcpAcceptor::bind(("127.0.0.1", port)) {
            Ok(a) => break a,
            Err(e) if Instant::now() < deadline => {
                eprintln!("[consumer] bind retry: {e}");
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => {
                eprintln!("[consumer] bind failed: {e}");
                return 1;
            }
        }
    };
    println!("[consumer] listening on 127.0.0.1:{port}");
    if let Err(e) = server.serve(&mut acceptor, &mut sink) {
        eprintln!("[consumer] serve failed: {e}");
        return 1;
    }
    sink.flush();
    let mut store = sink.into_sink();
    if let Err(e) = store.flush() {
        eprintln!("[consumer] final flush failed: {e}");
        return 1;
    }
    let s = server.stats();
    println!(
        "[consumer] done: {} connections, {} frames, {} events stored, {} replays deduped",
        s.connections, s.frames, s.events, s.deduped
    );
    assert_series(
        exporter.local_addr(),
        "consumer",
        &["cws_events_total", "cws_acks_total", "cws_store_segments"],
    );
    // Keep the exporter up for an external scraper (CI) before exiting.
    let hold = hold_ms();
    if hold > 0 {
        std::thread::sleep(Duration::from_millis(hold));
    }
    exporter.shutdown();
    0
}

/// Blocks until the consumer accepts on `port` (the probe connection
/// is dropped unsent; the server tolerates it as a clean EOF). Without
/// this the producer outruns the consumer's startup and the mid-stream
/// kill would hit a connection that never carried an event.
fn wait_listening(port: u16) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if std::net::TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("consumer never started listening on port {port}");
}

fn spawn_consumer(dir: &str, port: u16, metrics_port: u16) -> std::process::Child {
    let exe = std::env::current_exe().expect("own executable path");
    Command::new(exe)
        .arg("--consumer")
        .arg(dir)
        .arg(port.to_string())
        .arg(metrics_port.to_string())
        .spawn()
        .expect("spawn consumer process")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 5 && args[1] == "--consumer" {
        let port: u16 = args[3].parse().expect("port argument");
        let metrics_port: u16 = args[4].parse().expect("metrics port argument");
        std::process::exit(run_consumer(&args[2], port, metrics_port));
    }

    let nodes = env_or("REMOTE_NODES", 64);
    let frames = env_or("REMOTE_FRAMES", 600);
    let consumer_metrics_port = env_or("REMOTE_METRICS_PORT", 0) as u16;
    let producer_metrics_port = env_or("REMOTE_PRODUCER_METRICS_PORT", 0) as u16;
    let windows_per_node = if frames >= WL {
        (frames - WL) / STRIDE + 1
    } else {
        0
    };
    let total = nodes * windows_per_node;
    println!(
        "remote fleet pipeline: {nodes} nodes x {FLEET_SENSORS} sensors, {frames} frames \
         -> {total} events over loopback TCP, consumer killed at half-stream"
    );

    let scratch = std::env::temp_dir().join(format!("cwsmooth-remote-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let store_dir = scratch.join("store");
    let spill_dir = scratch.join("spill");
    std::fs::create_dir_all(&store_dir).unwrap();

    // A free port the consumer can re-bind across restarts: bind :0 to
    // let the kernel pick, then release it for the child.
    let port = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let store_dir_s = store_dir.to_string_lossy().into_owned();
    let mut consumer = spawn_consumer(&store_dir_s, port, consumer_metrics_port);

    // ---- Offline: one shared CS model from pooled healthy history.
    let t0 = Instant::now();
    let scenario = FleetScenario::new(FleetSimConfig::new(42, nodes));
    let pool_nodes: Vec<usize> = (0..8.min(nodes)).collect();
    let mut pooled = Matrix::zeros(FLEET_SENSORS, pool_nodes.len() * TRAIN);
    let mut buf = [0.0; FLEET_SENSORS];
    for (i, &node) in pool_nodes.iter().enumerate() {
        for t in 0..TRAIN {
            scenario.reading_into(node, t, &mut buf);
            for (r, &v) in buf.iter().enumerate() {
                pooled.set(r, i * TRAIN + t, v);
            }
        }
    }
    let cs = CsMethod::new(CsTrainer::default().train(&pooled).unwrap(), L).unwrap();
    println!("offline: CS model trained in {:.2?}", t0.elapsed());

    // ---- Online: stream windows node-major through queue + socket.
    // The producer's metrics plane: the queue keeps its `cws_queue_*`
    // series live on the registry; the socket sink's `cws_net_*` stats
    // are republished through the hub every 64 delivered events (on the
    // queue's consumer thread, where the socket lives).
    wait_listening(port);
    let registry = Registry::new();
    let hub = MetricsHub::new(registry.clone());
    let producer_exporter = bind_exporter(producer_metrics_port, hub.clone(), "producer");
    let t1 = Instant::now();
    let socket = SocketSink::tcp(
        ("127.0.0.1", port),
        codec(),
        &spill_dir,
        NetConfig::default(),
    )
    .unwrap();
    let mut sink = QueueSink::with_metrics(
        Publish::new(socket, hub.clone(), "net", 64),
        QueueConfig {
            capacity: 1024,
            policy: QueuePolicy::Block,
        },
        &registry,
        "wire",
    );
    let mut streams: Vec<OnlineCs> = (0..nodes)
        .map(|_| OnlineCs::new(cs.clone(), spec()))
        .collect();
    let mut sig = CsSignature::default();
    let mut event = FleetEvent::default();
    let mut pushed = 0usize;
    let mut killed = false;
    for t in 0..frames {
        for (node, stream) in streams.iter_mut().enumerate() {
            scenario.reading_into(node, t, &mut buf);
            if stream.push_into(&buf, &mut sig).unwrap() {
                event.node = node;
                event.window_index = stream.emitted() - 1;
                std::mem::swap(&mut event.signature, &mut sig);
                sink.on_event(&event).unwrap();
                std::mem::swap(&mut event.signature, &mut sig);
                pushed += 1;
                if !killed && pushed >= total / 2 {
                    // SIGKILL mid-stream: unacked frames die with the
                    // connection, new events spill to disk.
                    consumer.kill().expect("kill consumer");
                    consumer.wait().expect("reap consumer");
                    println!(
                        "producer: consumer killed after {pushed} events; \
                         spilling while the port is dark"
                    );
                    consumer = spawn_consumer(&store_dir_s, port, consumer_metrics_port);
                    killed = true;
                }
            }
        }
    }
    let (published, queue_result) = sink.join();
    queue_result.expect("queue consumer");
    let (stats, result) = published.into_sink().finish(Duration::from_secs(60));
    result.expect("drain after reconnect");
    // `finish` consumed the sink, so publish its final counters (the
    // drain and its reconnect happen inside `finish`) from the stats.
    hub.publish("net", &stats);
    println!(
        "producer: {} accepted, {} sent (+{} retransmitted), {} spilled / {} drained, \
         {} dropped, {} connects ({} failures) in {:.2?}",
        stats.accepted,
        stats.sent,
        stats.retransmitted,
        stats.spilled,
        stats.drained,
        stats.dropped,
        stats.connects,
        stats.connect_failures,
        t1.elapsed()
    );

    // The producer's own metrics plane must show the queue series and
    // at least one reconnect (the mid-stream kill forces it).
    assert_series(
        producer_exporter.local_addr(),
        "producer",
        &[
            "cws_queue_depth",
            "cws_queue_pushed_total",
            "cws_net_reconnects_total",
            "cws_net_spilled_total",
        ],
    );
    let producer_scrape = scrape(producer_exporter.local_addr(), "/metrics").unwrap();
    let reconnects: f64 = producer_scrape
        .lines()
        .find(|l| l.starts_with("cws_net_reconnects_total"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("cws_net_reconnects_total value");
    assert!(
        reconnects >= 1.0,
        "the kill must force at least one reconnect, saw {reconnects}"
    );

    let status = consumer.wait().expect("consumer exit");
    assert!(status.success(), "consumer exited with {status}");

    // ---- Verify: the store must hold every event exactly once.
    let store = SignatureStore::open(&store_dir, spec(), L, StoreConfig::default()).unwrap();
    assert_eq!(stats.accepted, total as u64);
    assert_eq!(stats.dropped, 0, "unbounded spill must drop nothing");
    assert_eq!(
        store.events(),
        total as u64,
        "every event must be stored exactly once despite the kill"
    );
    println!(
        "verified: store holds {} events across {} segments — zero loss, zero duplicates",
        store.events(),
        store.segments().len()
    );
    producer_exporter.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}
