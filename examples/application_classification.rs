//! Application classification (the paper's Application use case,
//! Sec. IV-B): recognize which application is running on a 16-node
//! cluster from CS signatures of its monitoring data.
//!
//! ```sh
//! cargo run --release --example application_classification
//! ```

use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::dataset::{build_dataset, DatasetOptions};
use cwsmooth::data::WindowSpec;
use cwsmooth::ml::cv::{gather_rows, stratified_kfold};
use cwsmooth::ml::forest::{ForestConfig, RandomForestClassifier};
use cwsmooth::ml::metrics::ConfusionMatrix;
use cwsmooth::sim::apps::AppKind;
use cwsmooth::sim::segments::{application_segment, SimConfig};

fn main() {
    // 16 Skylake nodes x 52 sensors, six MPI applications plus idle.
    let segment = application_segment(SimConfig::new(7, 2500));
    println!(
        "segment: {} sensors over {} nodes, {} samples",
        segment.sensors(),
        16,
        segment.samples()
    );

    // CS-20 signatures over 30-sample windows, stepping by 5 (Table I).
    let model = CsTrainer::default().train(&segment.matrix).unwrap();
    let cs = CsMethod::new(model, 20).unwrap();
    let ds = build_dataset(
        &segment,
        &cs,
        DatasetOptions {
            spec: WindowSpec::new(30, 5).unwrap(),
            horizon: 0,
        },
    )
    .unwrap();
    let labels = ds.classes.as_ref().unwrap();
    println!(
        "feature sets: {} windows x {} features (vs {} raw values per window)",
        ds.len(),
        ds.features.cols(),
        segment.sensors() * 30
    );

    // One train/test split from the stratified 5-fold protocol.
    let folds = stratified_kfold(labels, 5, 1).unwrap();
    let fold = &folds[0];
    let xt = gather_rows(&ds.features, &fold.train);
    let yt: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
    let xs = gather_rows(&ds.features, &fold.test);
    let ys: Vec<usize> = fold.test.iter().map(|&i| labels[i]).collect();

    let mut rf = RandomForestClassifier::with_config(ForestConfig::classification(1));
    rf.fit(&xt, &yt).unwrap();
    let pred = rf.predict(&xs).unwrap();

    let cm = ConfusionMatrix::from_pairs(&ys, &pred).unwrap();
    println!(
        "\nweighted F1: {:.3}   accuracy: {:.3}",
        cm.f1_weighted(),
        cm.accuracy()
    );
    println!("\nper-class results:");
    let names = [
        AppKind::Idle,
        AppKind::Amg,
        AppKind::Kripke,
        AppKind::Linpack,
        AppKind::Quicksilver,
        AppKind::Lammps,
        AppKind::Nekbone,
    ];
    println!(
        "{:<14} {:>9} {:>10} {:>8} {:>8}",
        "application", "support", "precision", "recall", "F1"
    );
    for app in names {
        let c = app.class_id();
        if c >= cm.n_classes() {
            continue;
        }
        println!(
            "{:<14} {:>9} {:>10.3} {:>8.3} {:>8.3}",
            app.name(),
            cm.support(c),
            cm.precision(c),
            cm.recall(c),
            cm.f1(c)
        );
    }
}
