//! Fault classification (the paper's Fault use case, Sec. IV-B): detect
//! which of eight injected faults — or healthy operation — a node is
//! experiencing, from CS signatures of its 128 sensors.
//!
//! Also shows the size/accuracy trade-off the paper highlights: fault
//! classification depends on exact counter values, so it needs more
//! blocks than the other use cases.
//!
//! ```sh
//! cargo run --release --example fault_detection
//! ```

use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::dataset::{build_dataset, DatasetOptions};
use cwsmooth::data::WindowSpec;
use cwsmooth::ml::cv::{gather_rows, stratified_kfold};
use cwsmooth::ml::forest::{ForestConfig, RandomForestClassifier};
use cwsmooth::ml::metrics::f1_score;
use cwsmooth::sim::faults::FaultKind;
use cwsmooth::sim::segments::{fault_segment, SimConfig};

fn main() {
    // ETH-testbed-style node: 128 sensors, fault injection alternating
    // with healthy runs.
    let segment = fault_segment(SimConfig::new(5, 4000));
    println!(
        "segment: {} sensors, {} samples, {} classes (healthy + {:?}...)",
        segment.sensors(),
        segment.samples(),
        segment.n_classes(),
        FaultKind::ALL[0].name(),
    );

    let model = CsTrainer::default().train(&segment.matrix).unwrap();
    let spec = WindowSpec::new(60, 10).unwrap(); // Table I: wl=1m, ws=10s

    println!("\nblock-count sweep (one fold, 50-tree random forest):");
    println!("{:>8} {:>10} {:>8}", "blocks", "features", "F1");
    for l in [5usize, 10, 20, 40, 128] {
        let cs = CsMethod::new(model.clone(), l).unwrap();
        let ds = build_dataset(&segment, &cs, DatasetOptions { spec, horizon: 0 }).unwrap();
        let labels = ds.classes.as_ref().unwrap();
        let folds = stratified_kfold(labels, 5, 1).unwrap();
        let fold = &folds[0];
        let xt = gather_rows(&ds.features, &fold.train);
        let yt: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
        let xs = gather_rows(&ds.features, &fold.test);
        let ys: Vec<usize> = fold.test.iter().map(|&i| labels[i]).collect();
        let mut rf = RandomForestClassifier::with_config(ForestConfig::classification(9));
        rf.fit(&xt, &yt).unwrap();
        let f1 = f1_score(&ys, &rf.predict(&xs).unwrap()).unwrap();
        println!("{:>8} {:>10} {:>8.3}", l, ds.features.cols(), f1);
    }
    println!("\n(the paper's observation: Fault needs high block counts, because");
    println!(" fault classification depends on the exact values of a few counters)");
}
