//! The streaming ODA pipeline with every sink moved **off the ingest
//! thread**: the same fleet flows frame → signature →
//! `Tee(Queue(store), Queue(scorer), Queue(drift))`, each branch a
//! bounded FIFO drained by its own consumer thread that *owns* its
//! sink.
//!
//! ```text
//!                                       ┌─► Queue ─► thread ─► SignatureStore
//!  FleetScenario ─► FleetEngine ─► Tee ─┼─► Queue ─► thread ─► Scorer(StreamingDetector)
//!   (+ injected faults)                 └─► Queue ─► thread ─► DriftMonitor
//! ```
//!
//! The ingest thread only copies each event into a recycled envelope
//! and pushes it onto three rings — persistence, classification and
//! drift checks happen concurrently on their own threads. Per-branch
//! FIFO order means the consumer sinks see exactly the event sequence
//! the synchronous `fleet_pipeline` example delivers, so the scorecard
//! below is held to the same acceptance bar (≥ 0.9 window accuracy).
//! After the run the sinks are recovered with `join()` and the queue
//! telemetry (pushed / high watermark / drops) is reported per branch.
//!
//! ```sh
//! cargo run --release --example fleet_pipeline_threaded
//! PIPE_NODES=256 PIPE_FRAMES=900 cargo run --release --example fleet_pipeline_threaded
//! ```

use cwsmooth::analysis::drift::{DriftConfig, DriftMonitor};
use cwsmooth::core::cs::{CsMethod, CsSignature, CsTrainer};
use cwsmooth::core::error::Result as CoreResult;
use cwsmooth::core::fleet::{FleetEvent, FleetSink};
use cwsmooth::core::online::OnlineCs;
use cwsmooth::core::pipeline::Tee;
use cwsmooth::core::transport::{QueueConfig, QueuePolicy, QueueSink, QueueStats};
use cwsmooth::core::FleetEngine;
use cwsmooth::data::WindowSpec;
use cwsmooth::linalg::Matrix;
use cwsmooth::ml::forest::RandomForestClassifier;
use cwsmooth::ml::streaming::{DetectorConfig, StreamingDetector};
use cwsmooth::sim::faults::{FaultKind, FaultSetting};
use cwsmooth::sim::fleet::{
    FaultSegmentSpec, FaultedFleet, FleetFaultPlan, FleetScenario, FleetSimConfig, FLEET_SENSORS,
};
use cwsmooth::store::{Encoding, SignatureStore, StoreConfig};
use std::time::Instant;

/// Fault kinds the detector is trained on, in dense-label order
/// (label 0 = healthy, label i+1 = KINDS[i]).
const KINDS: [FaultKind; 5] = [
    FaultKind::CpuOccupy,
    FaultKind::MemLeak,
    FaultKind::MemEater,
    FaultKind::NetDegrade,
    FaultKind::FreqCap,
];

const L: usize = 8;
const TRAIN: usize = 256;
const WL: usize = 30;
const STRIDE: usize = 10;
const FAULT_LEN: usize = 300;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Dense training/eval label of a fault class id (0 stays healthy).
fn dense_label(class_id: usize) -> Option<usize> {
    if class_id == 0 {
        return Some(0);
    }
    KINDS
        .iter()
        .position(|k| k.class_id() == class_id)
        .map(|i| i + 1)
}

/// Streams one node's frames `[from, to)` through a fresh `OnlineCs`
/// and hands every completed window to `take(window_index, features)`.
fn windows_of(
    cs: &CsMethod,
    spec: WindowSpec,
    read: impl Fn(usize, &mut [f64]),
    from: usize,
    to: usize,
    mut take: impl FnMut(usize, &[f64]),
) {
    let mut stream = OnlineCs::new(cs.clone(), spec);
    let mut column = vec![0.0; FLEET_SENSORS];
    let mut sig = CsSignature::default();
    let mut features: Vec<f64> = Vec::new();
    for t in from..to {
        read(t, &mut column);
        if stream.push_into(&column, &mut sig).unwrap() {
            sig.features_into(&mut features);
            take(stream.emitted() - 1, &features);
        }
    }
}

/// The detector plus its ground-truth scoreboard, packaged as one
/// *owned* [`FleetSink`] — unlike the synchronous example's borrowing
/// scorer, this one owns the [`StreamingDetector`] and a clone of the
/// fault plan so the whole thing is `Send` and can live on a consumer
/// thread behind a queue.
struct Scorer {
    detector: StreamingDetector,
    fleet: FaultedFleet,
    /// Absolute frame of stream sample 0.
    t0: usize,
    scored: u64,
    correct: u64,
    fault_scored: u64,
    fault_correct: u64,
    /// Per dense label: (windows scored, windows correct).
    per_class: Vec<(u64, u64)>,
    /// Per fault segment (plan order): end frame of the first correctly
    /// classified window, for alarm-latency accounting.
    first_hit: Vec<Option<usize>>,
}

impl FleetSink for Scorer {
    fn on_event(&mut self, event: &FleetEvent) -> CoreResult<()> {
        self.detector.on_event(event)?;
        // Window w covers absolute frames [a, b).
        let a = self.t0 + event.window_index * STRIDE;
        let b = a + WL;
        let class_a = self.fleet.class_at(event.node, a);
        let class_b = self.fleet.class_at(event.node, b - 1);
        if class_a != class_b {
            return Ok(()); // transition window: no single ground truth
        }
        let Some(truth) = dense_label(class_a) else {
            return Ok(());
        };
        let verdict = self.detector.verdict(event.node).unwrap().class;
        self.scored += 1;
        self.per_class[truth].0 += 1;
        if verdict == truth {
            self.correct += 1;
            self.per_class[truth].1 += 1;
        }
        if truth != 0 {
            self.fault_scored += 1;
            if verdict == truth {
                self.fault_correct += 1;
                let seg_idx = self
                    .fleet
                    .plan()
                    .segments()
                    .iter()
                    .position(|s| s.node == event.node && s.covers(a))
                    .expect("fault window belongs to a segment");
                let hit = &mut self.first_hit[seg_idx];
                if hit.is_none() {
                    *hit = Some(b);
                }
            }
        }
        Ok(())
    }
}

fn print_queue(tag: &str, stats: &QueueStats) {
    println!(
        "  {tag:>8} queue: {} pushed, high watermark {}/{}, {} dropped",
        stats.pushed, stats.high_watermark, stats.capacity, stats.dropped
    );
}

fn main() {
    let nodes = env_or("PIPE_NODES", 1024);
    let frames = env_or("PIPE_FRAMES", 1200);
    assert!(frames > FAULT_LEN + WL, "need room for fault segments");
    let spec = WindowSpec::new(WL, STRIDE).unwrap();
    let scenario = FleetScenario::new(FleetSimConfig::new(42, nodes));
    println!(
        "threaded fleet pipeline: {nodes} nodes x {FLEET_SENSORS} sensors, {frames} live frames, \
         CS-{L} over {WL}/{STRIDE} windows, 3 consumer threads"
    );

    // ---- Offline 1: one CS model on pooled healthy history (shared so
    // signatures stay comparable fleet-wide).
    let t0 = Instant::now();
    let pool_nodes: Vec<usize> = (0..8.min(nodes))
        .map(|i| (i * nodes.div_ceil(8)) % nodes)
        .collect();
    let mut pooled = Matrix::zeros(FLEET_SENSORS, pool_nodes.len() * TRAIN);
    let mut buf = [0.0; FLEET_SENSORS];
    for (i, &node) in pool_nodes.iter().enumerate() {
        for t in 0..TRAIN {
            scenario.reading_into(node, t, &mut buf);
            for (r, &v) in buf.iter().enumerate() {
                pooled.set(r, i * TRAIN + t, v);
            }
        }
    }
    let cs = CsMethod::new(CsTrainer::default().train(&pooled).unwrap(), L).unwrap();

    // ---- Offline 2: labelled signature streams for the detector (same
    // recipe as the synchronous example).
    let lab_nodes: Vec<usize> = (0..12)
        .map(|i| (i * nodes.div_ceil(12) + 3) % nodes)
        .collect();
    let healthy_nodes: Vec<usize> = (0..48.min(nodes))
        .map(|i| (i * nodes.div_ceil(48) + 1) % nodes)
        .collect();
    let label_frames = TRAIN + 400;
    let mut rows: Vec<(Vec<f64>, usize)> = Vec::new();
    for &node in &healthy_nodes {
        for range in [TRAIN..label_frames, label_frames..label_frames + 400] {
            windows_of(
                &cs,
                spec,
                |t, out| scenario.reading_into(node, t, out),
                range.start,
                range.end,
                |_, feats| rows.push((feats.to_vec(), 0)),
            );
        }
    }
    for &node in &lab_nodes {
        for (ki, &kind) in KINDS.iter().enumerate() {
            for setting in [FaultSetting::Low, FaultSetting::High] {
                let plan = FleetFaultPlan::new().with(FaultSegmentSpec {
                    node,
                    start: TRAIN,
                    len: label_frames - TRAIN,
                    kind,
                    setting,
                });
                let faulted = FaultedFleet::new(scenario, plan);
                windows_of(
                    &cs,
                    spec,
                    |t, out| faulted.reading_into(node, t, out),
                    TRAIN,
                    label_frames,
                    |_, feats| rows.push((feats.to_vec(), ki + 1)),
                );
            }
        }
    }
    let mut forest_cfg = cwsmooth::ml::forest::ForestConfig::classification(7);
    forest_cfg.tree.max_depth = Some(14);
    let mut forest = RandomForestClassifier::with_config(forest_cfg);
    forest
        .fit_labelled_rows(rows.iter().map(|(f, c)| (f.as_slice(), *c)))
        .unwrap();
    println!(
        "offline: CS model on {}-node pooled history + forest on {} labelled windows \
         ({} classes) in {:.0} ms",
        pool_nodes.len(),
        rows.len(),
        forest.n_classes(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // ---- Eval fault plan: one segment on every 8th node, kinds cycling,
    // starts staggered past the drift calibration period.
    let first_start = 520;
    assert!(
        frames > first_start + FAULT_LEN + WL,
        "need room for faults"
    );
    let mut plan = FleetFaultPlan::new();
    let mut eval_segments = 0usize;
    for (i, node) in (0..nodes).skip(4).step_by(8).enumerate() {
        let start = TRAIN + first_start + (i % 5) * ((frames - FAULT_LEN - first_start - WL) / 5);
        plan = plan.with(FaultSegmentSpec {
            node,
            start,
            len: FAULT_LEN,
            kind: KINDS[i % KINDS.len()],
            setting: FaultSetting::High,
        });
        eval_segments += 1;
    }
    let fleet = FaultedFleet::new(scenario, plan);

    // ---- Online: the engine drives a Tee of three queued branches.
    // Every sink is *moved onto its consumer thread*; the ingest loop
    // below never touches a store, forest or histogram again until the
    // joins hand them back.
    let dir = std::env::temp_dir().join(format!(
        "cwsmooth-fleet-pipeline-thr-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let store = SignatureStore::open(
        &dir,
        spec,
        L,
        StoreConfig::default().with_encoding(Encoding::Quant8),
    )
    .unwrap();
    let mut detector = StreamingDetector::new(
        forest,
        DetectorConfig {
            healthy_class: 0,
            min_run: 2,
        },
    )
    .unwrap();
    detector.reserve_nodes(nodes);
    let drift = DriftMonitor::new(DriftConfig {
        bins: 6,
        window_events: 12,
        reference_windows: 4,
        threshold: 0.25,
        lo: -0.2,
        hi: 1.0,
    });
    let mut engine = FleetEngine::homogeneous(cs, nodes, spec).unwrap();
    let mut frame = engine.frame();

    let scorer = Scorer {
        detector,
        fleet: fleet.clone(),
        t0: TRAIN,
        scored: 0,
        correct: 0,
        fault_scored: 0,
        fault_correct: 0,
        per_class: vec![(0, 0); KINDS.len() + 1],
        first_hit: vec![None; eval_segments],
    };
    // One ring per branch. Block on full: the ODA verdicts must see
    // every event, so backpressure (not shedding) is the right policy
    // when the classifier momentarily lags a signature burst.
    let cfg = QueueConfig {
        capacity: 1024,
        policy: QueuePolicy::Block,
    };
    let mut tee = Tee((
        QueueSink::with_config(store, cfg),
        QueueSink::with_config(scorer, cfg),
        QueueSink::with_config(drift, cfg),
    ));
    let t1 = Instant::now();
    for f in 0..frames {
        let t = TRAIN + f;
        frame.clear();
        for node in 0..nodes {
            fleet.reading_into(node, t, frame.slot_mut(node).unwrap());
        }
        engine.ingest_frame_sink(&frame, &mut tee).unwrap();
    }
    let ingest_elapsed = t1.elapsed().as_secs_f64();
    let stats = engine.stats();

    // Recover the sinks: join waits for each branch to drain, stops its
    // consumer thread and hands the sink back.
    let Tee((qs, qd, qm)) = tee;
    let store_q = qs.stats();
    let scorer_q = qd.stats();
    let drift_q = qm.stats();
    let (mut store, r) = qs.join();
    r.unwrap();
    let (scorer, r) = qd.join();
    r.unwrap();
    let (drift, r) = qm.join();
    r.unwrap();
    let total_elapsed = t1.elapsed().as_secs_f64();

    println!(
        "\nonline: {frames} frames -> {} events through Tee(Queue(store), Queue(scorer), \
         Queue(drift)); ingest thread {:.0} ms ({:.0} k events/s, {:.2} M columns/s), \
         drained+joined at {:.0} ms",
        stats.events,
        ingest_elapsed * 1e3,
        stats.events as f64 / ingest_elapsed / 1e3,
        (frames * nodes) as f64 / ingest_elapsed / 1e6,
        total_elapsed * 1e3
    );
    print_queue("store", &store_q);
    print_queue("scorer", &scorer_q);
    print_queue("drift", &drift_q);
    assert_eq!(store_q.pushed, stats.events, "store branch lost events");
    assert_eq!(scorer_q.pushed, stats.events, "scorer branch lost events");
    assert_eq!(drift_q.pushed, stats.events, "drift branch lost events");

    store.flush().unwrap();
    println!(
        "store: {} events in {} segments, {:.1} KiB on disk (quantized)",
        store.events(),
        store.segments().len(),
        store.bytes_on_disk() as f64 / 1024.0
    );

    // ---- Detection scorecard (identical accounting to the synchronous
    // example — the queues preserve per-node order, so the verdict
    // stream is the same).
    let accuracy = scorer.correct as f64 / scorer.scored.max(1) as f64;
    let fault_recall = scorer.fault_correct as f64 / scorer.fault_scored.max(1) as f64;
    let detected = scorer.first_hit.iter().filter(|h| h.is_some()).count();
    let latencies: Vec<f64> = scorer
        .first_hit
        .iter()
        .enumerate()
        .filter_map(|(i, hit)| hit.map(|end| (end - fleet.plan().segments()[i].start) as f64))
        .collect();
    let mean_latency = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    println!(
        "\ndetector: {:.1}% window accuracy ({} windows scored), \
         {:.1}% fault-window accuracy",
        100.0 * accuracy,
        scorer.scored,
        100.0 * fault_recall
    );
    for (label, &(scored, correct)) in scorer.per_class.iter().enumerate() {
        let name = if label == 0 {
            "healthy"
        } else {
            KINDS[label - 1].name()
        };
        println!(
            "  {name:>14}: {:>6.1}% of {scored} windows",
            100.0 * correct as f64 / scored.max(1) as f64
        );
    }
    println!(
        "alarms: {detected}/{eval_segments} injected faults detected, \
         mean first-detection latency {:.0} frames (window covers {WL})",
        mean_latency
    );
    let alarmed: Vec<usize> = scorer.detector.alarmed_nodes().collect();
    let faulty_now: Vec<usize> = fleet
        .plan()
        .segments()
        .iter()
        .filter(|s| s.covers(TRAIN + frames - 1))
        .map(|s| s.node)
        .collect();
    println!(
        "detector alarms live on {} nodes (ground truth: {} nodes faulted at end of run)",
        alarmed.len(),
        faulty_now.len()
    );
    let faulted_nodes: Vec<usize> = fleet.plan().segments().iter().map(|s| s.node).collect();
    let mean_peak = |sel: &dyn Fn(usize) -> bool| {
        let peaks: Vec<f64> = (0..nodes)
            .filter(|&n| sel(n))
            .filter_map(|n| drift.peak_jsd(n))
            .collect();
        peaks.iter().sum::<f64>() / peaks.len().max(1) as f64
    };
    let peak_faulted = mean_peak(&|n| faulted_nodes.contains(&n));
    let peak_clean = mean_peak(&|n| !faulted_nodes.contains(&n));
    println!(
        "drift monitor: {} comparisons, max JSD {:.3}; mean peak JSD {:.3} on faulted \
         nodes vs {:.3} on clean ones ({} nodes over the {:.2} alarm threshold)",
        drift.comparisons(),
        drift.max_jsd(),
        peak_faulted,
        peak_clean,
        drift.alarmed_nodes().count(),
        drift.config().threshold
    );
    assert!(
        peak_faulted > peak_clean,
        "injected faults should drift more than healthy workload wander"
    );

    assert!(
        accuracy >= 0.9,
        "detection accuracy {accuracy:.3} below the 0.9 acceptance bar"
    );
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "\nPASS: threaded ODA pipeline (3 queued consumer threads) detected injected faults \
         at >= 0.9 accuracy"
    );
}
