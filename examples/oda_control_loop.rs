//! A complete in-band ODA control loop (the paper's Fig. 1, and its
//! "deploying a CS-based ODA control loop" future-work item):
//!
//! ```text
//! monitoring -> CS signature -> power model -> frequency knob -> node
//! ```
//!
//! A node streams sensor readings into an [`OnlineCs`] processor; each
//! emitted signature feeds a random-forest power predictor; when the
//! predicted power exceeds a budget, the loop lowers the CPU frequency
//! knob (and raises it again when there is headroom) — a miniature
//! power-capping governor.
//!
//! ```sh
//! cargo run --release --example oda_control_loop
//! ```

use cwsmooth::core::cs::CsSignature;
use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::dataset::{build_dataset, DatasetOptions};
use cwsmooth::core::online::OnlineCs;
use cwsmooth::data::WindowSpec;
use cwsmooth::ml::forest::{ForestConfig, RandomForestRegressor};
use cwsmooth::sim::apps::{latent_at, AppKind, InputConfig};
use cwsmooth::sim::arch::ArchKind;
use cwsmooth::sim::channels::Channel;
use cwsmooth::sim::rng::stream;
use cwsmooth::sim::segments::{power_segment, SimConfig};

const POWER_BUDGET_W: f64 = 160.0;
const KNOB_STEP: f64 = 0.08;

fn main() {
    // ---- Offline: train CS model + power predictor on historical data.
    let history = power_segment(SimConfig::new(42, 4000));
    let cs_model = CsTrainer::default().train(&history.matrix).unwrap();
    let spec = WindowSpec::new(10, 5).unwrap();
    let cs = CsMethod::new(cs_model, 10).unwrap();
    let ds = build_dataset(&history, &cs, DatasetOptions { spec, horizon: 3 }).unwrap();
    let mut predictor = RandomForestRegressor::with_config(ForestConfig::regression(1));
    predictor
        .fit(&ds.features, ds.targets.as_ref().unwrap())
        .unwrap();
    println!(
        "offline: trained CS-10 model + power predictor on {} windows",
        ds.len()
    );

    // ---- Online: run the node live, with the governor in the loop.
    let mut node = ArchKind::CoolmucPowerNode.node_model();
    let names = node.sensor_names();
    let power_row = names.iter().position(|n| n == "power_pkg_w").unwrap();
    let mut online = OnlineCs::new(cs, spec);
    let mut rng = stream(7, 99);
    let mut knob = 1.0f64; // frequency multiplier the governor controls
    let mut readings = vec![0.0; node.n_sensors()];
    // Inference buffers, reused every window: the per-tick loop performs
    // no per-signature allocation (no 1-row feature matrix).
    let mut sig = CsSignature::default();
    let mut features: Vec<f64> = Vec::new();
    let mut capped_steps = 0usize;
    let mut over_budget = 0usize;
    let total = 1500usize;
    let run_len = 300usize;

    println!("\nlive loop: {total} ticks, budget {POWER_BUDGET_W} W");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "tick", "power[W]", "predicted", "knob"
    );
    for t in 0..total {
        // The workload alternates between heavy and light applications.
        let app = if (t / run_len).is_multiple_of(2) {
            AppKind::Linpack
        } else {
            AppKind::Quicksilver
        };
        let mut latent = latent_at(app, InputConfig(0), t % run_len, run_len, 0.0);
        // The knob caps the clock; the node's physics respond to it.
        latent.scale(Channel::Freq, knob);
        latent.clamp();
        node.sample_into(&latent, &mut rng, &mut readings);
        let actual_power = readings[power_row];
        if actual_power > POWER_BUDGET_W {
            over_budget += 1;
        }

        let sig_done = online.push_into(&readings, &mut sig).unwrap();
        if sig_done {
            sig.features_into(&mut features);
            let predicted = predictor.predict_row(&features).unwrap();
            // Governor: steer the knob against the prediction.
            if predicted > POWER_BUDGET_W && knob > 0.5 {
                knob = (knob - KNOB_STEP).max(0.5);
                capped_steps += 1;
            } else if predicted < POWER_BUDGET_W * 0.85 && knob < 1.0 {
                knob = (knob + KNOB_STEP).min(1.0);
            }
            if t % 150 == 0 || (predicted - POWER_BUDGET_W).abs() < 5.0 {
                println!("{t:>6} {actual_power:>12.1} {predicted:>12.1} {knob:>8.2}");
            }
        }
    }
    println!(
        "\ngovernor lowered the clock {capped_steps} times; \
         {over_budget}/{total} ticks exceeded the budget ({:.1}%)",
        100.0 * over_budget as f64 / total as f64
    );
    println!("(re-run with KNOB_STEP = 0.0 in the source to see the uncapped baseline)");
}
