//! Cross-architecture portability (the paper's Sec. IV-F): train a single
//! classifier on CS signatures from three machines with *different* sensor
//! sets and recognize applications on all of them — something the baseline
//! methods structurally cannot do.
//!
//! ```sh
//! cargo run --release --example cross_architecture
//! ```

use cwsmooth::core::baselines::TuncerMethod;
use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::dataset::{build_dataset, merge_datasets, DatasetOptions};
use cwsmooth::data::WindowSpec;
use cwsmooth::ml::cv::{gather_rows, stratified_kfold};
use cwsmooth::ml::forest::{ForestConfig, RandomForestClassifier};
use cwsmooth::ml::metrics::f1_score;
use cwsmooth::sim::segments::{cross_arch_segments, SimConfig};

fn main() {
    let segs = cross_arch_segments(SimConfig::new(21, 2000));
    let spec = WindowSpec::new(30, 2).unwrap();
    let opts = DatasetOptions { spec, horizon: 0 };

    // Per-architecture CS-20 datasets: 40 features each, regardless of
    // whether the node exposes 52, 46 or 39 sensors.
    let mut parts = Vec::new();
    for (arch, seg) in &segs {
        let model = CsTrainer::default().train(&seg.matrix).unwrap();
        let cs = CsMethod::new(model, 20).unwrap();
        let ds = build_dataset(seg, &cs, opts).unwrap();
        println!(
            "{:<38} {:>3} sensors -> {:>4} windows x {} features",
            arch.name(),
            seg.sensors(),
            ds.len(),
            ds.features.cols()
        );
        parts.push(ds);
    }

    // The baselines produce incompatible widths (11 * sensors):
    let tuncer: Vec<_> = segs
        .iter()
        .map(|(_, seg)| build_dataset(seg, &TuncerMethod, opts).unwrap())
        .collect();
    match merge_datasets(&tuncer) {
        Err(e) => println!("\nTuncer cannot merge: {e}"),
        Ok(_) => unreachable!("baseline widths differ"),
    }

    // CS datasets merge seamlessly; train one model for all architectures.
    let merged = merge_datasets(&parts).unwrap();
    let labels = merged.classes.as_ref().unwrap();
    let folds = stratified_kfold(labels, 5, 2).unwrap();
    let mut scores = Vec::new();
    for (i, fold) in folds.iter().enumerate() {
        let xt = gather_rows(&merged.features, &fold.train);
        let yt: Vec<usize> = fold.train.iter().map(|&s| labels[s]).collect();
        let xs = gather_rows(&merged.features, &fold.test);
        let ys: Vec<usize> = fold.test.iter().map(|&s| labels[s]).collect();
        let mut rf = RandomForestClassifier::with_config(ForestConfig::classification(i as u64));
        rf.fit(&xt, &yt).unwrap();
        scores.push(f1_score(&ys, &rf.predict(&xs).unwrap()).unwrap());
    }
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    println!("\narchitecture-blind application classification, 5-fold weighted F1: {mean:.3}");
    println!("(paper reports 0.995 on the real Cross-Architecture segment)");
}
