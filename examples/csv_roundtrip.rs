//! Working with HPC-ODA's on-disk format: per-sensor CSV files of
//! time-stamp/value pairs, aligned onto a common grid.
//!
//! ```sh
//! cargo run --release --example csv_roundtrip
//! ```
//!
//! Exports a simulated segment to per-sensor CSVs (the exact layout
//! HPC-ODA ships), reads them back with misaligned time grids, interpolates
//! onto a common grid, and verifies the CS pipeline runs end-to-end on the
//! re-imported data.

use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::data::csv::{read_series_file, write_series_file};
use cwsmooth::data::series::align_to_matrix;
use cwsmooth::data::TimeSeries;
use cwsmooth::sim::segments::{power_segment, SimConfig};

fn main() {
    let segment = power_segment(SimConfig::new(3, 800));
    let dir = std::env::temp_dir().join("cwsmooth-csv-example");
    std::fs::create_dir_all(&dir).expect("mkdir");

    // Export: one CSV per sensor, `timestamp,value` rows (HPC-ODA layout).
    for (i, name) in segment.sensor_names.iter().enumerate() {
        let series =
            TimeSeries::new(segment.timestamps.clone(), segment.matrix.row(i).to_vec()).unwrap();
        write_series_file(dir.join(format!("{name}.csv")), &series).expect("write csv");
    }
    println!(
        "exported {} sensor CSVs to {}",
        segment.sensors(),
        dir.display()
    );

    // Import: read every CSV back and align onto a 100 ms grid. Real
    // monitoring data is rarely perfectly aligned; align_to_matrix
    // linearly interpolates onto the intersection of all series' ranges.
    let mut series = Vec::new();
    for name in &segment.sensor_names {
        series.push(read_series_file(dir.join(format!("{name}.csv"))).expect("read csv"));
    }
    let (matrix, grid) = align_to_matrix(&series, 100).expect("align");
    println!(
        "re-imported matrix: {} sensors x {} samples (grid {}..{} ms)",
        matrix.rows(),
        matrix.cols(),
        grid.first().unwrap(),
        grid.last().unwrap()
    );

    // The re-imported data drives the CS pipeline exactly like simulated
    // in-memory data.
    let model = CsTrainer::default().train(&matrix).expect("training");
    let cs = CsMethod::new(model, 10).expect("CS-10");
    let window = matrix.col_window(0, 10).expect("window");
    let sig = cs.signature(&window, None).expect("signature");
    println!(
        "CS-10 signature of the first window: re[0..4] = {:?}",
        &sig.re[..4]
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("cleaned up {}", dir.display());
}
