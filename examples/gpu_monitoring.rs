//! Accelerator monitoring (the paper's Sec. V future work): apply CS to
//! GPU sensor data and classify the applications driving the devices.
//!
//! ```sh
//! cargo run --release --example gpu_monitoring
//! ```
//!
//! A 4-GPU node exposes 76 sensors (host + DCGM-style device metrics).
//! CS handles them exactly like CPU data: device sensors of the four GPUs
//! form a strongly correlated group, so the ordering clusters them and a
//! handful of blocks suffice.

use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::dataset::{build_dataset, DatasetOptions};
use cwsmooth::data::WindowSpec;
use cwsmooth::ml::cv::{gather_rows, stratified_kfold};
use cwsmooth::ml::forest::{ForestConfig, RandomForestClassifier};
use cwsmooth::ml::metrics::f1_score;
use cwsmooth::sim::segments::{gpu_segment, SimConfig};

fn main() {
    let segment = gpu_segment(SimConfig::new(17, 3000));
    println!(
        "GPU node: {} sensors ({} host + 4 GPUs x 11), {} samples",
        segment.sensors(),
        segment.sensors() - 44,
        segment.samples()
    );

    let model = CsTrainer::default().train(&segment.matrix).unwrap();

    // Where did the GPU sensors land in the CS ordering? Correlated
    // device metrics should cluster.
    let gpu_positions: Vec<usize> = model
        .perm
        .iter()
        .enumerate()
        .filter(|(_, &raw)| segment.sensor_names[raw].starts_with("gpu"))
        .map(|(pos, _)| pos)
        .collect();
    let span = gpu_positions.iter().max().unwrap() - gpu_positions.iter().min().unwrap();
    println!(
        "GPU sensors occupy sorted positions {:?}.. (span {span} for {} sensors)",
        gpu_positions.iter().min().unwrap(),
        gpu_positions.len()
    );

    let cs = CsMethod::new(model, 20).unwrap();
    let ds = build_dataset(
        &segment,
        &cs,
        DatasetOptions {
            spec: WindowSpec::new(30, 5).unwrap(),
            horizon: 0,
        },
    )
    .unwrap();
    let labels = ds.classes.as_ref().unwrap();

    let folds = stratified_kfold(labels, 5, 3).unwrap();
    let mut scores = Vec::new();
    for (i, fold) in folds.iter().enumerate() {
        let xt = gather_rows(&ds.features, &fold.train);
        let yt: Vec<usize> = fold.train.iter().map(|&s| labels[s]).collect();
        let xs = gather_rows(&ds.features, &fold.test);
        let ys: Vec<usize> = fold.test.iter().map(|&s| labels[s]).collect();
        let mut rf = RandomForestClassifier::with_config(ForestConfig::classification(i as u64));
        rf.fit(&xt, &yt).unwrap();
        scores.push(f1_score(&ys, &rf.predict(&xs).unwrap()).unwrap());
    }
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    println!("\nGPU-workload classification with CS-20 signatures, 5-fold F1: {mean:.3}");
    println!(
        "per-fold: {:?}",
        scores
            .iter()
            .map(|s| (s * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
}
