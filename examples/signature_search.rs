//! End-to-end signature store workflow: stream a simulated fleet into a
//! quantized on-disk store, reopen it from disk, run k-NN similarity
//! queries (exact vs coarse-indexed), and train a random forest straight
//! from the persisted signatures.
//!
//! ```sh
//! cargo run --release --example signature_search
//! STORE_NODES=256 STORE_FRAMES=4000 cargo run --release --example signature_search
//! ```

use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::fleet::FleetEngine;
use cwsmooth::data::WindowSpec;
use cwsmooth::ml::forest::ForestConfig;
use cwsmooth::ml::metrics::accuracy_score;
use cwsmooth::sim::fleet::{FleetScenario, FleetSimConfig};
use cwsmooth::store::{Distance, Encoding, SignatureIndex, SignatureStore, StoreConfig};
use rayon::prelude::*;
use std::time::Instant;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let nodes = env_or("STORE_NODES", 64);
    let frames = env_or("STORE_FRAMES", 2000);
    let train = 256usize;
    let l = 4usize;
    let spec = WindowSpec::new(30, 10).unwrap();
    let dir =
        std::env::temp_dir().join(format!("cwsmooth-signature-search-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // ---- Offline: per-node CS models ------------------------------------
    let scenario = FleetScenario::new(FleetSimConfig::new(42, nodes).with_gaps(5));
    let methods: Vec<CsMethod> = (0..nodes)
        .into_par_iter()
        .map(|node| {
            let history = scenario.training_matrix(node, train);
            CsMethod::new(CsTrainer::default().train(&history).unwrap(), l).unwrap()
        })
        .collect();
    println!(
        "fleet: {nodes} nodes, {} sensors, {l}-block signatures",
        scenario.n_sensors()
    );

    // ---- Ingest: fleet frames -> quantized store ------------------------
    let cfg = StoreConfig::default()
        .with_encoding(Encoding::Quant8)
        .with_block_events(256)
        .with_segment_events(1 << 14);
    let mut store = SignatureStore::open(&dir, spec, l, cfg).unwrap();
    let mut engine = FleetEngine::new(methods, spec).unwrap();
    let mut frame = engine.frame();
    let t0 = Instant::now();
    for f in 0..frames {
        let t = train + f;
        frame.clear();
        for node in 0..nodes {
            if !scenario.has_gap(node, t) {
                scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
            }
        }
        engine.ingest_frame_sink(&frame, &mut store).unwrap();
    }
    store.flush().unwrap();
    let ingest = t0.elapsed().as_secs_f64();
    let stats = store.stats();
    let raw_bytes = stats.events * (8 + 8 * store.dim() as u64);
    println!(
        "ingest: {frames} frames -> {} events in {:.0} ms ({:.0} k events/s), \
         {} segments, {:.1} KiB on disk ({:.1}x vs raw f64)",
        stats.events,
        ingest * 1e3,
        stats.events as f64 / ingest / 1e3,
        store.segments().len(),
        store.bytes_on_disk() as f64 / 1024.0,
        raw_bytes as f64 / store.bytes_on_disk() as f64,
    );

    // ---- Reopen from disk (simulated crash + restart) -------------------
    // Model a process kill mid-append: chop bytes off the end of the
    // newest segment, leaving a half-written block. `open` must cut the
    // file back to its last complete block and report what it repaired.
    let events_before = store.stats().events;
    drop(store);
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "cws"))
        .max()
        .unwrap();
    let len = std::fs::metadata(&newest).unwrap().len();
    let damaged = std::fs::OpenOptions::new()
        .write(true)
        .open(&newest)
        .unwrap();
    damaged.set_len(len - 7).unwrap(); // mid-block: not a clean boundary
    drop(damaged);
    let store = SignatureStore::open(&dir, spec, l, cfg).unwrap();
    let rec = store.recovery();
    println!(
        "reopen after simulated crash: recovered {} segments / {} events \
         (cut {} bytes of half-written tail, removed {} dead files; \
         {} of {} events survived the staged-tail loss)",
        rec.segments,
        rec.events,
        rec.bytes_truncated,
        rec.segments_removed,
        rec.events,
        events_before,
    );
    assert!(rec.bytes_truncated > 0, "the damaged tail must be repaired");
    assert!(rec.events > 0 && rec.events <= events_before);

    // ---- Similarity search: nearest historical states -------------------
    let t1 = Instant::now();
    let index = SignatureIndex::build(&store, Distance::L2)
        .unwrap()
        .with_coarse(24, 10)
        .unwrap();
    println!(
        "index: {} signatures, 24-cell coarse quantizer, built in {:.0} ms",
        index.len(),
        t1.elapsed().as_secs_f64() * 1e3
    );

    // Probe with the busiest stored signature (highest mean re).
    let mut probe: Vec<f64> = Vec::new();
    let mut probe_key = (0u32, 0u64);
    let mut best = f64::NEG_INFINITY;
    store
        .for_each(|node, window, feats| {
            let load: f64 = feats[..l].iter().sum();
            if load > best {
                best = load;
                probe = feats.to_vec();
                probe_key = (node, window);
            }
        })
        .unwrap();
    println!(
        "probe: busiest window (node {}, window #{})",
        probe_key.0, probe_key.1
    );

    let t2 = Instant::now();
    let exact = index.query(&probe, 5).unwrap();
    let exact_ms = t2.elapsed().as_secs_f64() * 1e3;
    let t3 = Instant::now();
    let approx = index.query_indexed(&probe, 5, 4).unwrap();
    let approx_ms = t3.elapsed().as_secs_f64() * 1e3;
    println!("exact scan ({exact_ms:.2} ms):");
    for n in &exact {
        println!(
            "  node {:>4} window #{:<5} distance {:.5}",
            n.node, n.window_index, n.distance
        );
    }
    println!("indexed, 4 of 24 cells probed ({approx_ms:.2} ms):");
    for n in &approx {
        println!(
            "  node {:>4} window #{:<5} distance {:.5}",
            n.node, n.window_index, n.distance
        );
    }
    assert_eq!(exact[0], approx[0], "indexed top-1 must match exact scan");

    // ---- Train a forest straight from the store -------------------------
    // Label: high-load vs low-load windows (median split on mean re).
    let mut loads: Vec<f64> = Vec::new();
    store
        .for_each(|_, _, feats| loads.push(feats[..l].iter().sum()))
        .unwrap();
    loads.sort_by(f64::total_cmp);
    let median = loads[loads.len() / 2];

    let t4 = Instant::now();
    let rf = store
        .train_classifier(ForestConfig::classification(7), |_, window, feats| {
            // Hold out odd windows for evaluation.
            (window % 2 == 0).then_some(usize::from(feats[..l].iter().sum::<f64>() > median))
        })
        .unwrap();
    let (x_test, y_test) = store
        .extract_training_set(|_, window, feats| {
            (window % 2 == 1).then_some(usize::from(feats[..l].iter().sum::<f64>() > median))
        })
        .unwrap();
    let pred = rf.predict(&x_test).unwrap();
    println!(
        "forest-from-store: trained on even windows in {:.0} ms, \
         accuracy on held-out odd windows: {:.3}",
        t4.elapsed().as_secs_f64() * 1e3,
        accuracy_score(&y_test, &pred).unwrap()
    );

    std::fs::remove_dir_all(&dir).ok();
}
