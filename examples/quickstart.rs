//! Quickstart: train a CS model, compute signatures, inspect them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full CS pipeline on a simulated compute-node trace:
//! training stage (learn ordering + bounds), sorting stage (visualizable
//! normalized data) and smoothing stage (complex block signatures).

use cwsmooth::analysis::GrayImage;
use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::model::CsModel;
use cwsmooth::data::{WindowIter, WindowSpec};
use cwsmooth::sim::segments::{power_segment, SimConfig};

fn main() {
    // 1. Get monitoring data. Here: a simulated CooLMUC-3 node with 47
    //    sensors sampled at 100 ms (HPC-ODA's Power segment shape). In a
    //    real deployment this would come from per-sensor CSVs via
    //    `cwsmooth::data::csv::read_series_file` + `align_to_matrix`.
    let segment = power_segment(SimConfig::new(42, 2000));
    println!(
        "segment `{}`: {} sensors x {} samples",
        segment.name,
        segment.sensors(),
        segment.samples()
    );

    // 2. Training stage (once, offline): learn the correlation-wise row
    //    ordering (Algorithm 1) and per-sensor min-max bounds.
    let model = CsTrainer::default()
        .train(&segment.matrix)
        .expect("training");
    println!(
        "trained CS model: {} sensors, first 8 of permutation = {:?}",
        model.n_sensors(),
        &model.perm[..8]
    );

    // Models persist to a simple text format.
    let model_path = std::env::temp_dir().join("cwsmooth-quickstart-model.txt");
    model.save_file(&model_path).expect("save model");
    let model = CsModel::load_file(&model_path).expect("load model");
    println!("model round-tripped through {}", model_path.display());

    // 3. Sorting + smoothing stages (online): one signature per window.
    let cs = CsMethod::new(model, 10).expect("CS-10");
    let spec = WindowSpec::new(10, 5).expect("window spec");
    let mut count = 0;
    let mut last = None;
    for w in WindowIter::new(spec, segment.samples()) {
        let sub = w.extract(&segment.matrix).unwrap();
        let hist = w.history(&segment.matrix);
        let sig = cs.signature(&sub, hist.as_deref()).expect("signature");
        count += 1;
        last = Some(sig);
    }
    let last = last.unwrap();
    println!(
        "\ncomputed {count} signatures of {} blocks each",
        last.blocks()
    );
    println!(
        "last signature real parts (block averages):      {:?}",
        last.re
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "last signature imaginary parts (block derivs):   {:?}",
        last.im
            .iter()
            .map(|v| (v * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    // 4. Visualize: signature heatmaps are images.
    let (re, _im) = cs
        .signature_heatmaps(&segment.matrix, spec)
        .expect("heatmaps");
    println!(
        "\nsignature heatmap (10 blocks x {} windows, darker = higher):",
        re.cols()
    );
    println!(
        "{}",
        GrayImage::from_matrix(&re)
            .resize_nearest(10, 76)
            .to_ascii()
    );
}
