//! Root-cause analysis (the paper's Sec. III-C3 claim): because every CS
//! block aggregates a *known* set of raw sensors, a model's most important
//! features can be traced straight back to physical sensors.
//!
//! ```sh
//! cargo run --release --example root_cause
//! ```
//!
//! Trains a fault classifier on CS-20 signatures of the 128-sensor Fault
//! segment, reads the forest's impurity-based feature importances, and
//! maps the top features through block → sorted rows → raw sensor names.

use cwsmooth::core::cs::{CsMethod, CsTrainer, SignaturePart};
use cwsmooth::core::dataset::{build_dataset, DatasetOptions};
use cwsmooth::data::WindowSpec;
use cwsmooth::ml::forest::{ForestConfig, RandomForestClassifier};
use cwsmooth::sim::segments::{fault_segment, SimConfig};

fn main() {
    let segment = fault_segment(SimConfig::new(5, 4000));
    println!(
        "Fault segment: {} sensors, {} samples, {} classes",
        segment.sensors(),
        segment.samples(),
        segment.n_classes()
    );

    let model = CsTrainer::default().train(&segment.matrix).unwrap();
    let cs = CsMethod::new(model, 20).unwrap();
    let ds = build_dataset(
        &segment,
        &cs,
        DatasetOptions {
            spec: WindowSpec::new(60, 10).unwrap(),
            horizon: 0,
        },
    )
    .unwrap();

    let mut rf = RandomForestClassifier::with_config(ForestConfig::classification(3));
    rf.fit(&ds.features, ds.classes.as_ref().unwrap()).unwrap();
    let importances = rf.feature_importances().unwrap();

    // Rank features by importance and trace the top five to raw sensors.
    let mut ranked: Vec<(usize, f64)> = importances.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("\ntop-5 signature features and the sensors behind them:");
    for &(feature, weight) in ranked.iter().take(5) {
        let (block, part) = cs.feature_origin(feature).unwrap();
        let sensors = cs.block_sensors(block).unwrap();
        let part_name = match part {
            SignaturePart::Real => "re",
            SignaturePart::Imaginary => "im",
        };
        let mut names: Vec<&str> = sensors
            .iter()
            .map(|&s| segment.sensor_names[s].as_str())
            .collect();
        let shown = names.len().min(5);
        let extra = names.len() - shown;
        names.truncate(shown);
        println!(
            "  feature {feature:>3} ({part_name} of block {block:>2}, importance {weight:.3}) <- {}{}",
            names.join(", "),
            if extra > 0 {
                format!(", ... +{extra} more")
            } else {
                String::new()
            }
        );
    }

    // Sanity: importance mass concentrates on a minority of blocks.
    let mass_top5: f64 = ranked.iter().take(5).map(|&(_, w)| w).sum();
    println!(
        "\ntop-5 of {} features carry {:.0}% of the total importance",
        importances.len(),
        mass_top5 * 100.0
    );
}
