//! Visualization (the paper's Sec. IV-E): CS signatures are image-like —
//! render them, rescale them, and read system behaviour off the heatmap.
//!
//! ```sh
//! cargo run --release --example visualize_signatures
//! ```

use cwsmooth::analysis::GrayImage;
use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::data::{LabelTrack, WindowSpec};
use cwsmooth::sim::apps::AppKind;
use cwsmooth::sim::segments::{application_segment, SimConfig};

fn main() {
    let segment = application_segment(SimConfig::new(13, 2200));
    let LabelTrack::Classes(labels) = &segment.labels else {
        unreachable!()
    };
    let model = CsTrainer::default().train(&segment.matrix).unwrap();
    let cs = CsMethod::new(model, 40).unwrap();
    let spec = WindowSpec::new(30, 5).unwrap();

    for app in [AppKind::Kripke, AppKind::Quicksilver] {
        let class = app.class_id();
        let Some(start) = labels.iter().position(|&c| c == class) else {
            continue;
        };
        let end = start + labels[start..].iter().take_while(|&&c| c == class).count();
        let run = segment.matrix.col_window(start, end).unwrap();
        let (re, im) = cs.signature_heatmaps(&run, spec).unwrap();

        println!("=== {} ({} windows) ===", app.name(), re.cols());
        println!("real components (40 blocks, darker = higher):");
        println!(
            "{}",
            GrayImage::from_matrix(&re)
                .resize_bilinear(16, 64)
                .to_ascii()
        );
        println!("imaginary components (trend information):");
        println!(
            "{}",
            GrayImage::from_matrix(&im)
                .resize_bilinear(16, 64)
                .to_ascii()
        );
    }

    // Signatures scale like images: downscale a 40-block signature heatmap
    // to 10 blocks for a model that was trained on low resolution, or
    // upscale the other way (the paper's model-portability trick).
    let some_run = segment.matrix.col_window(0, 400).unwrap();
    let (re, _) = cs.signature_heatmaps(&some_run, spec).unwrap();
    let img = GrayImage::from_matrix(&re);
    let down = img.resize_bilinear(10, img.width());
    let up = down.resize_bilinear(40, img.width());
    println!("=== rescaling: 40 blocks -> 10 -> 40 (information survives) ===");
    println!("original (40 rows -> shown 12x60):");
    println!("{}", img.resize_bilinear(12, 60).to_ascii());
    println!("after down+up scaling (shown 12x60):");
    println!("{}", up.resize_bilinear(12, 60).to_ascii());
}
