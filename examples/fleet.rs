//! Fleet-scale streaming: a whole machine island of nodes pushing
//! telemetry through the sharded [`FleetEngine`], with per-node trained
//! models, injected telemetry gaps, and a serial baseline for comparison.
//!
//! ```sh
//! cargo run --release --example fleet
//! FLEET_NODES=4096 FLEET_FRAMES=1000 cargo run --release --example fleet
//! ```

use cwsmooth::core::cs::{CsMethod, CsSignature, CsTrainer};
use cwsmooth::core::fleet::{FleetEngine, FleetEvent};
use cwsmooth::core::online::OnlineCs;
use cwsmooth::data::WindowSpec;
use cwsmooth::sim::fleet::{FleetScenario, FleetSimConfig, FLEET_SENSOR_NAMES};
use rayon::prelude::*;
use std::time::Instant;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let nodes = env_or("FLEET_NODES", 1024);
    let frames = env_or("FLEET_FRAMES", 1500);
    let train = 256usize;
    let spec = WindowSpec::new(30, 10).unwrap();

    // One island: racks of 32 nodes, ~0.5% of node-frames dropped.
    let scenario = FleetScenario::new(FleetSimConfig::new(42, nodes).with_gaps(5));
    println!(
        "fleet: {nodes} nodes x {} sensors ({}...), racks of {}",
        scenario.n_sensors(),
        FLEET_SENSOR_NAMES[..3].join(", "),
        scenario.config().nodes_per_rack
    );

    // Offline: train one CS model per node on its own clean history — the
    // sensor correlations (and hence the learned row ordering) differ per
    // node, so models are not interchangeable.
    let t0 = Instant::now();
    let methods: Vec<CsMethod> = (0..nodes)
        .into_par_iter()
        .map(|node| {
            let history = scenario.training_matrix(node, train);
            let model = CsTrainer::default().train(&history).unwrap();
            CsMethod::new(model, 4).unwrap()
        })
        .collect();
    println!(
        "trained {nodes} per-node models ({train} samples each) in {:.0} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Online, sharded: stream frames (live time starts after training).
    let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
    println!(
        "engine: {} shards over {} worker threads",
        engine.shard_count(),
        rayon::current_num_threads()
    );
    let mut frame = engine.frame();
    let mut events: Vec<FleetEvent> = Vec::new();
    let mut total_events = 0usize;
    let mut hottest: Option<FleetEvent> = None;
    let t1 = Instant::now();
    for f in 0..frames {
        let t = train + f;
        frame.clear();
        for node in 0..nodes {
            if !scenario.has_gap(node, t) {
                scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
            }
        }
        engine.ingest_frame_into(&frame, &mut events).unwrap();
        total_events += events.len();
        for e in events.drain(..) {
            let peak = e.signature.re.iter().copied().fold(0.0, f64::max);
            if hottest
                .as_ref()
                .map(|h| peak > h.signature.re.iter().copied().fold(0.0, f64::max))
                .unwrap_or(true)
            {
                hottest = Some(e);
            }
        }
    }
    let sharded = t1.elapsed().as_secs_f64();
    let stats = engine.stats();
    let columns = (frames * nodes) as f64;
    println!(
        "sharded ingest: {frames} frames -> {total_events} signatures in {:.0} ms \
         ({:.2} M columns/s, {} node-frames dropped & recovered)",
        sharded * 1e3,
        columns / sharded / 1e6,
        stats.gaps
    );
    if let Some(h) = &hottest {
        println!(
            "hottest window: node {} window #{} re[0..2]={:.3?}",
            h.node,
            h.window_index,
            &h.signature.re[..2.min(h.signature.re.len())]
        );
    }

    // Serial baseline: the same streams walked on one thread.
    let mut streams: Vec<OnlineCs> = methods
        .into_iter()
        .map(|m| OnlineCs::new(m, spec))
        .collect();
    let mut sig = CsSignature::default();
    let mut column = vec![0.0; scenario.n_sensors()];
    let mut serial_events = 0usize;
    let t2 = Instant::now();
    for f in 0..frames {
        let t = train + f;
        for (node, stream) in streams.iter_mut().enumerate() {
            if scenario.has_gap(node, t) {
                stream.push_gap();
            } else {
                scenario.reading_into(node, t, &mut column);
                if stream.push_into(&column, &mut sig).unwrap() {
                    serial_events += 1;
                }
            }
        }
    }
    let serial = t2.elapsed().as_secs_f64();
    assert_eq!(serial_events, total_events, "serial/sharded must agree");
    println!(
        "serial baseline: {:.0} ms ({:.2} M columns/s)",
        serial * 1e3,
        columns / serial / 1e6
    );
    println!("sharded speedup: {:.2}x", serial / sharded);
}
