//! Online (streaming) CS deployment: the in-band ODA mode the paper
//! designs for — a monitoring agent pushes one sample per tick and
//! receives a signature every `ws` ticks, with bounded memory.
//!
//! ```sh
//! cargo run --release --example online_streaming
//! ```

use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::online::OnlineCs;
use cwsmooth::data::WindowSpec;
use cwsmooth::sim::segments::{power_segment, SimConfig};
use std::time::Instant;

fn main() {
    // Offline: train the CS model on historical data.
    let history = power_segment(SimConfig::new(42, 2000));
    let model = CsTrainer::default().train(&history.matrix).unwrap();
    println!(
        "offline training done: {} sensors, model reusable across restarts",
        model.n_sensors()
    );

    // Online: stream fresh data column by column (different seed = a
    // different day of operation; the old model still applies).
    let live = power_segment(SimConfig::new(43, 3000));
    let spec = WindowSpec::new(10, 5).unwrap();
    let cs = CsMethod::new(model, 10).unwrap();
    let mut online = OnlineCs::new(cs, spec);

    let t0 = Instant::now();
    let mut emitted = 0usize;
    let mut peak_re: f64 = 0.0;
    for c in 0..live.matrix.cols() {
        let column = live.matrix.col(c);
        if let Some(sig) = online.push(&column).expect("stream") {
            emitted += 1;
            // An in-band ODA consumer would hand `sig` to its model here;
            // we just track the hottest block average ever seen.
            peak_re = peak_re.max(sig.re.iter().copied().fold(0.0, f64::max));
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "streamed {} samples -> {emitted} signatures in {:.1} ms \
         ({:.2} µs/sample incl. buffering)",
        live.matrix.cols(),
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / live.matrix.cols() as f64
    );
    println!("peak block average observed: {peak_re:.3}");
    println!(
        "memory footprint: wl+1 columns x {} sensors = {} floats",
        online.n_sensors(),
        (spec.wl + 1) * online.n_sensors()
    );
}
