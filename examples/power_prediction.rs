//! Power prediction (the paper's Power use case, Sec. IV-B): predict a
//! compute node's average power draw over the next 3 samples (~300 ms)
//! from CS signatures — the input an energy-tuning ODA control loop needs.
//!
//! ```sh
//! cargo run --release --example power_prediction
//! ```

use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::dataset::{build_dataset, DatasetOptions};
use cwsmooth::data::WindowSpec;
use cwsmooth::ml::cv::{gather_rows, kfold};
use cwsmooth::ml::forest::{ForestConfig, RandomForestRegressor};
use cwsmooth::ml::metrics::{ml_score_regression, nrmse, rmse};
use cwsmooth::sim::segments::{power_segment, SimConfig};

fn main() {
    // One CooLMUC-3 node: 47 node- and core-level sensors at 100 ms.
    let segment = power_segment(SimConfig::new(11, 4000));
    println!(
        "segment: {} sensors, {} samples at 100ms",
        segment.sensors(),
        segment.samples()
    );

    // CS-10 signatures over 10-sample (1 s) windows, stepping 5; target is
    // the average power over the 3 samples after each window.
    let model = CsTrainer::default().train(&segment.matrix).unwrap();
    let cs = CsMethod::new(model, 10).unwrap();
    let ds = build_dataset(
        &segment,
        &cs,
        DatasetOptions {
            spec: WindowSpec::new(10, 5).unwrap(),
            horizon: 3,
        },
    )
    .unwrap();
    let targets = ds.targets.as_ref().unwrap();
    println!(
        "feature sets: {} windows x {} features",
        ds.len(),
        ds.features.cols()
    );

    let folds = kfold(targets.len(), 5, 3).unwrap();
    let fold = &folds[0];
    let xt = gather_rows(&ds.features, &fold.train);
    let yt: Vec<f64> = fold.train.iter().map(|&i| targets[i]).collect();
    let xs = gather_rows(&ds.features, &fold.test);
    let ys: Vec<f64> = fold.test.iter().map(|&i| targets[i]).collect();

    let mut rf = RandomForestRegressor::with_config(ForestConfig::regression(1));
    rf.fit(&xt, &yt).unwrap();
    let pred = rf.predict(&xs).unwrap();

    println!("\nRMSE:        {:>8.2} W", rmse(&ys, &pred).unwrap());
    println!("NRMSE:       {:>8.3}", nrmse(&ys, &pred).unwrap());
    println!(
        "ML score:    {:>8.3}  (1 - NRMSE, the paper's metric)",
        ml_score_regression(&ys, &pred).unwrap()
    );

    println!("\nsample predictions (watts):");
    println!("{:>12} {:>12} {:>10}", "actual", "predicted", "error");
    for i in (0..ys.len().min(40)).step_by(5) {
        println!(
            "{:>12.1} {:>12.1} {:>10.1}",
            ys[i],
            pred[i],
            pred[i] - ys[i]
        );
    }
}
